//! Proves the parallel evaluation path is invisible in the results: a
//! Table I smoke run under a 2-thread worker pool is byte-identical to
//! the serial run.
//!
//! This lives in its own integration-test binary because the worker count
//! (`par::set_threads`) is process-global state; sharing a process with
//! other tests would race on it.

use head::experiments::{run_table1, Scale};

/// Serialises a report row-by-row; serde_json prints every f64 with a
/// shortest round-trip representation, so equal strings mean equal bits
/// (and -0.0 vs 0.0 still differ).
fn fingerprint(report: &head::experiments::EndToEndReport) -> Vec<(String, String)> {
    report
        .rows
        .iter()
        .map(|(name, m)| {
            (
                name.clone(),
                serde_json::to_string(m).expect("serialisable metrics"),
            )
        })
        .collect()
}

#[test]
fn two_thread_table1_smoke_is_byte_identical_to_serial() {
    let scale = Scale::smoke();
    assert_eq!(par::threads(), 1, "test binary must own the thread count");
    let serial = run_table1(&scale);

    let prev = par::set_threads(2);
    let parallel = run_table1(&scale);
    par::set_threads(prev);

    let a = fingerprint(&serial);
    let b = fingerprint(&parallel);
    assert_eq!(a.len(), b.len(), "same number of table rows");
    for ((name_s, row_s), (name_p, row_p)) in a.iter().zip(&b) {
        assert_eq!(name_s, name_p, "row order is deterministic");
        assert_eq!(row_s, row_p, "{name_s}: parallel run diverged from serial");
    }
}
