//! End-to-end tests: smoke-scale versions of the paper's experiment
//! drivers — every table function must run and produce well-formed rows.

use head::experiments::{
    run_table1, run_table2, run_tables_3_4, run_tables_5_6, shaping_objective, Scale,
};
use head::EnvConfig;

fn tiny() -> Scale {
    let mut s = Scale::smoke();
    s.train_episodes = 4;
    s.eval_episodes = 2;
    s.demo_episodes = 1;
    s
}

#[test]
fn table1_produces_all_five_methods() {
    let report = run_table1(&tiny());
    let names: Vec<&str> = report.rows.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["IDM-LC", "ACC-LC", "DRL-SC", "TP-BTS", "HEAD"]);
    for (name, m) in &report.rows {
        assert!(m.episodes > 0, "{name} evaluated no episodes");
        assert!(
            m.avg_v_a > 0.0 && m.avg_v_a <= 25.0,
            "{name} AvgV-A {:.2}",
            m.avg_v_a
        );
        assert!(m.avg_dt_a.is_finite() && m.avg_dt_c.is_finite());
    }
    // The report renders as a table.
    let text = report.to_string();
    assert!(text.contains("AvgDT-A") && text.contains("HEAD"));
}

#[test]
fn table2_produces_all_variants() {
    let report = run_table2(&tiny());
    let names: Vec<&str> = report.rows.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"HEAD"));
    assert!(names.contains(&"HEAD-w/o-PVC"));
    assert!(names.contains(&"HEAD-w/o-LST-GAT"));
    assert!(names.contains(&"HEAD-w/o-BP-DQN"));
    assert!(names.contains(&"HEAD-w/o-IMP"));
}

#[test]
fn tables_3_4_rank_all_predictors() {
    let report = run_tables_3_4(&tiny());
    assert_eq!(report.rows.len(), 4);
    for row in &report.rows {
        assert!(row.mae.is_finite() && row.mae >= 0.0, "{} MAE", row.name);
        assert!(
            (row.rmse * row.rmse - row.mse).abs() < 1e-9,
            "{} rmse^2 = mse",
            row.name
        );
        assert!(row.avg_it_ms > 0.0);
        assert!(row.tct_secs >= 0.0);
    }
}

#[test]
fn tables_5_6_rank_all_learners() {
    let report = run_tables_5_6(&tiny());
    let names: Vec<&str> = report.rows.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, vec!["P-QP", "P-DDPG", "P-DQN", "BP-DQN"]);
    for row in &report.rows {
        assert!(
            row.min_r <= row.avg_r && row.avg_r <= row.max_r,
            "{}",
            row.name
        );
        assert!(row.avg_it_ms > 0.0);
    }
}

#[test]
fn shaping_objective_is_monotone_in_collisions() {
    let env = EnvConfig::test_scale();
    let mut base = head::AggregateMetrics {
        avg_v_a: 20.0,
        min_ttc_a: 4.0,
        episodes: 10,
        ..Default::default()
    };
    let clean = shaping_objective(&env, &base);
    base.collisions = 5;
    let crashy = shaping_objective(&env, &base);
    assert!(clean > crashy);
}
