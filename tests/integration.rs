//! Cross-crate integration tests: the full perception → decision loop,
//! component interop, and determinism across the whole stack.

use dataset::{generate_samples, CorpusConfig};
use decision::{AgentConfig, AugmentedState, BpDqn, LaneBehaviour, PamdpAgent};
use head::{
    augmented_state, run_episode, EnvConfig, HighwayEnv, IdmLc, PerceptionMode, PolicyAgent,
    RuleConfig, Terminal,
};
use perception::{train, LstGat, LstGatConfig, Normalizer, TrainOptions, NUM_TARGETS};

fn small_corpus(seed: u64) -> CorpusConfig {
    CorpusConfig {
        windows: 15,
        egos_per_window: 3,
        warmup_steps: 50,
        seed,
        ..Default::default()
    }
}

#[test]
fn corpus_to_predictor_to_env_pipeline() {
    // dataset -> perception -> env: train LST-GAT briefly, plug it into an
    // environment and drive one episode.
    let samples = generate_samples(&small_corpus(1));
    assert!(samples.len() >= 20);
    let norm = Normalizer::paper_default();
    let mut model = LstGat::new(LstGatConfig::default(), norm);
    let report = train(
        &mut model,
        &samples,
        &TrainOptions {
            epochs: 2,
            batch_size: 16,
            ..Default::default()
        },
    );
    assert!(report.epoch_losses[1] <= report.epoch_losses[0] * 1.5);

    let mut env = HighwayEnv::new(
        EnvConfig::test_scale(),
        PerceptionMode::LstGat(Box::new(model)),
    );
    let mut agent = IdmLc::new(RuleConfig::default());
    let metrics = run_episode(&mut env, &mut agent, false);
    assert_eq!(metrics.terminal, Terminal::Destination);
}

#[test]
fn trained_predictor_beats_untrained_in_the_loop() {
    let samples = generate_samples(&small_corpus(2));
    let norm = Normalizer::paper_default();
    let untrained = LstGat::new(LstGatConfig::default(), norm);
    let mut trained = LstGat::new(LstGatConfig::default(), norm);
    train(
        &mut trained,
        &samples,
        &TrainOptions {
            epochs: 4,
            batch_size: 16,
            ..Default::default()
        },
    );
    let acc_untrained = perception::evaluate(&untrained, &samples, &norm);
    let acc_trained = perception::evaluate(&trained, &samples, &norm);
    assert!(
        acc_trained.mae < acc_untrained.mae,
        "training must reduce MAE: {} vs {}",
        acc_trained.mae,
        acc_untrained.mae
    );
}

#[test]
fn augmented_state_mirrors_graph_and_prediction() {
    let env = HighwayEnv::new(EnvConfig::test_scale(), PerceptionMode::Persistence);
    let p = env.percepts();
    let s = augmented_state(&p.graph, &p.prediction);
    assert_eq!(s, p.state);
    for i in 0..NUM_TARGETS {
        assert_eq!(s.future[i][1], p.prediction[i].d_lon);
    }
}

#[test]
fn learning_agent_trains_in_environment_smoke() {
    let cfg = AgentConfig {
        warmup: 64,
        batch_size: 16,
        update_every: 4,
        epsilon: decision::LinearSchedule::new(0.8, 0.2, 500),
        noise: decision::LinearSchedule::new(1.0, 0.3, 500),
        ..AgentConfig::default()
    };
    let mut env = HighwayEnv::new(EnvConfig::test_scale(), PerceptionMode::Persistence);
    let mut agent = PolicyAgent::new("HEAD", Box::new(BpDqn::new(cfg)));
    for _ in 0..6 {
        env.reset();
        let m = run_episode(&mut env, &mut agent, true);
        assert!(m.steps > 0);
        assert!(m.mean_reward.is_finite());
    }
}

#[test]
fn pamdp_state_flows_unchanged_through_the_stack() {
    // The decision crate's zero state must be accepted by every learner.
    let mut agent = BpDqn::new(AgentConfig::default());
    let (action, params) = agent.act(&AugmentedState::zeros(), false);
    assert!(action.accel.abs() <= 3.0);
    assert!(params.iter().all(|p| p.is_finite()));
    assert!(matches!(
        action.behaviour,
        LaneBehaviour::Left | LaneBehaviour::Right | LaneBehaviour::Keep
    ));
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let samples = generate_samples(&small_corpus(5));
        let norm = Normalizer::paper_default();
        let mut model = LstGat::new(LstGatConfig::default(), norm);
        train(
            &mut model,
            &samples,
            &TrainOptions {
                epochs: 1,
                batch_size: 16,
                ..Default::default()
            },
        );
        let mut cfg = EnvConfig::test_scale();
        cfg.seed = 99;
        let mut env = HighwayEnv::new(cfg, PerceptionMode::LstGat(Box::new(model)));
        let mut agent = IdmLc::new(RuleConfig::default());
        let m = run_episode(&mut env, &mut agent, false);
        (m.steps, m.mean_reward.to_bits(), m.avg_v.to_bits())
    };
    assert_eq!(run(), run());
}
