//! Offline stand-in for `criterion`. Compiles the bench harnesses and runs
//! each benchmark body a handful of times with coarse wall-clock timing —
//! a smoke-run, not a statistics engine.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Consuming builder-style setter (configuration form).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Mutating setter (group form).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        let start = Instant::now();
        let mut b = Bencher { iters: 0 };
        f(&mut b, input);
        report(&label, b.iters, start);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, _sample_size: usize, f: &mut F) {
    let start = Instant::now();
    let mut b = Bencher { iters: 0 };
    f(&mut b);
    report(label, b.iters, start);
}

fn report(label: &str, iters: u64, start: Instant) {
    let total = start.elapsed();
    let per = if iters > 0 { total / iters as u32 } else { total };
    println!("bench {label}: {per:?}/iter ({iters} iters, {total:?} total)");
}

/// Timer handle passed to each benchmark body.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Runs the routine a few times (the stub ignores sample statistics).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..3 {
            black_box(routine());
            self.iters += 1;
        }
    }
}

/// Declares a group-runner function over the target benchmarks.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
