//! Offline stand-in for the `rand` crate, used only by
//! `scripts/offline_check.sh` when the crates-io registry is unreachable.
//!
//! Implements the subset of the rand 0.9 API this workspace uses — `Rng`
//! (`random`, `random_range`), `SeedableRng::seed_from_u64`,
//! `seq::{SliceRandom, IndexedRandom}` — with a real (SplitMix64-quality)
//! generator so seeded tests are deterministic and statistically sane.
//! Numeric streams intentionally do NOT match the real crate; tests must
//! assert reproducibility properties, not exact values.

use std::ops::Range;

/// Core of every generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (`Rng::random`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform-in-range sampler. Mirrors real rand's shape so
/// `Range<T>: SampleRange<T>` is a single blanket impl — that unification is
/// what lets `rng.random_range(0.85..1.15)` infer `f64` from context.
pub trait SampleUniform: Sized {
    /// Uniform draw in `[start, end)`.
    fn sample_half_open(start: Self, end: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform draw in `[start, end]`.
    fn sample_inclusive(start: Self, end: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: Self, end: Self, rng: &mut dyn RngCore) -> Self {
                assert!(start < end, "empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                start + u * (end - start)
            }
            fn sample_inclusive(start: Self, end: Self, rng: &mut dyn RngCore) -> Self {
                Self::sample_half_open(start, end, rng)
            }
        }
    )*};
}
float_uniform!(f32, f64);

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: Self, end: Self, rng: &mut dyn RngCore) -> Self {
                assert!(start < end, "empty range");
                let span = (end as i128 - start as i128) as u64;
                (start as i128 + (rng.next_u64() % span) as i128) as $t
            }
            fn sample_inclusive(start: Self, end: Self, rng: &mut dyn RngCore) -> Self {
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u64 + 1;
                (start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
int_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Ranges samplable by `Rng::random_range`.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_in(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_in(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing generator methods (blanket-implemented for every core).
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction (the workspace only uses `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod seq {
    //! Slice sampling helpers (`shuffle`, `choose_multiple`).

    use super::RngCore;

    /// In-place slice operations.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from indexable sequences.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// `amount` distinct elements in random order.
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Output>;

        /// One random element (`None` when empty).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut idx: Vec<usize> = (0..self.len()).collect();
            idx.shuffle(rng);
            idx.truncate(amount.min(self.len()));
            idx.into_iter().map(|i| &self[i]).collect::<Vec<_>>().into_iter()
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}
