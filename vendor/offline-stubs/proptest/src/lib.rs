//! Offline stand-in for `proptest`. Runs each property as a plain seeded
//! loop (deterministic per test name) instead of a shrinking search — enough
//! to execute the workspace's property suites without the real crate. No
//! shrinking, no persistence; failures report the raw assert.

pub mod test_runner {
    /// Deterministic SplitMix64 generator seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a tag (the property function name) via FNV-1a.
        pub fn deterministic(tag: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in [0, 1).
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in [0, n).
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod config {
    /// Per-suite configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values. Unlike real proptest there is no
    /// value tree or shrinking; `sample` draws one value directly.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    self.start + rng.uniform() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    assert!(span > 0, "empty range strategy");
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($($t:ident . $idx:tt),+) => {
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spread over a wide magnitude range.
            (rng.uniform() - 0.5) * 2e6
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.uniform() < 0.1 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// `Some` ~90% of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Accepted element-count specifications for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespace mirror so `prop::collection::vec` / `prop::option::of`
    /// resolve after a prelude glob import, as with the real crate.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Runs each contained property function over `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::config::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $pat =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Plain `assert!` (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Plain `assert_eq!` (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}
