//! Offline stand-in for `rand_chacha`. Provides a deterministic
//! `ChaCha12Rng` backed by SplitMix64 — the numeric stream differs from the
//! real crate, but seeding and reproducibility semantics match, which is all
//! the workspace's tests rely on.

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    state: u64,
}

impl RngCore for ChaCha12Rng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for ChaCha12Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Pre-mix so nearby seeds diverge immediately.
        let mut rng = ChaCha12Rng { state: state ^ 0xA076_1D64_78BD_642F };
        let _ = rng.next_u64();
        rng
    }
}

/// Alias so code written against either cipher width compiles.
pub type ChaCha8Rng = ChaCha12Rng;
/// Alias so code written against either cipher width compiles.
pub type ChaCha20Rng = ChaCha12Rng;
