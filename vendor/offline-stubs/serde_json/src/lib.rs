//! Offline functional stand-in for `serde_json`: encodes the serde stub's
//! `Value` tree to JSON text and parses JSON text back. Covers the API this
//! workspace uses — `to_string`, `to_string_pretty`, `from_str`, `Error`.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Encodes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.ser().to_string())
}

/// Encodes a value as indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    pretty(&value.ser(), 0, &mut out);
    Ok(out)
}

fn pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    match value {
        Value::Arr(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                out.push_str(&pad);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Obj(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                out.push_str(&pad);
                out.push_str(&Value::Str(k.clone()).to_string());
                out.push_str(": ");
                pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Parses JSON text and decodes it into `T`.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::de(&value)?)
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.pos += 1;
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                self.pos -= 1;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Reads the 4 hex digits after a `\u`, leaving pos on the last digit.
    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            self.pos += 1;
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| Error::new(format!("bad \\u escape at byte {}", self.pos)))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}
