//! Offline functional stand-in for `serde`, modelled on miniserde: a single
//! in-memory `Value` tree, `Serialize`/`Deserialize` traits that convert to
//! and from it, and hand-rolled derive macros re-exported from
//! `serde_stub_derive`. JSON text encoding lives in the `serde_json` stub.
//!
//! The stub is value-faithful for everything this workspace serialises:
//! floats round-trip exactly (shortest-roundtrip `Display`), integers up to
//! 2^53, strings with full escaping, and externally tagged enums.

use std::fmt;

pub use serde_stub_derive::{Deserialize, Serialize};

/// In-memory JSON-like document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an `Obj` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    /// Compact JSON. Non-finite numbers encode as `null`, matching both the
    /// real serde_json and the telemetry `Json` encoder.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) if !n.is_finite() => f.write_str("null"),
            Value::Num(n) => {
                if *n == n.trunc() && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Deserialization failure with a context message.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Mirror of real serde's `serde::de` module surface used by the
/// workspace: the `Error` trait with its `custom` constructor, so code can
/// build a deserialization error from a message under both the real crate
/// and this stub.
pub mod de {
    /// Mirror of `serde::de::Error` (the `custom` constructor only).
    pub trait Error {
        /// Builds an error carrying `msg`.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for super::DeError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            super::DeError::new(msg.to_string())
        }
    }
}

/// Conversion into the stub's `Value` tree.
pub trait Serialize {
    fn ser(&self) -> Value;
}

/// Conversion out of the stub's `Value` tree. The lifetime parameter exists
/// only for signature compatibility with real serde bounds.
pub trait Deserialize<'de>: Sized {
    fn de(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn de(value: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::de(value)?))
    }
}

impl Serialize for bool {
    fn ser(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn de(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other}"))),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn de(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Num(n) if n.is_finite() => Ok(*n as $t),
                    other => Err(DeError::new(format!(
                        "expected {}, found {other}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_num!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn de(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Num(n) => Ok(*n as $t),
                    // Non-finite floats encode as null; decode them back as
                    // +inf, which is the only non-finite value the workspace
                    // serialises (e.g. `min_ttc` with no interaction).
                    Value::Null => Ok(<$t>::INFINITY),
                    other => Err(DeError::new(format!(
                        "expected {}, found {other}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn ser(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for String {
    fn de(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn de(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Arr(items) => items.iter().map(T::de).collect(),
            other => Err(DeError::new(format!("expected array, found {other}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<'de, T: Deserialize<'de> + Copy + Default, const N: usize> Deserialize<'de> for [T; N] {
    fn de(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Arr(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::de(item)?;
                }
                Ok(out)
            }
            other => Err(DeError::new(format!("expected array of {N}, found {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Value {
        match self {
            Some(v) => v.ser(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn de(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::de(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($n:literal => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn ser(&self) -> Value {
                Value::Arr(vec![$(self.$idx.ser()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn de(value: &Value) -> Result<Self, DeError> {
                let arr = __expect_arr(value, "tuple", $n)?;
                Ok(($($t::de(&arr[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

/// Derive-support helper: expects an object value.
pub fn __expect_obj<'v>(value: &'v Value, ctx: &str) -> Result<&'v [(String, Value)], DeError> {
    match value {
        Value::Obj(entries) => Ok(entries),
        other => Err(DeError::new(format!("expected {ctx} object, found {other}"))),
    }
}

/// Derive-support helper: expects an array of exactly `len` items.
pub fn __expect_arr<'v>(value: &'v Value, ctx: &str, len: usize) -> Result<&'v [Value], DeError> {
    match value {
        Value::Arr(items) if items.len() == len => Ok(items),
        other => Err(DeError::new(format!("expected {ctx} array of {len}, found {other}"))),
    }
}

/// Derive-support helper: decodes a struct field, treating a missing key as
/// `null` (lenient, so optional fields can be absent).
pub fn __de_field<'de, T: Deserialize<'de>>(
    obj: &[(String, Value)],
    key: &str,
    ctx: &str,
) -> Result<T, DeError> {
    let value = obj
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null);
    T::de(value).map_err(|e| DeError::new(format!("{ctx}.{key}: {e}")))
}
