//! Derive macros for the offline serde stub. No `syn`/`quote` — the input is
//! parsed by hand, which is enough because the workspace derives only on
//! plain non-generic structs and enums with no `#[serde(...)]` attributes.
//!
//! Generated impls target the stub's data model: named structs map to
//! `Value::Obj`, newtype structs are transparent, enums are externally
//! tagged (unit variant -> `Value::Str(name)`, data variant ->
//! one-entry `Value::Obj`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<String>),
    NewtypeStruct,
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Splits a token stream on top-level commas, tracking `<...>` nesting
/// (angle brackets are punctuation, not groups, so `Vec<f32>` style types
/// would otherwise split mid-field).
fn split_commas(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for tt in ts {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Returns the leading identifier of a field/variant token list after
/// skipping `#[...]` attributes and a `pub`/`pub(...)` visibility prefix.
fn leading_ident(toks: &[TokenTree]) -> (String, usize) {
    let mut i = 0;
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => (id.to_string(), i),
        other => panic!("serde stub derive: expected identifier, found {other:?}"),
    }
}

fn named_field_names(body: TokenStream) -> Vec<String> {
    split_commas(body)
        .into_iter()
        .filter(|f| !f.is_empty())
        .map(|f| leading_ident(&f).0)
        .collect()
}

fn parse_input(input: TokenStream) -> (String, Shape) {
    let mut toks = input.into_iter().peekable();
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic types are unsupported ({name})");
        }
    }
    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) => break g,
            Some(_) => continue,
            None => panic!("serde stub derive: {name} has no body"),
        }
    };
    let shape = match (kw.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::NamedStruct(named_field_names(body.stream())),
        ("struct", Delimiter::Parenthesis) => {
            let n = split_commas(body.stream()).into_iter().filter(|f| !f.is_empty()).count();
            if n == 1 {
                Shape::NewtypeStruct
            } else {
                Shape::TupleStruct(n)
            }
        }
        ("enum", Delimiter::Brace) => {
            let variants = split_commas(body.stream())
                .into_iter()
                .filter(|v| !v.is_empty())
                .map(|v| {
                    let (vname, at) = leading_ident(&v);
                    let kind = match v.get(at + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let n = split_commas(g.stream())
                                .into_iter()
                                .filter(|f| !f.is_empty())
                                .count();
                            if n == 1 {
                                VariantKind::Newtype
                            } else {
                                VariantKind::Tuple(n)
                            }
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            VariantKind::Struct(named_field_names(g.stream()))
                        }
                        _ => VariantKind::Unit,
                    };
                    Variant { name: vname, kind }
                })
                .collect();
            Shape::Enum(variants)
        }
        other => panic!("serde stub derive: unsupported item shape {other:?}"),
    };
    (name, shape)
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::ser(&self.{f}))")
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Obj(vec![{entries}])")
        }
        Shape::NewtypeStruct => "::serde::Serialize::ser(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::ser(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Arr(vec![{items}])")
        }
        Shape::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Newtype => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Serialize::ser(__f0))]),"
                        ),
                        VariantKind::Tuple(n_fields) => {
                            let binds = (0..*n_fields)
                                .map(|i| format!("__f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let items = (0..*n_fields)
                                .map(|i| format!("::serde::Serialize::ser(__f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Arr(vec![{items}]))]),"
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!("(\"{f}\".to_string(), ::serde::Serialize::ser({f}))")
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Obj(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn ser(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
    .parse()
    .expect("serde stub derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__de_field(__obj, \"{f}\", \"{name}\")?,"))
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "let __obj = ::serde::__expect_obj(__v, \"{name}\")?;\nOk({name} {{\n{entries}\n}})"
            )
        }
        Shape::NewtypeStruct => {
            format!("Ok({name}(::serde::Deserialize::de(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::de(&__arr[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let __arr = ::serde::__expect_arr(__v, \"{name}\", {n})?;\nOk({name}({items}))"
            )
        }
        Shape::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect::<Vec<_>>()
                .join("\n");
            let data_arms = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Newtype => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::de(__val)?)),"
                        )),
                        VariantKind::Tuple(n_fields) => {
                            let items = (0..*n_fields)
                                .map(|i| format!("::serde::Deserialize::de(&__arr[{i}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            Some(format!(
                                "\"{vn}\" => {{ let __arr = ::serde::__expect_arr(__val, \"{name}::{vn}\", {n_fields})?; Ok({name}::{vn}({items})) }},"
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::__de_field(__obj, \"{f}\", \"{name}::{vn}\")?,"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join("\n");
                            Some(format!(
                                "\"{vn}\" => {{ let __obj = ::serde::__expect_obj(__val, \"{name}::{vn}\")?; Ok({name}::{vn} {{ {entries} }}) }},"
                            ))
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\n__other => Err(::serde::DeError::new(format!(\"unknown {name} variant {{__other}}\"))),\n}},\n\
                 ::serde::Value::Obj(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __val) = &__entries[0];\n\
                 match __tag.as_str() {{\n{data_arms}\n__other => Err(::serde::DeError::new(format!(\"unknown {name} variant {{__other}}\"))),\n}}\n\
                 }},\n\
                 __other => Err(::serde::DeError::new(format!(\"expected {name}, found {{__other}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n fn de(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n}}"
    )
    .parse()
    .expect("serde stub derive: generated Deserialize impl parses")
}
