//! The structured JSONL event sink.
//!
//! A [`RunRecorder`] owns one append-only `.jsonl` file. The first line is
//! a *run manifest* (binary, argv, unix timestamp, git revision, embedded
//! config); every later line is one event object with a `kind` tag and a
//! `t_ms` offset from recorder creation. Lines are flushed as they are
//! written so a crashed run still leaves a readable prefix.
//!
//! Table binaries install one global recorder ([`install_recorder`]); the
//! library crates then publish events through [`emit_event`] without
//! threading a handle through every signature. Events are gated on the
//! *recorder being installed*, not on the span/metrics enabled flag, so a
//! run can keep JSONL records while leaving the hot-path timers off.

use std::fs::{self, File};
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json::Json;

/// Append-only JSONL writer for one run's events.
pub struct RunRecorder {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    started: Instant,
}

impl RunRecorder {
    /// Creates (truncating) the JSONL file at `path`, making parent
    /// directories as needed.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<RunRecorder> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let file = File::create(&path)?;
        Ok(RunRecorder {
            path,
            writer: Mutex::new(BufWriter::new(file)),
            started: Instant::now(),
        })
    }

    /// Where this recorder writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_line(&self, value: &Json) {
        let mut w = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Telemetry must never take the run down: IO errors are swallowed.
        let _ = writeln!(w, "{value}");
        let _ = w.flush();
    }

    /// Writes the run manifest line: binary + argv, wall-clock unix
    /// timestamp, git revision (when available) and any caller-provided
    /// `extra` fields (config, seed, scale, ...).
    pub fn write_manifest(&self, extra: Vec<(&str, Json)>) {
        let argv: Vec<Json> = std::env::args().map(Json::from).collect();
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut pairs: Vec<(String, Json)> = vec![
            ("kind".to_string(), Json::from("manifest")),
            ("unix_ms".to_string(), Json::from(unix_ms)),
            ("argv".to_string(), Json::Arr(argv)),
            (
                "git_rev".to_string(),
                git_rev().map(Json::from).unwrap_or(Json::Null),
            ),
        ];
        for (k, v) in extra {
            pairs.push((k.to_string(), v));
        }
        self.write_line(&Json::Obj(pairs));
    }

    /// Appends one event line: `{"kind": <kind>, "t_ms": <offset>, ...fields}`.
    pub fn event(&self, kind: &str, fields: Vec<(&str, Json)>) {
        let t_ms = self.started.elapsed().as_secs_f64() * 1e3;
        let mut pairs: Vec<(String, Json)> = vec![
            ("kind".to_string(), Json::from(kind)),
            ("t_ms".to_string(), Json::Num(t_ms)),
        ];
        for (k, v) in fields {
            pairs.push((k.to_string(), v));
        }
        self.write_line(&Json::Obj(pairs));
    }
}

/// Short git revision of the working tree, when `git` is available and the
/// process runs inside a repository.
pub fn git_rev() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    if rev.is_empty() {
        None
    } else {
        Some(rev)
    }
}

fn global() -> MutexGuard<'static, Option<RunRecorder>> {
    static RECORDER: OnceLock<Mutex<Option<RunRecorder>>> = OnceLock::new();
    match RECORDER.get_or_init(|| Mutex::new(None)).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Installs `rec` as the process-wide recorder used by [`emit_event`],
/// returning the previously installed one, if any.
pub fn install_recorder(rec: RunRecorder) -> Option<RunRecorder> {
    global().replace(rec)
}

/// Removes and returns the process-wide recorder.
pub fn take_recorder() -> Option<RunRecorder> {
    global().take()
}

/// Path of the currently installed recorder, if any.
pub fn recorder_path() -> Option<PathBuf> {
    global().as_ref().map(|r| r.path().to_path_buf())
}

/// Appends an event through the process-wide recorder; a silent no-op when
/// none is installed, so library crates can emit unconditionally.
pub fn emit_event(kind: &str, fields: Vec<(&str, Json)>) {
    if let Some(rec) = global().as_ref() {
        rec.event(kind, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let unique = format!(
            "telemetry_{tag}_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        );
        std::env::temp_dir().join(unique)
    }

    #[test]
    fn manifest_and_events_are_valid_jsonl() {
        let path = temp_path("events");
        let rec = RunRecorder::create(&path).expect("create recorder");
        rec.write_manifest(vec![("seed", Json::from(7u64))]);
        rec.event("phase", vec![("name", Json::from("warmup"))]);
        drop(rec);

        let text = fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let manifest = Json::parse(lines[0]).expect("manifest parses");
        assert_eq!(
            manifest.get("kind").and_then(Json::as_str),
            Some("manifest")
        );
        assert_eq!(manifest.get("seed").and_then(Json::as_f64), Some(7.0));
        assert!(
            manifest
                .get("unix_ms")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
                > 0.0
        );
        let ev = Json::parse(lines[1]).expect("event parses");
        assert_eq!(ev.get("kind").and_then(Json::as_str), Some("phase"));
        assert_eq!(ev.get("name").and_then(Json::as_str), Some("warmup"));
        assert!(ev.get("t_ms").and_then(Json::as_f64).unwrap_or(-1.0) >= 0.0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn global_recorder_install_take_roundtrip() {
        let _l = crate::test_lock::hold();
        let path = temp_path("global");
        // No recorder installed: emit is a no-op.
        let _ = take_recorder();
        emit_event("noop", vec![]);
        assert!(recorder_path().is_none());

        let rec = RunRecorder::create(&path).expect("create recorder");
        assert!(install_recorder(rec).is_none());
        assert_eq!(recorder_path().as_deref(), Some(path.as_path()));
        emit_event("episode", vec![("reward", Json::from(1.5))]);
        let rec = take_recorder().expect("still installed");
        drop(rec);

        let text = fs::read_to_string(&path).expect("read back");
        let ev = Json::parse(text.lines().next().expect("one line")).expect("parses");
        assert_eq!(ev.get("kind").and_then(Json::as_str), Some("episode"));
        assert_eq!(ev.get("reward").and_then(Json::as_f64), Some(1.5));
        let _ = fs::remove_file(&path);
    }
}
