//! The workspace's only sanctioned wall-clock access.
//!
//! Reproducibility of the paper's tables rests on "same seed ⇒ identical
//! trace", so wall-clock reads are confined to this crate and audited by
//! the `headlint` `wallclock` pass: everything outside `telemetry` (and the
//! bench binaries) must measure time through [`Stopwatch`] instead of
//! calling `Instant::now` directly. Stopwatch values are for *reporting
//! only* — they must never feed simulation, training or decision math.

use std::time::{Duration, Instant};

/// A monotonic timer for timing reports.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    mark: Instant,
}

impl Stopwatch {
    /// Starts (and marks) a new stopwatch.
    pub fn start() -> Self {
        Self {
            mark: Instant::now(),
        }
    }

    /// Time since the last mark.
    pub fn elapsed(&self) -> Duration {
        self.mark.elapsed()
    }

    /// Time since the last mark, seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.mark.elapsed().as_secs_f64()
    }

    /// Time since the last mark, nanoseconds (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.mark.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Returns the nanoseconds since the last mark and re-marks, so
    /// consecutive laps partition the elapsed time without gaps.
    pub fn lap_ns(&mut self) -> u64 {
        let now = Instant::now();
        let ns = u64::try_from(now.duration_since(self.mark).as_nanos()).unwrap_or(u64::MAX);
        self.mark = now;
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_and_laps_partition() {
        let mut sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        let lap = sw.lap_ns();
        assert!(lap >= b);
        // After a lap the mark moved forward, so the next reading restarts
        // near zero relative to the pre-lap total.
        assert!(sw.elapsed() <= Duration::from_secs(1));
        assert!(sw.elapsed_secs() >= 0.0);
    }
}
