//! # telemetry — zero-dependency observability for the HEAD stack
//!
//! Three pillars, all behind one global on/off switch so instrumented hot
//! paths cost a single relaxed atomic load when telemetry is disabled:
//!
//! * **Spans** ([`SpanGuard`], the [`span!`] macro) — scoped wall-clock
//!   timers that nest via a thread-local stack and aggregate into a global
//!   registry, printable as a flamegraph-style tree ([`timing_report`]).
//! * **Metrics** — named [`counter_add`] / [`gauge_set`] /
//!   [`histogram_record`] with log-scale histogram buckets and
//!   p50/p95/p99 extraction ([`metrics_report`]).
//! * **Events** — a structured JSONL sink ([`RunRecorder`]) for episode
//!   records, training-phase transitions and a run manifest (config, seed,
//!   git revision), written under `results/` by the table binaries so every
//!   run is a replayable artifact instead of a flat log.
//!
//! The second-generation layer builds on those: a **flight recorder**
//! ([`FlightRecorder`]) keeps a fixed ring of recent events and dumps them
//! as a JSONL post-mortem on faults and panics; a **span profiler**
//! ([`profile_report`], [`folded_stacks`]) attributes self-time over the
//! span tree and exports flamegraph-compatible folded stacks; and a
//! **trend database** ([`append_trend`]) accumulates per-run metric
//! entries keyed by git revision for regression tracking.
//!
//! The crate is deliberately dependency-free (hand-rolled [`Json`]
//! encoder/parser included) so it builds even when the crates-io registry
//! is unreachable — see README §Reproducibility.
//!
//! ## Usage
//!
//! ```
//! telemetry::set_enabled(true);
//! {
//!     let _outer = telemetry::span!("sim.step");
//!     let _inner = telemetry::span!("car_following");
//!     telemetry::counter_add("sim.collisions", 1);
//!     telemetry::histogram_record("decision.q_loss", 0.02);
//! }
//! println!("{}", telemetry::timing_report());
//! ```

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod clock;
mod events;
mod flight;
mod json;
pub mod keys;
mod metrics;
mod profile;
mod span;
mod trend;

pub use clock::Stopwatch;
pub use events::{
    emit_event, git_rev, install_recorder, recorder_path, take_recorder, RunRecorder,
};
pub use flight::{
    flight_dump, flight_install, flight_install_panic_hook, flight_installed, flight_record,
    flight_status, flight_take, FlightEvent, FlightRecorder, MAX_DUMPS,
};
pub use json::Json;
pub use metrics::{
    counter_add, counter_value, gauge_set, gauge_value, histogram_record, histogram_snapshot,
    metrics_report, reset_metrics, HistogramSnapshot,
};
pub use profile::{folded_stacks, profile, profile_report, ProfileEntry};
pub use span::{reset_spans, span_snapshot, span_stats, timing_report, SpanGuard, SpanStat};
pub use trend::{append_trend, read_trends, trend_baseline, TrendEntry};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when telemetry collection is switched on.
///
/// All recording entry points check this first; the disabled path is one
/// relaxed atomic load and a branch, cheap enough for per-step and per-op
/// call sites.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Switches telemetry collection on or off. Returns the previous state.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::Relaxed)
}

/// Enables telemetry when the `TELEMETRY` environment variable is set to
/// `1`, `true` or `on`. Returns the resulting enabled state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("TELEMETRY") {
        if matches!(v.as_str(), "1" | "true" | "on") {
            set_enabled(true);
        }
    }
    enabled()
}

/// Starts a scoped span timer; expands to a [`SpanGuard`] that must be
/// bound to a local (`let _g = telemetry::span!("sim.step");`) so it lives
/// to the end of the scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::new($name)
    };
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Tests toggling the global enabled flag or reading global registries
    /// serialise on this lock so parallel test threads don't race.
    pub fn hold() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_roundtrip() {
        let _l = test_lock::hold();
        let was = set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }
}
