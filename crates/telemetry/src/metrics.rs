//! The metrics registry: named counters, gauges and log-scale histograms.
//!
//! Histograms use geometric buckets — [`BUCKETS_PER_OCTAVE`] buckets per
//! factor-of-two — so any positive value is represented with a bounded
//! relative error (≤ `2^(1/(2·BUCKETS_PER_OCTAVE))` ≈ 4.4%) across ~27
//! decades, which is plenty for everything from nanosecond op timings to
//! multi-hour training runs. Quantiles are read from the bucket where the
//! cumulative count crosses the requested rank, then clamped to the exact
//! observed `[min, max]` so degenerate distributions stay exact.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Geometric resolution: buckets per factor of two.
const BUCKETS_PER_OCTAVE: f64 = 8.0;
/// Lower edge of the first bucket; values at or below it share bucket 0.
const LO: f64 = 1e-9;
/// Hard cap on bucket count (bucket index for ~1e18 is ~718).
const MAX_BUCKETS: usize = 1024;

fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= LO {
        return 0;
    }
    let idx = 1 + ((v / LO).log2() * BUCKETS_PER_OCTAVE).floor() as usize;
    idx.min(MAX_BUCKETS - 1)
}

/// Geometric midpoint of bucket `i`'s bounds — its representative value.
fn bucket_repr(i: usize) -> f64 {
    if i == 0 {
        LO
    } else {
        LO * 2f64.powf((i as f64 - 0.5) / BUCKETS_PER_OCTAVE)
    }
}

#[derive(Clone, Debug, Default)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl Histogram {
    fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }
}

/// Read-only copy of one histogram's state.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: f64,
    /// Exact minimum recorded value.
    pub min: f64,
    /// Exact maximum recorded value.
    pub max: f64,
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Exact mean of recorded values (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Approximate `q`-quantile (`0.0..=1.0`), within the log-bucket
    /// relative-error bound and clamped to the observed `[min, max]`.
    /// NaN when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_repr(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[derive(Default)]
struct Metrics {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    histograms: HashMap<String, Histogram>,
}

fn registry() -> MutexGuard<'static, Metrics> {
    static METRICS: OnceLock<Mutex<Metrics>> = OnceLock::new();
    match METRICS
        .get_or_init(|| Mutex::new(Metrics::default()))
        .lock()
    {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Adds `delta` to the named counter (no-op while telemetry is disabled).
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    *registry().counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Current value of a counter (0 when never touched).
pub fn counter_value(name: &str) -> u64 {
    registry().counters.get(name).copied().unwrap_or(0)
}

/// Sets the named gauge to `v` (no-op while telemetry is disabled).
pub fn gauge_set(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    registry().gauges.insert(name.to_string(), v);
}

/// Last value written to a gauge.
pub fn gauge_value(name: &str) -> Option<f64> {
    registry().gauges.get(name).copied()
}

/// Records `v` into the named log-scale histogram (no-op while telemetry
/// is disabled).
pub fn histogram_record(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    registry()
        .histograms
        .entry(name.to_string())
        .or_default()
        .record(v);
}

/// Snapshot of the named histogram, if it has ever been written.
pub fn histogram_snapshot(name: &str) -> Option<HistogramSnapshot> {
    registry().histograms.get(name).map(|h| HistogramSnapshot {
        count: h.count,
        sum: h.sum,
        min: h.min,
        max: h.max,
        buckets: h.buckets.clone(),
    })
}

/// Clears every counter, gauge and histogram (for tests and fresh runs).
pub fn reset_metrics() {
    let mut reg = registry();
    reg.counters.clear();
    reg.gauges.clear();
    reg.histograms.clear();
}

/// Renders all registered metrics, sorted by name within each section.
pub fn metrics_report() -> String {
    let reg = registry();
    let mut out = String::from("=== telemetry: metrics ===\n");
    if !reg.counters.is_empty() {
        out.push_str("counters:\n");
        let mut names: Vec<&String> = reg.counters.keys().collect();
        names.sort();
        for n in names {
            let _ = writeln!(out, "  {n:<40} {:>14}", reg.counters[n]);
        }
    }
    if !reg.gauges.is_empty() {
        out.push_str("gauges:\n");
        let mut names: Vec<&String> = reg.gauges.keys().collect();
        names.sort();
        for n in names {
            let _ = writeln!(out, "  {n:<40} {:>14.6}", reg.gauges[n]);
        }
    }
    if !reg.histograms.is_empty() {
        let _ = writeln!(
            out,
            "histograms:{:<31} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "", "count", "mean", "p50", "p95", "p99", "max"
        );
        let mut names: Vec<&String> = reg.histograms.keys().collect();
        names.sort();
        for n in names {
            let h = &reg.histograms[n];
            let snap = HistogramSnapshot {
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
                buckets: h.buckets.clone(),
            };
            let _ = writeln!(
                out,
                "  {n:<40} {:>10} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
                snap.count,
                snap.mean(),
                snap.quantile(0.50),
                snap.quantile(0.95),
                snap.quantile(0.99),
                snap.max,
            );
        }
    }
    if reg.counters.is_empty() && reg.gauges.is_empty() && reg.histograms.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn counters_and_gauges_roundtrip_and_respect_enabled() {
        let _l = test_lock::hold();
        let was = crate::set_enabled(false);
        counter_add("test.m.disabled", 5);
        assert_eq!(counter_value("test.m.disabled"), 0);
        crate::set_enabled(true);
        counter_add("test.m.counter", 2);
        counter_add("test.m.counter", 3);
        gauge_set("test.m.gauge", 0.25);
        crate::set_enabled(was);
        assert_eq!(counter_value("test.m.counter"), 5);
        assert_eq!(gauge_value("test.m.gauge"), Some(0.25));
    }

    #[test]
    fn log_bucket_bounds_hold_the_relative_error_guarantee() {
        // Every positive value's bucket representative is within the
        // documented half-bucket geometric error of the value itself.
        let max_ratio = 2f64.powf(1.0 / (2.0 * BUCKETS_PER_OCTAVE)) + 1e-12;
        for &v in &[1.5e-9, 1e-6, 0.012, 1.0, 123.456, 9.87e4, 3.3e9] {
            let repr = bucket_repr(bucket_index(v));
            let ratio = if repr > v { repr / v } else { v / repr };
            assert!(
                ratio <= max_ratio,
                "value {v}: repr {repr} off by factor {ratio} > {max_ratio}"
            );
        }
        // At or below the floor everything shares bucket 0.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(LO), 0);
    }

    #[test]
    fn histogram_percentiles_are_correct_within_bucket_error() {
        let _l = test_lock::hold();
        let was = crate::set_enabled(true);
        for i in 1..=1000 {
            histogram_record("test.m.hist", i as f64);
        }
        crate::set_enabled(was);
        let h = histogram_snapshot("test.m.hist").expect("recorded");
        assert_eq!(h.count, 1000);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 1000.0);
        assert!(
            (h.mean() - 500.5).abs() < 1e-9,
            "mean is exact: {}",
            h.mean()
        );
        for (q, exact) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q);
            let rel = (got - exact).abs() / exact;
            assert!(
                rel < 0.05,
                "p{:.0} = {got}, want ~{exact} (rel err {rel:.3})",
                q * 100.0
            );
        }
    }

    #[test]
    fn degenerate_histograms_are_exact() {
        let _l = test_lock::hold();
        let was = crate::set_enabled(true);
        histogram_record("test.m.single", 123.456);
        crate::set_enabled(was);
        let h = histogram_snapshot("test.m.single").expect("recorded");
        // min == max clamp makes every quantile exact.
        assert_eq!(h.quantile(0.5), 123.456);
        assert_eq!(h.quantile(0.99), 123.456);
        assert!(histogram_snapshot("test.m.never").is_none());
    }

    #[test]
    fn report_lists_all_sections() {
        let _l = test_lock::hold();
        let was = crate::set_enabled(true);
        counter_add("test.m.rep_counter", 1);
        gauge_set("test.m.rep_gauge", 2.0);
        histogram_record("test.m.rep_hist", 3.0);
        crate::set_enabled(was);
        let rep = metrics_report();
        for needle in [
            "test.m.rep_counter",
            "test.m.rep_gauge",
            "test.m.rep_hist",
            "p95",
        ] {
            assert!(rep.contains(needle), "missing {needle} in:\n{rep}");
        }
    }
}
