//! Deterministic span profiler: self-time attribution over the span tree.
//!
//! [`timing_report`](crate::timing_report) answers "how long did this span
//! take, children included" — good for structure, useless for finding the
//! hot path, because a parent's total double-counts everything beneath it.
//! This module derives **self time** (total minus the sum of direct
//! children) for every recorded span path, renders a top-N hot-path table
//! for bench reports, and exports `flamegraph.pl`-compatible folded stacks
//! so any run's span tree can be turned into an SVG offline
//! (`flamegraph.pl < x.folded > x.svg`).
//!
//! Everything here is a pure function over `&[(String, SpanStat)]` — the
//! shape returned by [`span_snapshot`](crate::span_snapshot) — so the
//! attribution logic is unit-testable on hand-built trees without touching
//! the global registry.

use std::fmt::Write as _;

use crate::span::SpanStat;

/// One span path with its derived self-time attribution.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileEntry {
    /// Full `outer/inner/...` span path.
    pub path: String,
    /// Completions of this exact path.
    pub count: u64,
    /// Total wall-clock including children, nanoseconds.
    pub total_ns: u64,
    /// Wall-clock spent in this span itself: total minus the sum of its
    /// direct children's totals (saturating — a child finishing after its
    /// parent's clock read can nominally exceed the parent).
    pub self_ns: u64,
}

impl ProfileEntry {
    /// Mean self time per completion, nanoseconds.
    pub fn mean_self_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.self_ns as f64 / self.count as f64
        }
    }
}

/// Derives self-time attribution for every path in `snapshot`, sorted by
/// self time descending (ties broken by path for determinism).
///
/// A direct child of path `P` is any path `P/leaf` with no further `/`.
pub fn profile(snapshot: &[(String, SpanStat)]) -> Vec<ProfileEntry> {
    let mut entries: Vec<ProfileEntry> = snapshot
        .iter()
        .map(|(path, stat)| {
            let child_ns: u64 = snapshot
                .iter()
                .filter(|(p, _)| {
                    p.strip_prefix(path.as_str())
                        .and_then(|rest| rest.strip_prefix('/'))
                        .is_some_and(|leaf| !leaf.is_empty() && !leaf.contains('/'))
                })
                .map(|(_, s)| s.total_ns)
                .sum();
            ProfileEntry {
                path: path.clone(),
                count: stat.count,
                total_ns: stat.total_ns,
                self_ns: stat.total_ns.saturating_sub(child_ns),
            }
        })
        .collect();
    entries.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
    entries
}

fn fmt_duration(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Renders the top-`n` hot paths by self time as a fixed-width table:
/// rank, path, calls, self total, self mean, and share of the run's total
/// self time (which equals the sum of root totals, so shares add to 100%).
pub fn profile_report(snapshot: &[(String, SpanStat)], n: usize) -> String {
    let entries = profile(snapshot);
    let mut out = String::from("=== telemetry: self-time profile ===\n");
    if entries.is_empty() {
        out.push_str("(no spans recorded)\n");
        return out;
    }
    let grand_total: u64 = entries.iter().map(|e| e.self_ns).sum();
    for (rank, e) in entries.iter().take(n.max(1)).enumerate() {
        let share = if grand_total > 0 {
            100.0 * e.self_ns as f64 / grand_total as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:>2}. {:<44} {:>10} calls  self {:>10}  mean {:>10}  {share:5.1}%",
            rank + 1,
            e.path,
            e.count,
            fmt_duration(e.self_ns as f64),
            fmt_duration(e.mean_self_ns()),
        );
    }
    if entries.len() > n {
        let _ = writeln!(out, "    ... {} more paths", entries.len() - n);
    }
    out
}

/// Exports the snapshot as folded stacks — one `a;b;c <self_ns>` line per
/// path, semicolon-separated frames, self time (nanoseconds) as the sample
/// count — the input format of Brendan Gregg's `flamegraph.pl`. Lines are
/// sorted by stack for deterministic output; zero-self-time paths are kept
/// so the frame hierarchy stays complete.
pub fn folded_stacks(snapshot: &[(String, SpanStat)]) -> String {
    let mut lines: Vec<String> = profile(snapshot)
        .iter()
        .map(|e| format!("{} {}", e.path.replace('/', ";"), e.self_ns))
        .collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root (100µs) → {a (60µs) → {a1 (20µs)}, b (25µs)}, plus an
    /// unrelated top-level path `other` (7µs).
    fn tree() -> Vec<(String, SpanStat)> {
        vec![
            (
                "root".to_string(),
                SpanStat {
                    count: 1,
                    total_ns: 100_000,
                },
            ),
            (
                "root/a".to_string(),
                SpanStat {
                    count: 2,
                    total_ns: 60_000,
                },
            ),
            (
                "root/a/a1".to_string(),
                SpanStat {
                    count: 4,
                    total_ns: 20_000,
                },
            ),
            (
                "root/b".to_string(),
                SpanStat {
                    count: 1,
                    total_ns: 25_000,
                },
            ),
            (
                "other".to_string(),
                SpanStat {
                    count: 1,
                    total_ns: 7_000,
                },
            ),
        ]
    }

    fn self_of(entries: &[ProfileEntry], path: &str) -> u64 {
        entries
            .iter()
            .find(|e| e.path == path)
            .unwrap_or_else(|| panic!("missing {path}"))
            .self_ns
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let entries = profile(&tree());
        // root: 100 − (60 + 25) = 15; a1 is a grandchild and must NOT be
        // subtracted from root again.
        assert_eq!(self_of(&entries, "root"), 15_000);
        assert_eq!(self_of(&entries, "root/a"), 40_000);
        assert_eq!(self_of(&entries, "root/a/a1"), 20_000);
        assert_eq!(self_of(&entries, "root/b"), 25_000);
        assert_eq!(self_of(&entries, "other"), 7_000);
        // Self times partition the root totals exactly.
        let total: u64 = entries.iter().map(|e| e.self_ns).sum();
        assert_eq!(total, 107_000);
    }

    #[test]
    fn entries_sorted_by_self_time_descending() {
        let entries = profile(&tree());
        let self_times: Vec<u64> = entries.iter().map(|e| e.self_ns).collect();
        let mut sorted = self_times.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(self_times, sorted);
        assert_eq!(entries[0].path, "root/a");
    }

    #[test]
    fn sibling_prefix_is_not_a_child() {
        // `root/ab` shares a string prefix with `root/a` but is a sibling,
        // and `root/a/a1/deep` is a grandchild — neither may be subtracted
        // from `root/a`.
        let snap = vec![
            (
                "root/a".to_string(),
                SpanStat {
                    count: 1,
                    total_ns: 50_000,
                },
            ),
            (
                "root/ab".to_string(),
                SpanStat {
                    count: 1,
                    total_ns: 30_000,
                },
            ),
            (
                "root/a/a1".to_string(),
                SpanStat {
                    count: 1,
                    total_ns: 10_000,
                },
            ),
            (
                "root/a/a1/deep".to_string(),
                SpanStat {
                    count: 1,
                    total_ns: 4_000,
                },
            ),
        ];
        let entries = profile(&snap);
        assert_eq!(self_of(&entries, "root/a"), 40_000);
        assert_eq!(self_of(&entries, "root/ab"), 30_000);
        assert_eq!(self_of(&entries, "root/a/a1"), 6_000);
    }

    #[test]
    fn child_exceeding_parent_saturates_to_zero() {
        let snap = vec![
            (
                "p".to_string(),
                SpanStat {
                    count: 1,
                    total_ns: 10,
                },
            ),
            (
                "p/c".to_string(),
                SpanStat {
                    count: 1,
                    total_ns: 25,
                },
            ),
        ];
        assert_eq!(self_of(&profile(&snap), "p"), 0);
    }

    #[test]
    fn report_ranks_and_truncates() {
        let report = profile_report(&tree(), 2);
        assert!(report.contains(" 1. root/a"), "hot path first:\n{report}");
        assert!(report.contains(" 2. root/b"), "runner-up second:\n{report}");
        assert!(!report.contains("other"), "beyond top-N cut:\n{report}");
        assert!(report.contains("... 3 more paths"), "{report}");
        assert!(report.contains('%'));
        let empty = profile_report(&[], 5);
        assert!(empty.contains("(no spans recorded)"));
    }

    #[test]
    fn folded_stacks_match_flamegraph_format() {
        let folded = folded_stacks(&tree());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "other 7000",
                "root 15000",
                "root;a 40000",
                "root;a;a1 20000",
                "root;b 25000",
            ]
        );
        // Exactly "frames space count" per line, nothing else.
        for line in lines {
            let (stack, count) = line.rsplit_once(' ').expect("space-separated");
            assert!(!stack.is_empty());
            assert!(count.parse::<u64>().is_ok(), "bad count in {line}");
        }
        assert!(folded.ends_with('\n'));
        assert_eq!(folded_stacks(&[]), "");
    }
}
