//! Scoped span timers with hierarchical aggregation.
//!
//! A [`SpanGuard`] pushes its name onto a thread-local stack on creation
//! and, on drop, records its elapsed wall-clock under the full
//! `outer/inner/...` path in a global registry. Guards are strictly
//! scope-nested (LIFO), which the borrow checker enforces for the usual
//! `let _g = span!(...)` pattern. When telemetry is disabled the guard is
//! an empty struct and construction is one atomic load.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Aggregated statistics of one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall-clock across all completions, nanoseconds.
    pub total_ns: u64,
}

impl SpanStat {
    /// Total wall-clock, seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Mean duration per completion, nanoseconds (0 when never completed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

fn registry() -> MutexGuard<'static, HashMap<String, SpanStat>> {
    static SPANS: OnceLock<Mutex<HashMap<String, SpanStat>>> = OnceLock::new();
    match SPANS.get_or_init(|| Mutex::new(HashMap::new())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A scoped wall-clock timer; see the module docs and the
/// [`span!`](crate::span!) macro.
pub struct SpanGuard {
    /// `Some` only when telemetry was enabled at construction — exactly the
    /// guards that pushed onto the thread-local stack and must pop it.
    start: Option<Instant>,
}

impl SpanGuard {
    /// Starts a span named `name` (a no-op when telemetry is disabled).
    pub fn new(name: &'static str) -> Self {
        if !crate::enabled() {
            return Self { start: None };
        }
        STACK.with(|s| s.borrow_mut().push(name));
        Self {
            start: Some(Instant::now()),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut reg = registry();
        let stat = reg.entry(path).or_default();
        stat.count += 1;
        stat.total_ns += elapsed_ns;
    }
}

/// Aggregated stats for every span whose *leaf* name is `name`, summed
/// across all paths it appears under (e.g. `head.decide` both at top level
/// and nested under `head.train_agent`).
pub fn span_stats(name: &str) -> SpanStat {
    let reg = registry();
    let mut total = SpanStat::default();
    for (path, stat) in reg.iter() {
        if path.rsplit('/').next() == Some(name) {
            total.count += stat.count;
            total.total_ns += stat.total_ns;
        }
    }
    total
}

/// Snapshot of all recorded `(path, stats)` pairs, sorted by path.
pub fn span_snapshot() -> Vec<(String, SpanStat)> {
    let mut all: Vec<(String, SpanStat)> =
        registry().iter().map(|(k, v)| (k.clone(), *v)).collect();
    all.sort_by(|a, b| a.0.cmp(&b.0));
    all
}

/// Clears all recorded span statistics (for tests and fresh runs).
pub fn reset_spans() {
    registry().clear();
}

fn fmt_duration(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Renders the flamegraph-style timing tree: every span path indented
/// under its parent, with call count, total wall-clock, mean duration and
/// share of the parent's total. Children are sorted by total descending.
pub fn timing_report() -> String {
    let snapshot = span_snapshot();
    let mut out = String::from("=== telemetry: timing tree ===\n");
    if snapshot.is_empty() {
        out.push_str("(no spans recorded)\n");
        return out;
    }
    // Group by parent path ("" for roots).
    let mut children: HashMap<&str, Vec<(&str, &str, SpanStat)>> = HashMap::new();
    for (path, stat) in &snapshot {
        let (parent, leaf) = match path.rfind('/') {
            Some(i) => (&path[..i], &path[i + 1..]),
            None => ("", path.as_str()),
        };
        children
            .entry(parent)
            .or_default()
            .push((path.as_str(), leaf, *stat));
    }
    for list in children.values_mut() {
        list.sort_by(|a, b| b.2.total_ns.cmp(&a.2.total_ns).then(a.1.cmp(b.1)));
    }
    fn render(
        out: &mut String,
        children: &HashMap<&str, Vec<(&str, &str, SpanStat)>>,
        parent_path: &str,
        parent_total: Option<u64>,
        depth: usize,
    ) {
        let Some(list) = children.get(parent_path) else {
            return;
        };
        for (path, leaf, stat) in list {
            let label = format!("{}{}", "  ".repeat(depth), leaf);
            let share = match parent_total {
                Some(p) if p > 0 => format!("  {:4.1}%", 100.0 * stat.total_ns as f64 / p as f64),
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "{label:<38} {:>10} calls  total {:>10}  mean {:>10}{share}",
                stat.count,
                fmt_duration(stat.total_ns as f64),
                fmt_duration(stat.mean_ns()),
            );
            render(out, children, path, Some(stat.total_ns), depth + 1);
        }
    }
    render(&mut out, &children, "", None, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = test_lock::hold();
        let was = crate::set_enabled(false);
        {
            let _g = crate::span!("test.disabled_span");
        }
        assert_eq!(span_stats("test.disabled_span").count, 0);
        crate::set_enabled(was);
    }

    #[test]
    fn nesting_builds_paths_and_aggregates() {
        let _l = test_lock::hold();
        let was = crate::set_enabled(true);
        {
            let _outer = crate::span!("test.outer");
            for _ in 0..3 {
                let _inner = crate::span!("test.inner");
                std::hint::black_box(2 + 2);
            }
        }
        {
            // The same leaf name at top level lands on a different path.
            let _inner = crate::span!("test.inner");
        }
        crate::set_enabled(was);

        let paths: Vec<String> = span_snapshot().into_iter().map(|(p, _)| p).collect();
        assert!(
            paths.iter().any(|p| p == "test.outer"),
            "missing root path in {paths:?}"
        );
        assert!(
            paths.iter().any(|p| p == "test.outer/test.inner"),
            "missing nested path in {paths:?}"
        );
        assert!(
            paths.iter().any(|p| p == "test.inner"),
            "missing top-level path in {paths:?}"
        );

        let outer = span_stats("test.outer");
        assert_eq!(outer.count, 1);
        // Leaf lookup sums the nested (3) and top-level (1) occurrences.
        let inner = span_stats("test.inner");
        assert_eq!(inner.count, 4);
        // A parent's total covers its children's.
        assert!(
            outer.total_ns
                >= span_snapshot()
                    .iter()
                    .find(|(p, _)| p == "test.outer/test.inner")
                    .unwrap()
                    .1
                    .total_ns
        );
    }

    #[test]
    fn timing_report_renders_tree() {
        let _l = test_lock::hold();
        let was = crate::set_enabled(true);
        {
            let _a = crate::span!("test.report_root");
            let _b = crate::span!("test.report_leaf");
        }
        crate::set_enabled(was);
        let report = timing_report();
        assert!(report.contains("test.report_root"));
        assert!(
            report.contains("  test.report_leaf"),
            "child must be indented:\n{report}"
        );
        assert!(
            report.contains('%'),
            "child line carries a parent share:\n{report}"
        );
    }

    #[test]
    fn mean_ns_is_total_over_count() {
        let s = SpanStat {
            count: 4,
            total_ns: 1000,
        };
        assert_eq!(s.mean_ns(), 250.0);
        assert_eq!(SpanStat::default().mean_ns(), 0.0);
    }
}
