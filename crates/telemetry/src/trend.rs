//! The bench trend database: an append-only JSONL history of run metrics.
//!
//! Every CI perf-smoke run (and any bench bin invoked with a trend path)
//! appends one [`TrendEntry`] line to `results/trends.jsonl`, keyed by git
//! revision + binary name + unix timestamp and carrying a flat metric map.
//! The file is append-only on purpose: the regression tracker
//! (`bench --bin benchdiff --trend ...`) reads the *latest* entry for a
//! binary as its baseline, and the full history stays greppable per metric
//! across revisions — the measured trajectory ROADMAP items 1 and 5 ask
//! for.

use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::events::git_rev;
use crate::json::Json;

/// One run's worth of trend metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendEntry {
    /// Short git revision the run was built from (empty when unavailable).
    pub git_rev: String,
    /// Bench binary that produced the metrics (`perf`, `table7`, ...).
    pub bin: String,
    /// Wall-clock unix timestamp of the append, milliseconds.
    pub unix_ms: u64,
    /// Run context echoed from the manifest (scale, threads, faults, ...).
    pub context: Vec<(String, Json)>,
    /// Flat `metric name → value` map; dotted names mirror benchdiff's
    /// flattening of the BENCH/table JSONs.
    pub metrics: Vec<(String, f64)>,
}

impl TrendEntry {
    /// Builds an entry for `bin`, stamping the current git revision and
    /// wall-clock time.
    pub fn now(bin: &str, context: Vec<(String, Json)>, metrics: Vec<(String, f64)>) -> TrendEntry {
        TrendEntry {
            git_rev: git_rev().unwrap_or_default(),
            bin: bin.to_string(),
            unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            context,
            metrics,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("git_rev".to_string(), Json::from(self.git_rev.as_str())),
            ("bin".to_string(), Json::from(self.bin.as_str())),
            ("unix_ms".to_string(), Json::from(self.unix_ms)),
            ("context".to_string(), Json::Obj(self.context.clone())),
            (
                "metrics".to_string(),
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Option<TrendEntry> {
        let metrics = match v.get("metrics") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                .collect(),
            _ => Vec::new(),
        };
        let context = match v.get("context") {
            Some(Json::Obj(pairs)) => pairs.clone(),
            _ => Vec::new(),
        };
        Some(TrendEntry {
            git_rev: v.get("git_rev").and_then(Json::as_str)?.to_string(),
            bin: v.get("bin").and_then(Json::as_str)?.to_string(),
            unix_ms: v.get("unix_ms").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            context,
            metrics,
        })
    }

    /// Looks up one metric by exact name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// Appends `entry` as one JSONL line to `path`, creating the file and its
/// parent directories on first use.
pub fn append_trend(path: impl AsRef<Path>, entry: &TrendEntry) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{}", entry.to_json())
}

/// Reads every parseable entry from `path`, in file (append) order.
/// A missing file reads as an empty history; malformed lines are skipped
/// so one bad append cannot poison the whole database.
pub fn read_trends(path: impl AsRef<Path>) -> Vec<TrendEntry> {
    let Ok(text) = fs::read_to_string(path.as_ref()) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| Json::parse(line).ok())
        .filter_map(|v| TrendEntry::from_json(&v))
        .collect()
}

/// The latest (last-appended) entry for `bin`, used as the regression
/// baseline by `benchdiff --trend`.
pub fn trend_baseline(path: impl AsRef<Path>, bin: &str) -> Option<TrendEntry> {
    read_trends(path).into_iter().rev().find(|e| e.bin == bin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "trends_{tag}_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn entry(bin: &str, rev: &str, ms: u64, v: f64) -> TrendEntry {
        TrendEntry {
            git_rev: rev.to_string(),
            bin: bin.to_string(),
            unix_ms: ms,
            context: vec![("scale".to_string(), Json::from("smoke"))],
            metrics: vec![("matmul.wall_s".to_string(), v)],
        }
    }

    #[test]
    fn append_then_read_roundtrips() {
        let path = temp_path("roundtrip");
        let _ = fs::remove_file(&path);
        append_trend(&path, &entry("perf", "abc", 1, 0.5)).expect("append");
        append_trend(&path, &entry("table7", "abc", 2, 1.5)).expect("append");
        let back = read_trends(&path);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].bin, "perf");
        assert_eq!(back[0].metric("matmul.wall_s"), Some(0.5));
        assert_eq!(back[0].metric("missing"), None);
        assert_eq!(
            back[1].context,
            vec![("scale".to_string(), Json::from("smoke"))]
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn baseline_is_latest_entry_for_bin() {
        let path = temp_path("baseline");
        let _ = fs::remove_file(&path);
        append_trend(&path, &entry("perf", "rev1", 1, 0.5)).expect("append");
        append_trend(&path, &entry("table7", "rev1", 2, 9.0)).expect("append");
        append_trend(&path, &entry("perf", "rev2", 3, 0.4)).expect("append");
        let base = trend_baseline(&path, "perf").expect("baseline");
        assert_eq!(base.git_rev, "rev2");
        assert_eq!(base.metric("matmul.wall_s"), Some(0.4));
        assert!(trend_baseline(&path, "nope").is_none());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_and_bad_lines_are_tolerated() {
        let path = temp_path("tolerant");
        let _ = fs::remove_file(&path);
        assert!(read_trends(&path).is_empty());
        fs::write(&path, "not json\n{\"bin\": 3}\n").expect("write");
        append_trend(&path, &entry("perf", "rev1", 1, 0.5)).expect("append");
        let back = read_trends(&path);
        assert_eq!(back.len(), 1, "malformed lines skipped");
        assert_eq!(back[0].git_rev, "rev1");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn now_stamps_bin_and_time() {
        let e = TrendEntry::now("perf", Vec::new(), vec![("m".to_string(), 1.0)]);
        assert_eq!(e.bin, "perf");
        assert!(e.unix_ms > 0);
    }
}
