//! The central telemetry-key registry.
//!
//! Every span name, counter, gauge, histogram and JSONL event kind used
//! anywhere in the workspace is declared here as a `pub const`, and call
//! sites reference the constant instead of repeating the string. A typo in
//! a scattered literal silently drops a metric (the registry is keyed by
//! exact name); centralising the names makes that a compile error, and the
//! `headlint` `telemetry-keys` pass statically verifies that (a) any string
//! literal handed to a telemetry entry point is registered here and (b)
//! every registered key has at least one call site.
//!
//! Naming scheme: `<subsystem>.<metric>` with `_` inside segments. Span
//! names nested under an instrumented parent may be bare segment names
//! (e.g. [`SPAN_EPOCH`]) because span paths are reported as
//! `outer/inner/...`.

// --- Span names ---------------------------------------------------------

/// One simulator step (`traffic-sim`), parent of the per-phase spans.
pub const SPAN_SIM_STEP: &str = "sim.step";
/// One fleet step (`head::fleet`): sense + batched decide + world step.
pub const SPAN_FLEET_STEP: &str = "fleet.step";
/// Simulator phase 1: lane-change decisions.
pub const SPAN_LANE_CHANGE: &str = "lane_change";
/// Simulator phase 2: longitudinal control.
pub const SPAN_CAR_FOLLOWING: &str = "car_following";
/// Simulator phase 3: state integration.
pub const SPAN_INTEGRATE: &str = "integrate";
/// Simulator phase 4: collision detection.
pub const SPAN_COLLISION: &str = "collision";
/// Simulator phase 5: exit recycling and respawn.
pub const SPAN_RECYCLE: &str = "recycle";
/// One closed-loop episode (`head`).
pub const SPAN_HEAD_EPISODE: &str = "head.episode";
/// One agent decision inside an episode.
pub const SPAN_HEAD_DECIDE: &str = "head.decide";
/// One environment transition inside an episode.
pub const SPAN_ENV_STEP: &str = "env.step";
/// One learning feedback call inside an episode.
pub const SPAN_HEAD_FEEDBACK: &str = "head.feedback";
/// A whole `train_agent` invocation.
pub const SPAN_HEAD_TRAIN_AGENT: &str = "head.train_agent";
/// A whole `train_agent_resumable` invocation.
pub const SPAN_HEAD_TRAIN_RESUMABLE: &str = "head.train_resumable";
/// Seeding the replay buffer with demonstration transitions.
pub const SPAN_HEAD_SEED_DEMOS: &str = "head.seed_demos";
/// A whole greedy-evaluation sweep.
pub const SPAN_HEAD_EVALUATE: &str = "head.evaluate";
/// Training the LST-GAT predictor inside an experiment driver.
pub const SPAN_HEAD_TRAIN_LSTGAT: &str = "head.train_lstgat";
/// A whole predictor-training invocation (`perception`).
pub const SPAN_PERCEPTION_TRAIN: &str = "perception.train";
/// One training epoch (nested under [`SPAN_PERCEPTION_TRAIN`]).
pub const SPAN_EPOCH: &str = "epoch";
/// One minibatch step (nested under [`SPAN_EPOCH`]).
pub const SPAN_TRAIN_BATCH: &str = "train_batch";
/// A whole predictor-evaluation invocation.
pub const SPAN_PERCEPTION_EVALUATE: &str = "perception.evaluate";
/// One BP-DQN learn step.
pub const SPAN_BPDQN_LEARN: &str = "bpdqn.learn";
/// One P-DQN learn step.
pub const SPAN_PDQN_LEARN: &str = "pdqn.learn";
/// One P-DDPG learn step.
pub const SPAN_PDDPG_LEARN: &str = "pddpg.learn";
/// Drawing a minibatch from the replay buffer (nested under a learn span).
pub const SPAN_REPLAY_SAMPLE: &str = "replay_sample";

// --- Counters -----------------------------------------------------------

/// Collisions detected by the simulator.
pub const SIM_COLLISIONS: &str = "sim.collisions";
/// Non-finite external commands replaced by coasting.
pub const SIM_SANITIZED_COMMANDS: &str = "sim.sanitized_commands";
/// Vehicles frozen because integration would go non-finite.
pub const SIM_NONFINITE_FROZEN: &str = "sim.nonfinite_frozen";
/// Vehicles merged into a successor segment by the migration path.
pub const SIM_SHARD_MIGRATIONS: &str = "sim.shard.migrations";
/// Boundary crossings held back by an occupied merge pocket.
pub const SIM_SHARD_HELD: &str = "sim.shard.held";
/// Batched AV decisions issued by the fleet driver.
pub const FLEET_DECISIONS: &str = "fleet.decisions";
/// Fleet AVs that reached a network exit and were re-injected.
pub const FLEET_ARRIVALS: &str = "fleet.arrivals";
/// Fleet AVs that collided and were re-injected.
pub const FLEET_AV_COLLISIONS: &str = "fleet.av_collisions";
/// Episodes completed (any terminal).
pub const HEAD_EPISODES: &str = "head.episodes";
/// Non-finite training losses caught by the divergence guard.
pub const NN_NONFINITE_LOSS: &str = "nn.nonfinite.loss";
/// Non-finite gradients caught by the divergence guard.
pub const NN_NONFINITE_GRAD: &str = "nn.nonfinite.grad";
/// Optimiser steps skipped by the divergence guard.
pub const NN_NONFINITE_SKIPPED: &str = "nn.nonfinite.skipped";
/// Parameter-store restores performed by the divergence guard.
pub const NN_NONFINITE_RESTORED: &str = "nn.nonfinite.restored";
/// Episodes ended by a non-finite vehicle state.
pub const ROBUSTNESS_NONFINITE_VEHICLE: &str = "robustness.nonfinite_vehicle";
/// Episodes ended by a non-finite reward.
pub const ROBUSTNESS_NONFINITE_REWARD: &str = "robustness.nonfinite_reward";
/// Episodes ended by a non-finite commanded action.
pub const ROBUSTNESS_NONFINITE_ACTION: &str = "robustness.nonfinite_action";
/// Episodes aborted by the watchdog.
pub const ROBUSTNESS_WATCHDOG_ABORT: &str = "robustness.watchdog_abort";
/// Injected sensor faults: dropped detections.
pub const SENSOR_FAULT_DROPOUT: &str = "sensor.fault.dropout";
/// Injected sensor faults: noisy detections.
pub const SENSOR_FAULT_NOISE: &str = "sensor.fault.noise";
/// Injected sensor faults: stale (latent) frames.
pub const SENSOR_FAULT_LATENCY: &str = "sensor.fault.latency";
/// Injected sensor faults: whole-frame blackouts.
pub const SENSOR_FAULT_BLACKOUT: &str = "sensor.fault.blackout";
/// Injected sensor faults: NaN-corrupted detections.
pub const SENSOR_FAULT_NAN: &str = "sensor.fault.nan";
/// Fallback steps served from the last prediction.
pub const PERCEPTION_FALLBACK_LAST_PREDICTION: &str = "perception.fallback.last_prediction";
/// Fallback steps served from the last observation.
pub const PERCEPTION_FALLBACK_LAST_OBSERVATION: &str = "perception.fallback.last_observation";
/// Fallback steps served by constant-velocity extrapolation.
pub const PERCEPTION_FALLBACK_EXTRAPOLATION: &str = "perception.fallback.extrapolation";
/// Fresh `Matrix` backing-store allocations made by the nn `BufferPool`.
pub const NN_ALLOC_FRESH: &str = "nn.alloc.fresh";
/// `Matrix` backing stores served from the nn `BufferPool` free lists.
pub const NN_ALLOC_REUSED: &str = "nn.alloc.reused";
/// Bytes freshly allocated by the nn `BufferPool`.
pub const NN_ALLOC_BYTES: &str = "nn.alloc.bytes";
/// Parallel map calls executed by `par::Pool`.
pub const PAR_RUNS: &str = "par.runs";
/// Items processed by `par::Pool` (serial and parallel paths alike).
pub const PAR_JOBS: &str = "par.jobs";
/// Worker panics caught by `par::Pool` and surfaced as errors.
pub const PAR_WORKER_PANICS: &str = "par.worker_panics";
/// Decision requests received by the `headd` service.
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Requests shed by the admission controller (bounded queue overflow).
pub const SERVE_SHED: &str = "serve.shed";
/// Responses served from a degraded ladder tier (replay or safe).
pub const SERVE_DEGRADED: &str = "serve.degraded";
/// Degraded responses served by replaying the last valid action.
pub const SERVE_TIER_REPLAY: &str = "serve.tier.replay";
/// Degraded responses served by the rule-based safe fallback.
pub const SERVE_TIER_SAFE: &str = "serve.tier.safe";
/// Full-inference outputs rejected for being non-finite.
pub const SERVE_NONFINITE: &str = "serve.nonfinite";
/// Requests whose full inference overran the deadline budget.
pub const SERVE_DEADLINE_MISS: &str = "serve.deadline_miss";
/// Weight hot-reloads that validated and were committed.
pub const SERVE_RELOAD_OK: &str = "serve.reload.ok";
/// Weight hot-reloads rejected (corrupt/mismatched/non-finite) and rolled
/// back to the serving weights.
pub const SERVE_RELOAD_REJECTED: &str = "serve.reload.rejected";
/// Files analysed by a `headlint` run (cache hits + misses).
pub const LINT_FILES: &str = "lint.files";
/// Files served from the `headlint` incremental cache.
pub const LINT_CACHE_HITS: &str = "lint.cache.hits";
/// Files analysed from scratch by `headlint` (cold cache or changed).
pub const LINT_CACHE_MISSES: &str = "lint.cache.misses";
/// GEMM auto-dispatch decisions that stayed on the serial micro-kernel.
pub const NN_KERNEL_DISPATCH_SERIAL: &str = "nn.kernel.dispatch_serial";
/// GEMM auto-dispatch decisions that took the row-partitioned parallel path.
pub const NN_KERNEL_DISPATCH_PARALLEL: &str = "nn.kernel.dispatch_parallel";
/// States answered through a batched greedy-inference pass (wide forward).
pub const NN_KERNEL_BATCHED_STATES: &str = "nn.kernel.batched_states";

// --- Dynamic counter prefixes -------------------------------------------

/// Prefix of the per-op forward-pass aggregates flushed by `nn::Graph`
/// (`nn.fwd.<op>.calls` / `nn.fwd.<op>.ns`).
pub const NN_FWD_PREFIX: &str = "nn.fwd";
/// Prefix of the per-op backward-pass aggregates flushed by `nn::Graph`
/// (`nn.bwd.<op>.calls` / `nn.bwd.<op>.ns`).
pub const NN_BWD_PREFIX: &str = "nn.bwd";

// --- Gauges -------------------------------------------------------------

/// Vehicles currently on the road.
pub const SIM_VEHICLES: &str = "sim.vehicles";
/// Shard count the simulator's segment stepping fans out over.
pub const SIM_SHARD_COUNT: &str = "sim.shard.count";
/// Concurrent HEAD agents driven by the fleet driver.
pub const FLEET_AVS: &str = "fleet.avs";
/// Current ε of the ε-greedy exploration schedule.
pub const DECISION_EPSILON: &str = "decision.epsilon";
/// Transitions currently held by the replay buffer.
pub const DECISION_REPLAY_OCCUPANCY: &str = "decision.replay_occupancy";
/// Mean training loss of the last completed perception epoch.
pub const PERCEPTION_EPOCH_LOSS: &str = "perception.epoch_loss";
/// Process-global worker count configured via `par::set_threads`.
pub const PAR_THREADS: &str = "par.threads";
/// Hardware execution units visible to the process
/// (`std::thread::available_parallelism`), cached at first query.
pub const PAR_HARDWARE_THREADS: &str = "par.hardware_threads";
/// Worker count auto-dispatch plans for: requested threads capped by the
/// hardware count.
pub const PAR_EFFECTIVE_THREADS: &str = "par.effective_threads";

// --- Histograms ---------------------------------------------------------

/// Steps per completed episode.
pub const HEAD_EPISODE_STEPS: &str = "head.episode_steps";
/// Per-minibatch Q-network loss.
pub const DECISION_Q_LOSS: &str = "decision.q_loss";
/// Per-minibatch parameter-network loss.
pub const DECISION_X_LOSS: &str = "decision.x_loss";
/// Per-minibatch perception training loss.
pub const PERCEPTION_BATCH_LOSS: &str = "perception.batch_loss";
/// Per-request decision latency of the `headd` service, ms.
pub const SERVE_LATENCY_MS: &str = "serve.latency_ms";

// --- JSONL event kinds --------------------------------------------------

/// One completed episode record.
pub const EVENT_EPISODE: &str = "episode";
/// A training run resumed from a checkpoint.
pub const EVENT_RESUME: &str = "resume";
/// An experiment-driver phase transition.
pub const EVENT_PHASE: &str = "phase";
/// A recoverable robustness fault.
pub const EVENT_ROBUSTNESS: &str = "robustness";
/// One completed perception-training epoch.
pub const EVENT_PERCEPTION_EPOCH: &str = "perception_epoch";

// --- Flight-recorder dump reasons ---------------------------------------

/// An episode ended with `Terminal::Fault`.
pub const FLIGHT_TERMINAL_FAULT: &str = "flight.terminal_fault";
/// The nn divergence guard restored a parameter snapshot.
pub const FLIGHT_NONFINITE_RESTORE: &str = "flight.nonfinite_restore";
/// Serial and parallel checksums diverged in the perf harness.
pub const FLIGHT_CHECKSUM_DIVERGENCE: &str = "flight.checksum_divergence";
/// The process panicked with a flight recorder installed.
pub const FLIGHT_PANIC: &str = "flight.panic";
/// The serve admission controller shed part of a request burst.
pub const FLIGHT_SERVE_SHED: &str = "flight.serve_shed";
/// The serve degradation ladder moved to a worse tier.
pub const FLIGHT_SERVE_DEGRADE: &str = "flight.serve_degrade";
/// A weight hot-reload was rejected and rolled back.
pub const FLIGHT_SERVE_ROLLBACK: &str = "flight.serve_rollback";

/// Every registered key, for runtime validation and report tooling.
/// (The `headlint` unused-key check works from the `pub const` items
/// themselves, not from this list.)
pub const ALL: &[&str] = &[
    SPAN_SIM_STEP,
    SPAN_FLEET_STEP,
    SPAN_LANE_CHANGE,
    SPAN_CAR_FOLLOWING,
    SPAN_INTEGRATE,
    SPAN_COLLISION,
    SPAN_RECYCLE,
    SPAN_HEAD_EPISODE,
    SPAN_HEAD_DECIDE,
    SPAN_ENV_STEP,
    SPAN_HEAD_FEEDBACK,
    SPAN_HEAD_TRAIN_AGENT,
    SPAN_HEAD_TRAIN_RESUMABLE,
    SPAN_HEAD_SEED_DEMOS,
    SPAN_HEAD_EVALUATE,
    SPAN_HEAD_TRAIN_LSTGAT,
    SPAN_PERCEPTION_TRAIN,
    SPAN_EPOCH,
    SPAN_TRAIN_BATCH,
    SPAN_PERCEPTION_EVALUATE,
    SPAN_BPDQN_LEARN,
    SPAN_PDQN_LEARN,
    SPAN_PDDPG_LEARN,
    SPAN_REPLAY_SAMPLE,
    SIM_COLLISIONS,
    SIM_SANITIZED_COMMANDS,
    SIM_NONFINITE_FROZEN,
    SIM_SHARD_MIGRATIONS,
    SIM_SHARD_HELD,
    FLEET_DECISIONS,
    FLEET_ARRIVALS,
    FLEET_AV_COLLISIONS,
    HEAD_EPISODES,
    NN_NONFINITE_LOSS,
    NN_NONFINITE_GRAD,
    NN_NONFINITE_SKIPPED,
    NN_NONFINITE_RESTORED,
    ROBUSTNESS_NONFINITE_VEHICLE,
    ROBUSTNESS_NONFINITE_REWARD,
    ROBUSTNESS_NONFINITE_ACTION,
    ROBUSTNESS_WATCHDOG_ABORT,
    SENSOR_FAULT_DROPOUT,
    SENSOR_FAULT_NOISE,
    SENSOR_FAULT_LATENCY,
    SENSOR_FAULT_BLACKOUT,
    SENSOR_FAULT_NAN,
    PERCEPTION_FALLBACK_LAST_PREDICTION,
    PERCEPTION_FALLBACK_LAST_OBSERVATION,
    PERCEPTION_FALLBACK_EXTRAPOLATION,
    NN_ALLOC_FRESH,
    NN_ALLOC_REUSED,
    NN_ALLOC_BYTES,
    PAR_RUNS,
    PAR_JOBS,
    PAR_WORKER_PANICS,
    SERVE_REQUESTS,
    SERVE_SHED,
    SERVE_DEGRADED,
    SERVE_TIER_REPLAY,
    SERVE_TIER_SAFE,
    SERVE_NONFINITE,
    SERVE_DEADLINE_MISS,
    SERVE_RELOAD_OK,
    SERVE_RELOAD_REJECTED,
    LINT_FILES,
    LINT_CACHE_HITS,
    LINT_CACHE_MISSES,
    NN_KERNEL_DISPATCH_SERIAL,
    NN_KERNEL_DISPATCH_PARALLEL,
    NN_KERNEL_BATCHED_STATES,
    NN_FWD_PREFIX,
    NN_BWD_PREFIX,
    SIM_VEHICLES,
    SIM_SHARD_COUNT,
    FLEET_AVS,
    DECISION_EPSILON,
    DECISION_REPLAY_OCCUPANCY,
    PERCEPTION_EPOCH_LOSS,
    PAR_THREADS,
    PAR_HARDWARE_THREADS,
    PAR_EFFECTIVE_THREADS,
    HEAD_EPISODE_STEPS,
    DECISION_Q_LOSS,
    DECISION_X_LOSS,
    PERCEPTION_BATCH_LOSS,
    SERVE_LATENCY_MS,
    EVENT_EPISODE,
    EVENT_RESUME,
    EVENT_PHASE,
    EVENT_ROBUSTNESS,
    EVENT_PERCEPTION_EPOCH,
    FLIGHT_TERMINAL_FAULT,
    FLIGHT_NONFINITE_RESTORE,
    FLIGHT_CHECKSUM_DIVERGENCE,
    FLIGHT_PANIC,
    FLIGHT_SERVE_SHED,
    FLIGHT_SERVE_DEGRADE,
    FLIGHT_SERVE_ROLLBACK,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn registry_is_duplicate_free() {
        let mut seen = std::collections::BTreeSet::new();
        for &k in ALL {
            assert!(seen.insert(k), "duplicate telemetry key: {k}");
            assert!(!k.is_empty());
            assert!(
                k.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "key {k} violates the naming scheme"
            );
        }
    }
}
