//! The flight recorder: a fixed-capacity ring buffer of recent telemetry
//! events, dumped as JSONL when something goes wrong.
//!
//! Robustness events (PR-2's `Terminal::Fault`, divergence-guard restores,
//! checksum mismatches, panics) end an episode or a run, but by the time a
//! counter says *how often* something fired, the context of *what led up
//! to it* is gone. The flight recorder keeps that context: instrumented
//! sites push fixed-size [`FlightEvent`]s into a preallocated ring
//! ([`flight_record`] — no allocation per event, old events overwritten),
//! and fault sites trigger [`flight_dump`], which writes the surviving
//! window as a JSONL post-mortem with a self-describing header (reason,
//! run context, git revision, overflow accounting).
//!
//! Event names must be constants from [`crate::keys`] — enforced by the
//! `headlint` `recorder-keys` rule — so dumps stay greppable against the
//! same registry the live metrics use.
//!
//! Dumps are capped at [`MAX_DUMPS`] per process: a long fault-injection
//! run can end thousands of episodes with `Terminal::Fault`, and the
//! first few post-mortems carry all the signal. Suppressed dumps are
//! counted and reported by [`flight_status`].

use std::fs::{self, File};
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::events::git_rev;
use crate::json::Json;

/// Hard per-process cap on written dumps (per recorder install).
pub const MAX_DUMPS: u32 = 8;

/// One recorded event. Fixed size: the name is a `&'static str` from the
/// key registry, so pushing an event never allocates.
#[derive(Clone, Copy, Debug)]
pub struct FlightEvent {
    /// Monotonic sequence number (0 for the first event ever recorded).
    pub seq: u64,
    /// Milliseconds since the recorder was installed.
    pub t_ms: f64,
    /// Registered event name (a `telemetry::keys` constant).
    pub name: &'static str,
    /// Event payload (a count, a loss, a staleness — site-defined).
    pub value: f64,
}

/// The ring buffer plus its dump bookkeeping.
pub struct FlightRecorder {
    slots: Vec<FlightEvent>,
    capacity: usize,
    /// Total events ever recorded; `recorded - len` is the overwrite count.
    recorded: u64,
    started: Instant,
    /// Directory dumps are written into (`None` disables dumping).
    dump_dir: Option<PathBuf>,
    /// File-name prefix for dumps (typically the binary name).
    prefix: String,
    /// Context fields echoed into every dump header.
    context: Vec<(String, Json)>,
    dumps_written: u32,
    dumps_suppressed: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding the last `capacity` events (clamped to at
    /// least 1). The ring is preallocated here; recording never allocates.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: Vec::with_capacity(capacity),
            capacity,
            recorded: 0,
            started: Instant::now(),
            dump_dir: None,
            prefix: "flight".to_string(),
            context: Vec::new(),
            dumps_written: 0,
            dumps_suppressed: 0,
        }
    }

    /// Sets where dumps go and how their files are named, and attaches
    /// context fields (bin, seed, threads, fault profile, ...) echoed into
    /// every dump header.
    pub fn configure_dumps(
        &mut self,
        dir: impl Into<PathBuf>,
        prefix: &str,
        context: Vec<(String, Json)>,
    ) {
        self.dump_dir = Some(dir.into());
        self.prefix = prefix.to_string();
        self.context = context;
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to overwriting since install.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.slots.len() as u64
    }

    /// Pushes one event, overwriting the oldest once the ring is full.
    pub fn record(&mut self, name: &'static str, value: f64) {
        let ev = FlightEvent {
            seq: self.recorded,
            t_ms: self.started.elapsed().as_secs_f64() * 1e3,
            name,
            value,
        };
        if self.slots.len() < self.capacity {
            self.slots.push(ev);
        } else {
            // lint:allow(index-panic) capacity ≥ 1 and the modulus is the ring length
            self.slots[(self.recorded % self.capacity as u64) as usize] = ev;
        }
        self.recorded += 1;
    }

    /// The surviving window, oldest event first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        if self.slots.len() < self.capacity {
            return self.slots.clone();
        }
        let split = (self.recorded % self.capacity as u64) as usize;
        let mut out = Vec::with_capacity(self.capacity);
        out.extend_from_slice(&self.slots[split..]);
        out.extend_from_slice(&self.slots[..split]);
        out
    }

    /// Writes the ring as a JSONL post-mortem named
    /// `<prefix>.flight.<index>.<reason-leaf>.jsonl` under the configured
    /// dump directory. The first line is a header object; every later line
    /// is one event, oldest first. Returns the path, or `None` when no
    /// dump directory is configured or the per-process cap is exhausted
    /// (suppressions are counted either way).
    pub fn dump(&mut self, reason: &str) -> Option<PathBuf> {
        let Some(dir) = self.dump_dir.clone() else {
            self.dumps_suppressed += 1;
            return None;
        };
        if self.dumps_written >= MAX_DUMPS {
            self.dumps_suppressed += 1;
            return None;
        }
        // Dump reasons are registered dotted keys ("flight.terminal_fault");
        // only the leaf goes into the file name.
        let leaf = reason.rsplit('.').next().unwrap_or(reason);
        let path = dir.join(format!(
            "{}.flight.{:03}.{leaf}.jsonl",
            self.prefix, self.dumps_written
        ));
        match self.write_dump(&path, reason) {
            Ok(()) => {
                self.dumps_written += 1;
                Some(path)
            }
            Err(_) => {
                // Telemetry must never take the run down.
                self.dumps_suppressed += 1;
                None
            }
        }
    }

    fn write_dump(&self, path: &Path, reason: &str) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut w = BufWriter::new(File::create(path)?);
        let mut header: Vec<(String, Json)> = vec![
            ("kind".to_string(), Json::from("flight_dump")),
            ("reason".to_string(), Json::from(reason)),
            ("capacity".to_string(), Json::from(self.capacity)),
            ("recorded".to_string(), Json::from(self.recorded)),
            ("dropped".to_string(), Json::from(self.dropped())),
            (
                "git_rev".to_string(),
                git_rev().map(Json::from).unwrap_or(Json::Null),
            ),
        ];
        header.extend(self.context.iter().cloned());
        writeln!(w, "{}", Json::Obj(header))?;
        for ev in self.snapshot() {
            let line = Json::obj(vec![
                ("seq", Json::from(ev.seq)),
                ("t_ms", Json::Num(ev.t_ms)),
                ("name", Json::from(ev.name)),
                ("value", Json::Num(ev.value)),
            ]);
            writeln!(w, "{line}")?;
        }
        w.flush()
    }

    /// `(dumps written, dumps suppressed)` so far.
    pub fn dump_counts(&self) -> (u32, u64) {
        (self.dumps_written, self.dumps_suppressed)
    }
}

fn global() -> MutexGuard<'static, Option<FlightRecorder>> {
    static FLIGHT: OnceLock<Mutex<Option<FlightRecorder>>> = OnceLock::new();
    match FLIGHT.get_or_init(|| Mutex::new(None)).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Installs `rec` as the process-wide flight recorder used by
/// [`flight_record`] / [`flight_dump`], returning the previous one.
pub fn flight_install(rec: FlightRecorder) -> Option<FlightRecorder> {
    global().replace(rec)
}

/// Removes and returns the process-wide flight recorder.
pub fn flight_take() -> Option<FlightRecorder> {
    global().take()
}

/// True when a flight recorder is installed.
pub fn flight_installed() -> bool {
    global().is_some()
}

/// Records one event through the process-wide recorder; a no-op when none
/// is installed, so library crates can record unconditionally. The name
/// must be a `telemetry::keys` constant (`recorder-keys` lint rule).
pub fn flight_record(name: &'static str, value: f64) {
    if let Some(rec) = global().as_mut() {
        rec.record(name, value);
    }
}

/// Dumps the process-wide ring with `reason` (a registered
/// `flight.*` key). Returns the written path, if any.
pub fn flight_dump(reason: &str) -> Option<PathBuf> {
    global().as_mut().and_then(|rec| rec.dump(reason))
}

/// `(events held, total recorded, dumps written, dumps suppressed)` of the
/// installed recorder, for end-of-run reports.
pub fn flight_status() -> Option<(usize, u64, u32, u64)> {
    global().as_ref().map(|r| {
        let (written, suppressed) = r.dump_counts();
        (r.len(), r.recorded(), written, suppressed)
    })
}

/// Chains a panic hook that dumps the flight ring (reason
/// `keys::FLIGHT_PANIC`) before the previous hook runs, so a crashed run
/// still leaves its post-mortem window on disk. Install once per process.
pub fn flight_install_panic_hook() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = flight_dump(crate::keys::FLIGHT_PANIC);
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flight_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fills_without_wrapping_below_capacity() {
        let mut rec = FlightRecorder::new(4);
        rec.record("a.one", 1.0);
        rec.record("a.two", 2.0);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.recorded(), 2);
        assert_eq!(rec.dropped(), 0);
        let snap = rec.snapshot();
        assert_eq!(snap[0].name, "a.one");
        assert_eq!(snap[1].name, "a.two");
        assert_eq!(snap[0].seq, 0);
    }

    #[test]
    fn wraparound_overwrites_oldest_and_accounts_drops() {
        let mut rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.record("a.one", i as f64);
        }
        assert_eq!(rec.len(), 4, "ring never exceeds capacity");
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 6);
        let snap = rec.snapshot();
        // Oldest-first window over the last four events (6, 7, 8, 9).
        let values: Vec<f64> = snap.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![6.0, 7.0, 8.0, 9.0]);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert!(snap.windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
    }

    #[test]
    fn wraparound_is_exact_at_capacity_multiples() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..6 {
            rec.record("a.one", i as f64);
        }
        let values: Vec<f64> = rec.snapshot().iter().map(|e| e.value).collect();
        assert_eq!(values, vec![3.0, 4.0, 5.0]);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut rec = FlightRecorder::new(0);
        rec.record("a.one", 1.0);
        rec.record("a.two", 2.0);
        assert_eq!(rec.capacity(), 1);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.snapshot()[0].name, "a.two");
        assert_eq!(rec.dropped(), 1);
    }

    #[test]
    fn dump_writes_header_then_events_oldest_first() {
        let dir = temp_dir("dump");
        let mut rec = FlightRecorder::new(3);
        rec.configure_dumps(
            &dir,
            "probe",
            vec![("bin".to_string(), Json::from("probe"))],
        );
        for i in 0..5 {
            rec.record("a.one", i as f64);
        }
        let path = rec.dump("flight.terminal_fault").expect("dump written");
        assert!(path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("file name")
            .ends_with("terminal_fault.jsonl"));

        let text = fs::read_to_string(&path).expect("read dump");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 3, "header + capacity events");
        let header = Json::parse(lines[0]).expect("header parses");
        assert_eq!(
            header.get("kind").and_then(Json::as_str),
            Some("flight_dump")
        );
        assert_eq!(
            header.get("reason").and_then(Json::as_str),
            Some("flight.terminal_fault")
        );
        assert_eq!(header.get("capacity").and_then(Json::as_f64), Some(3.0));
        assert_eq!(header.get("recorded").and_then(Json::as_f64), Some(5.0));
        assert_eq!(header.get("dropped").and_then(Json::as_f64), Some(2.0));
        assert_eq!(header.get("bin").and_then(Json::as_str), Some("probe"));
        let first = Json::parse(lines[1]).expect("event parses");
        assert_eq!(first.get("value").and_then(Json::as_f64), Some(2.0));
        assert_eq!(first.get("name").and_then(Json::as_str), Some("a.one"));
        let last = Json::parse(lines[3]).expect("event parses");
        assert_eq!(last.get("value").and_then(Json::as_f64), Some(4.0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_cap_suppresses_later_dumps() {
        let dir = temp_dir("cap");
        let mut rec = FlightRecorder::new(2);
        rec.configure_dumps(&dir, "probe", Vec::new());
        rec.record("a.one", 0.0);
        for _ in 0..MAX_DUMPS {
            assert!(rec.dump("flight.panic").is_some());
        }
        assert!(rec.dump("flight.panic").is_none(), "cap reached");
        let (written, suppressed) = rec.dump_counts();
        assert_eq!(written, MAX_DUMPS);
        assert_eq!(suppressed, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_without_directory_is_suppressed() {
        let mut rec = FlightRecorder::new(2);
        rec.record("a.one", 0.0);
        assert!(rec.dump("flight.panic").is_none());
        assert_eq!(rec.dump_counts(), (0, 1));
    }

    #[test]
    fn global_install_record_dump_roundtrip() {
        let _l = crate::test_lock::hold();
        let dir = temp_dir("global");
        let _ = flight_take();
        // No recorder: record and dump are no-ops.
        flight_record("a.one", 1.0);
        assert!(flight_dump("flight.panic").is_none());
        assert!(flight_status().is_none());

        let mut rec = FlightRecorder::new(8);
        rec.configure_dumps(&dir, "t", Vec::new());
        assert!(flight_install(rec).is_none());
        flight_record("a.one", 1.0);
        flight_record("a.two", 2.0);
        assert_eq!(flight_status().map(|s| (s.0, s.1)), Some((2, 2)));
        let path = flight_dump("flight.terminal_fault").expect("dump path");
        assert!(path.exists());
        let rec = flight_take().expect("still installed");
        assert_eq!(rec.dump_counts().0, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
