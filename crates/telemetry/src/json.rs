//! A minimal JSON value with compact serialisation and a strict parser —
//! just enough for the JSONL event sink and for reading runs back, so the
//! telemetry crate stays dependency-free.

use std::fmt;

/// A JSON value. Numbers are `f64`; non-finite values serialise as `null`.
/// Objects preserve insertion order (events stay diff-friendly).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) if !v.is_finite() => write!(f, "null"),
            Json::Num(v) => write!(f, "{v}"),
            Json::Str(s) => escape_into(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape_into(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Combine a UTF-16 surrogate pair when present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err("lone surrogate".into());
                                    }
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or("invalid \\u escape")?);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction from &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        self.pos += 1; // past the 'u'
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_escaped() {
        let v = Json::obj(vec![
            ("name", Json::from("line\none \"quoted\"")),
            ("n", Json::from(42u64)),
            ("pi", Json::from(3.5)),
            ("inf", Json::Num(f64::INFINITY)),
            ("ok", Json::from(true)),
            ("items", Json::from(vec![Json::Null, Json::from(1u64)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"line\none \"quoted\"","n":42,"pi":3.5,"inf":null,"ok":true,"items":[null,1]}"#
        );
    }

    #[test]
    fn parse_roundtrips_display() {
        let v = Json::obj(vec![
            ("a", Json::from(-1.25)),
            ("b", Json::from("tab\there µ")),
            (
                "c",
                Json::Arr(vec![Json::Bool(false), Json::Obj(Vec::new())]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u00b5s\" , null ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Str("µs".into()), Json::Null,])
        );
        // Surrogate pair.
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Json::Str("😀".into()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn getters() {
        let v = Json::obj(vec![("x", Json::from(2.0))]);
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(2.0));
        assert!(v.get("y").is_none());
        assert_eq!(Json::from("s").as_str(), Some("s"));
    }
}
