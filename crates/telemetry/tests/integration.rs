//! End-to-end tests: a JSONL round-trip of an episode record through a
//! real file, and a full spans + metrics + recorder smoke flow.

use std::fs;
use std::path::PathBuf;

use telemetry::Json;

fn temp_path(tag: &str) -> PathBuf {
    let unique = format!(
        "telemetry_it_{tag}_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    );
    std::env::temp_dir().join(unique)
}

/// The shape `head::train` writes per episode, round-tripped through the
/// sink and the parser with exact field recovery.
#[test]
fn episode_record_roundtrips_through_jsonl() {
    let path = temp_path("episode");
    let rec = telemetry::RunRecorder::create(&path).expect("create recorder");
    rec.write_manifest(vec![
        ("seed", Json::from(42u64)),
        ("table", Json::from("table1")),
        (
            "config",
            Json::obj(vec![
                ("episodes", Json::from(1200u64)),
                ("density", Json::from(120.0)),
            ]),
        ),
    ]);
    rec.event(
        "episode",
        vec![
            ("episode", Json::from(17u64)),
            ("steps", Json::from(314u64)),
            ("reward", Json::from(-3.25)),
            ("terminal", Json::from("Collision")),
            ("min_ttc", Json::from(0.85)),
            ("collided", Json::from(true)),
        ],
    );
    drop(rec);

    let text = fs::read_to_string(&path).expect("read back");
    let lines: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).expect("every line is valid JSON"))
        .collect();
    assert_eq!(lines.len(), 2);

    let manifest = &lines[0];
    assert_eq!(
        manifest.get("kind").and_then(Json::as_str),
        Some("manifest")
    );
    assert_eq!(manifest.get("seed").and_then(Json::as_f64), Some(42.0));
    let config = manifest.get("config").expect("config embedded");
    assert_eq!(config.get("episodes").and_then(Json::as_f64), Some(1200.0));
    assert_eq!(config.get("density").and_then(Json::as_f64), Some(120.0));

    let ep = &lines[1];
    assert_eq!(ep.get("kind").and_then(Json::as_str), Some("episode"));
    assert_eq!(ep.get("episode").and_then(Json::as_f64), Some(17.0));
    assert_eq!(ep.get("steps").and_then(Json::as_f64), Some(314.0));
    assert_eq!(ep.get("reward").and_then(Json::as_f64), Some(-3.25));
    assert_eq!(ep.get("terminal").and_then(Json::as_str), Some("Collision"));
    assert_eq!(ep.get("min_ttc").and_then(Json::as_f64), Some(0.85));
    assert_eq!(ep.get("collided"), Some(&Json::Bool(true)));
    assert!(ep.get("t_ms").and_then(Json::as_f64).unwrap_or(-1.0) >= 0.0);

    let _ = fs::remove_file(&path);
}

/// The flow a table binary runs: enable, install a recorder, time nested
/// work, record metrics, then render both reports.
#[test]
fn full_run_smoke() {
    let path = temp_path("smoke");
    let was = telemetry::set_enabled(true);
    telemetry::reset_spans();
    telemetry::reset_metrics();

    let rec = telemetry::RunRecorder::create(&path).expect("create recorder");
    rec.write_manifest(vec![("seed", Json::from(1u64))]);
    telemetry::install_recorder(rec);

    for step in 0..3u64 {
        let _outer = telemetry::span!("sim.step");
        {
            let _inner = telemetry::span!("car_following");
            telemetry::histogram_record("it.accel", 0.5 * step as f64);
        }
        telemetry::counter_add("it.steps", 1);
        telemetry::gauge_set("it.vehicles", 12.0);
    }
    telemetry::emit_event("phase", vec![("name", Json::from("done"))]);

    assert_eq!(telemetry::counter_value("it.steps"), 3);
    assert_eq!(telemetry::gauge_value("it.vehicles"), Some(12.0));
    assert_eq!(telemetry::span_stats("sim.step").count, 3);
    assert_eq!(telemetry::span_stats("car_following").count, 3);
    let hist = telemetry::histogram_snapshot("it.accel").expect("recorded");
    assert_eq!(hist.count, 3);

    let timing = telemetry::timing_report();
    assert!(
        timing.contains("sim.step"),
        "timing tree has the root:\n{timing}"
    );
    assert!(
        timing.contains("  car_following"),
        "nested child is indented:\n{timing}"
    );
    let metrics = telemetry::metrics_report();
    assert!(
        metrics.contains("it.steps"),
        "metrics report has counters:\n{metrics}"
    );

    drop(telemetry::take_recorder());
    telemetry::set_enabled(was);

    let text = fs::read_to_string(&path).expect("read back");
    assert_eq!(text.lines().count(), 2, "manifest + one event:\n{text}");
    for line in text.lines() {
        Json::parse(line).expect("valid JSONL");
    }
    let _ = fs::remove_file(&path);
}
