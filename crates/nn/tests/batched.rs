//! Bit-identity contracts of batch-major execution:
//!
//! * a batch-of-N forward pass carries, row for row, the exact bits of N
//!   batch-1 forward passes — the property that lets the perception heads,
//!   the decision agents and the serve batcher fold per-sample inference
//!   into one wide GEMM without perturbing any answer;
//! * a batched learn step (one wide forward, one backward, one Adam step)
//!   leaves the weights bit-identical to the reference per-sample
//!   accumulation: each sample's loss normalised by the full batch's
//!   element count, gradients accumulated in sample order.
//!
//! Both hold because the GEMM micro-kernel accumulates every output
//! element in a fixed ascending-k order from +0.0 and every graph op
//! treats rows independently — accumulation order is part of the
//! determinism contract (DESIGN.md §5).

use nn::{Adam, Graph, Matrix, Mlp, ParamStore};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn rand_matrix(rng: &mut ChaCha12Rng, rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn build_net(seed: u64) -> (ParamStore, Mlp) {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let mlp = Mlp::new(&mut store, "net", &[6, 16, 16, 4], &mut rng);
    (store, mlp)
}

fn assert_bits_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (x, y) in a.data().iter().zip(b.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} != {y}");
    }
}

/// Extracts row `r` of a node value as an owned 1-row matrix.
fn row_of(m: &Matrix, r: usize) -> Matrix {
    Matrix::from_vec(1, m.cols(), m.row_slice(r).to_vec())
}

#[test]
fn batched_forward_rows_match_per_sample_forwards_bitwise() {
    let (store, mlp) = build_net(7);
    let mut data_rng = ChaCha12Rng::seed_from_u64(8);
    // Odd batch sizes exercise the micro-kernel's row-remainder path;
    // width-16 hidden layers exercise the full 4x8 tile path.
    for batch in [1usize, 2, 3, 5, 8, 13] {
        let x = rand_matrix(&mut data_rng, batch, 6);

        let mut wide = Graph::new();
        let xv = wide.input_copy(&x);
        let y_wide = mlp.forward(&mut wide, &store, xv);
        let y_wide = wide.value(y_wide);

        for b in 0..batch {
            let mut g = Graph::new();
            let xv = g.input(row_of(&x, b));
            let y = mlp.forward(&mut g, &store, xv);
            assert_bits_equal(
                &row_of(y_wide, b),
                g.value(y),
                &format!("batch {batch}, row {b}"),
            );
        }
    }
}

#[test]
fn batched_learn_step_matches_per_sample_accumulation_bitwise() {
    let (mut store_w, mlp_w) = build_net(21);
    let (mut store_s, mlp_s) = build_net(21);
    let mut adam_w = Adam::new(1e-3);
    let mut adam_s = Adam::new(1e-3);
    let mut data_rng = ChaCha12Rng::seed_from_u64(22);
    let mut tape_w = Graph::new();
    let mut tape_s = Graph::new();

    for step in 0..25 {
        let batch = 2 + step % 4;
        let x = rand_matrix(&mut data_rng, batch, 6);
        let t = rand_matrix(&mut data_rng, batch, 4);
        let elems = (batch * 4) as f32;

        // Batched side: one wide forward, one backward, one Adam step.
        tape_w.reset();
        let xv = tape_w.input_copy(&x);
        let tv = tape_w.input_copy(&t);
        let y = mlp_w.forward(&mut tape_w, &store_w, xv);
        let loss = tape_w.mse(y, tv);
        store_w.zero_grad();
        tape_w.backward(loss, &mut store_w);

        // Reference side: per-sample passes, each normalised by the full
        // batch's element count, gradients accumulated in sample order.
        store_s.zero_grad();
        for b in 0..batch {
            tape_s.reset();
            let xv = tape_s.input(row_of(&x, b));
            let tv = tape_s.input(row_of(&t, b));
            let ones = tape_s.input(Matrix::full(1, 4, 1.0));
            let y = mlp_s.forward(&mut tape_s, &store_s, xv);
            let loss = tape_s.masked_sse(y, tv, ones, elems);
            tape_s.backward(loss, &mut store_s);
        }

        for (pw, ps) in store_w.iter().zip(store_s.iter()) {
            assert_bits_equal(
                &pw.grad,
                &ps.grad,
                &format!("grad of {} at step {step}", pw.name),
            );
        }
        adam_w.step(&mut store_w);
        adam_s.step(&mut store_s);
    }

    for (pw, ps) in store_w.iter().zip(store_s.iter()) {
        assert_bits_equal(&pw.value, &ps.value, &format!("final value of {}", pw.name));
    }
}
