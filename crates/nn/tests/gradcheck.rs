//! Property-based gradient checking: every differentiable op and layer is
//! validated against central finite differences on random inputs.

use nn::{Graph, LstmCell, Matrix, ParamStore, Var};
use proptest::prelude::*;
use std::sync::Arc;

/// Analytic-vs-numeric gradient check for a scalar loss built by `build`.
///
/// `build` must construct the full forward graph from the current store
/// values and return the loss node.
// The index loops interleave reads of `analytic` with mutation of `store`,
// which an iterator over `analytic` would forbid.
#[allow(clippy::needless_range_loop)]
fn gradcheck(store: &mut ParamStore, build: &dyn Fn(&mut Graph, &ParamStore) -> Var, tol: f32) {
    // Analytic gradients.
    store.zero_grad();
    let mut g = Graph::new();
    let loss = build(&mut g, store);
    g.backward(loss, store);
    let analytic: Vec<Vec<f32>> = store.iter().map(|p| p.grad.data().to_vec()).collect();

    // Numeric gradients via central differences.
    let eps = 1e-3_f32;
    let n_params = store.len();
    for pi in 0..n_params {
        let n_scalars = store.iter().nth(pi).unwrap().value.len();
        for si in 0..n_scalars {
            let orig = store.iter().nth(pi).unwrap().value.data()[si];

            set_scalar(store, pi, si, orig + eps);
            let plus = eval_loss(store, build);
            set_scalar(store, pi, si, orig - eps);
            let minus = eval_loss(store, build);
            set_scalar(store, pi, si, orig);

            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic[pi][si];
            let denom = 1.0_f32.max(a.abs()).max(numeric.abs());
            assert!(
                (a - numeric).abs() / denom < tol,
                "grad mismatch param {pi} scalar {si}: analytic {a} vs numeric {numeric}"
            );
        }
    }
}

fn set_scalar(store: &mut ParamStore, pi: usize, si: usize, v: f32) {
    store.iter_mut().nth(pi).unwrap().value.data_mut()[si] = v;
}

fn eval_loss(store: &ParamStore, build: &dyn Fn(&mut Graph, &ParamStore) -> Var) -> f32 {
    let mut g = Graph::new();
    let loss = build(&mut g, store);
    g.value(loss).get(0, 0)
}

fn small_values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.5f32..1.5, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_add_chain(w in small_values(6), x in small_values(2)) {
        let mut store = ParamStore::new();
        let wid = store.register("w", Matrix::from_vec(2, 3, w));
        let xm = Matrix::from_vec(1, 2, x);
        gradcheck(&mut store, &move |g, s| {
            let wv = g.param(s, wid);
            let xv = g.input(xm.clone());
            let y = g.matmul(xv, wv);
            let sq = g.mul_elem(y, y);
            g.mean_all(sq)
        }, 1e-2);
    }

    #[test]
    fn activations(x in small_values(4)) {
        let mut store = ParamStore::new();
        let xid = store.register("x", Matrix::from_vec(1, 4, x));
        gradcheck(&mut store, &move |g, s| {
            let xv = g.param(s, xid);
            let a = g.tanh(xv);
            let b = g.sigmoid(a);
            let c = g.leaky_relu(b, 0.2);
            let d = g.relu(c);
            let sq = g.mul_elem(d, d);
            g.sum_all(sq)
        }, 2e-2);
    }

    #[test]
    fn softmax_weighted_sum(x in small_values(6), v in small_values(6)) {
        let mut store = ParamStore::new();
        let xid = store.register("x", Matrix::from_vec(2, 3, x));
        let vm = Matrix::from_vec(2, 3, v);
        gradcheck(&mut store, &move |g, s| {
            let xv = g.param(s, xid);
            let sm = g.softmax_rows(xv);
            let vv = g.input(vm.clone());
            let prod = g.mul_elem(sm, vv);
            g.sum_all(prod)
        }, 2e-2);
    }

    #[test]
    fn gather_and_group_sum(x in small_values(8)) {
        let mut store = ParamStore::new();
        let xid = store.register("x", Matrix::from_vec(4, 2, x));
        gradcheck(&mut store, &move |g, s| {
            let xv = g.param(s, xid);
            let gathered = g.gather_rows(xv, Arc::new(vec![3, 1, 1, 0, 2, 3]));
            let grouped = g.sum_groups(gathered, 3);
            let sq = g.mul_elem(grouped, grouped);
            g.mean_all(sq)
        }, 1e-2);
    }

    #[test]
    fn broadcast_ops(a in small_values(6), b in small_values(3), c in small_values(2)) {
        let mut store = ParamStore::new();
        let aid = store.register("a", Matrix::from_vec(2, 3, a));
        let bid = store.register("b", Matrix::from_vec(1, 3, b));
        let cid = store.register("c", Matrix::from_vec(2, 1, c));
        gradcheck(&mut store, &move |g, s| {
            let av = g.param(s, aid);
            let bv = g.param(s, bid);
            let cv = g.param(s, cid);
            let x = g.add_broadcast_row(av, bv);
            let y = g.mul_broadcast_col(x, cv);
            let sq = g.mul_elem(y, y);
            g.sum_all(sq)
        }, 1e-2);
    }

    #[test]
    fn concat_transpose_reshape(a in small_values(4), b in small_values(4)) {
        let mut store = ParamStore::new();
        let aid = store.register("a", Matrix::from_vec(2, 2, a));
        let bid = store.register("b", Matrix::from_vec(2, 2, b));
        gradcheck(&mut store, &move |g, s| {
            let av = g.param(s, aid);
            let bv = g.param(s, bid);
            let cat = g.concat_cols(av, bv);
            let t = g.transpose(cat);
            let r = g.reshape(t, 2, 4);
            let rows = g.concat_rows(r, r);
            let sq = g.mul_elem(rows, rows);
            g.mean_all(sq)
        }, 1e-2);
    }

    #[test]
    fn lstm_cell_two_steps(seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "l", 2, 3, &mut rng);
        let x1 = Matrix::from_rows(&[&[0.3, -0.7]]);
        let x2 = Matrix::from_rows(&[&[-0.2, 0.9]]);
        gradcheck(&mut store, &move |g, s| {
            let x1v = g.input(x1.clone());
            let x2v = g.input(x2.clone());
            let s0 = cell.zero_state(g, 1);
            let s1 = cell.step(g, s, x1v, s0);
            let s2 = cell.step(g, s, x2v, s1);
            let sq = g.mul_elem(s2.h, s2.h);
            g.sum_all(sq)
        }, 3e-2);
    }

    // NOTE: this check uses tanh between layers rather than `Mlp`'s ReLU —
    // finite differences are invalid at the ReLU kink, which random inits
    // cross often enough to make a ReLU-based check flaky.
    #[test]
    fn two_layer_tanh_masked_loss(seed in 0u64..1000) {
        use nn::Linear;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let l1 = Linear::new(&mut store, "l1", 3, 5, &mut rng);
        let l2 = Linear::new(&mut store, "l2", 5, 2, &mut rng);
        let x = Matrix::from_rows(&[&[0.1, 0.2, -0.4], &[0.8, -0.3, 0.5]]);
        let t = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mask = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        gradcheck(&mut store, &move |g, s| {
            let xv = g.input(x.clone());
            let tv = g.input(t.clone());
            let mv = g.input(mask.clone());
            let h = l1.forward(g, s, xv);
            let h = g.tanh(h);
            let y = l2.forward(g, s, h);
            g.masked_sse(y, tv, mv, 3.0)
        }, 2e-2);
    }
}
