//! Bit-identity contracts of the arena-backed tape:
//!
//! * a `reset()`-reused tape produces the exact losses, gradients and
//!   optimiser trajectories of a fresh `Graph` per step, over 100
//!   randomized training steps;
//! * the fused `linear` op matches the unfused matmul / broadcast-bias /
//!   relu chain bit for bit, forward and backward.

use nn::{Adam, Graph, Matrix, Mlp, ParamStore};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn rand_matrix(rng: &mut ChaCha12Rng, rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn build_net(seed: u64) -> (ParamStore, Mlp) {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let mlp = Mlp::new(&mut store, "net", &[6, 16, 16, 4], &mut rng);
    (store, mlp)
}

fn assert_bits_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (x, y) in a.data().iter().zip(b.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} != {y}");
    }
}

#[test]
fn reused_tape_matches_fresh_graphs_over_100_steps() {
    let (mut store_tape, mlp_tape) = build_net(77);
    let (mut store_fresh, mlp_fresh) = build_net(77);
    let mut adam_tape = Adam::new(1e-3);
    let mut adam_fresh = Adam::new(1e-3);
    let mut data_rng = ChaCha12Rng::seed_from_u64(99);
    let mut tape = Graph::new();

    for step in 0..100 {
        // Vary the batch size so the arena sees more than one size class.
        let batch = 1 + step % 3;
        let x = rand_matrix(&mut data_rng, batch, 6);
        let t = rand_matrix(&mut data_rng, batch, 4);

        tape.reset();
        let xv = tape.input_copy(&x);
        let tv = tape.input_copy(&t);
        let y = mlp_tape.forward(&mut tape, &store_tape, xv);
        let loss = tape.mse(y, tv);
        store_tape.zero_grad();
        let loss_tape = tape.backward(loss, &mut store_tape);

        let mut g = Graph::new();
        let xv = g.input(x);
        let tv = g.input(t);
        let y = mlp_fresh.forward(&mut g, &store_fresh, xv);
        let loss = g.mse(y, tv);
        store_fresh.zero_grad();
        let loss_fresh = g.backward(loss, &mut store_fresh);

        assert_eq!(
            loss_tape.to_bits(),
            loss_fresh.to_bits(),
            "loss diverged at step {step}: {loss_tape} vs {loss_fresh}"
        );
        for (pa, pb) in store_tape.iter().zip(store_fresh.iter()) {
            assert_bits_equal(
                &pa.grad,
                &pb.grad,
                &format!("grad of {} at step {step}", pa.name),
            );
        }
        adam_tape.step(&mut store_tape);
        adam_fresh.step(&mut store_fresh);
    }

    for (pa, pb) in store_tape.iter().zip(store_fresh.iter()) {
        assert_bits_equal(&pa.value, &pb.value, &format!("final value of {}", pa.name));
    }

    // The tentpole's whole point: steady-state steps allocate nothing
    // fresh, so reuses dominate fresh allocations by well over 10x.
    let stats = tape.pool_stats();
    assert!(
        stats.reused > 10 * stats.fresh,
        "expected >10x steady-state buffer reuse, got {stats:?}"
    );
}

#[test]
fn fused_linear_matches_unfused_chain_exactly() {
    for seed in 0..20u64 {
        let relu = seed % 2 == 0;
        // Odd seeds exercise the batch-1 outer-product gradient path.
        let batch = if seed % 4 < 2 { 4 } else { 1 };
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let x = rand_matrix(&mut rng, batch, 5);
        let w = rand_matrix(&mut rng, 5, 3);
        let b = rand_matrix(&mut rng, 1, 3);
        let t = rand_matrix(&mut rng, batch, 3);

        let mut store_u = ParamStore::new();
        let (xu, wu, bu) = (
            store_u.register("x", x.clone()),
            store_u.register("w", w.clone()),
            store_u.register("b", b.clone()),
        );
        let mut gu = Graph::new();
        let (xv, wv, bv) = (
            gu.param(&store_u, xu),
            gu.param(&store_u, wu),
            gu.param(&store_u, bu),
        );
        let mm = gu.matmul(xv, wv);
        let biased = gu.add_broadcast_row(mm, bv);
        let out_u = if relu { gu.relu(biased) } else { biased };
        let tv = gu.input(t.clone());
        let loss_u = gu.mse(out_u, tv);
        let lu = gu.backward(loss_u, &mut store_u);

        let mut store_f = ParamStore::new();
        let (xf, wf, bf) = (
            store_f.register("x", x),
            store_f.register("w", w),
            store_f.register("b", b),
        );
        let mut gf = Graph::new();
        let (xv, wv, bv) = (
            gf.param(&store_f, xf),
            gf.param(&store_f, wf),
            gf.param(&store_f, bf),
        );
        let out_f = gf.linear(xv, wv, bv, relu);
        let tv = gf.input(t);
        let loss_f = gf.mse(out_f, tv);
        let lf = gf.backward(loss_f, &mut store_f);

        assert_bits_equal(
            gu.value(out_u),
            gf.value(out_f),
            &format!("forward, seed {seed}"),
        );
        assert_eq!(lu.to_bits(), lf.to_bits(), "loss bits, seed {seed}");
        for (pu, pf) in store_u.iter().zip(store_f.iter()) {
            assert_bits_equal(
                &pu.grad,
                &pf.grad,
                &format!("grad of {}, seed {seed}", pu.name),
            );
        }
    }
}
