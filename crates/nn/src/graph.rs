//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a tape of operations built for a single forward pass. Each
//! op builder immediately computes the forward value and records how to
//! propagate gradients. [`Graph::backward`] walks the tape in reverse and
//! accumulates parameter gradients into the [`ParamStore`].
//!
//! The op set is exactly what the HEAD networks need: dense algebra,
//! broadcasts, activations, row-softmax, and the gather/segment-sum pair that
//! expresses graph attention over a fixed neighbour structure.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use std::collections::HashMap;
use std::sync::Arc;
use telemetry::{keys, Stopwatch};

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Clone, Debug)]
enum Op {
    Input,
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    AddBroadcastRow(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    MulBroadcastCol(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Tanh(Var),
    Sigmoid(Var),
    SoftmaxRows(Var),
    GatherRows(Var, Arc<Vec<usize>>),
    SumGroups(Var, usize),
    Reshape(Var),
    Transpose(Var),
    ConcatCols(Var, Var),
    ConcatRows(Var, Var),
    SumAll(Var),
    MeanAll(Var),
}

struct Node {
    op: Op,
    value: Matrix,
}

/// The stable label used in telemetry counter names for one op variant.
fn op_kind(op: &Op) -> &'static str {
    match op {
        Op::Input => "input",
        Op::Param(_) => "param",
        Op::MatMul(..) => "matmul",
        Op::Add(..) => "add",
        Op::AddBroadcastRow(..) => "add_broadcast_row",
        Op::Sub(..) => "sub",
        Op::MulElem(..) => "mul_elem",
        Op::MulBroadcastCol(..) => "mul_broadcast_col",
        Op::Scale(..) => "scale",
        Op::AddScalar(_) => "add_scalar",
        Op::Relu(_) => "relu",
        Op::LeakyRelu(..) => "leaky_relu",
        Op::Tanh(_) => "tanh",
        Op::Sigmoid(_) => "sigmoid",
        Op::SoftmaxRows(_) => "softmax_rows",
        Op::GatherRows(..) => "gather_rows",
        Op::SumGroups(..) => "sum_groups",
        Op::Reshape(_) => "reshape",
        Op::Transpose(_) => "transpose",
        Op::ConcatCols(..) => "concat_cols",
        Op::ConcatRows(..) => "concat_rows",
        Op::SumAll(_) => "sum_all",
        Op::MeanAll(_) => "mean_all",
    }
}

/// Per-op-kind `(calls, ns)` aggregates for one tape's lifetime, only
/// allocated when telemetry is enabled at [`Graph::new`] time so the
/// disabled path stays a `None` check per op.
struct OpTimes {
    /// Rolling timestamp: forward time between consecutive `push()` calls
    /// is attributed to the op being pushed (each builder computes its
    /// value immediately before pushing, so the delta is dominated by that
    /// op's own compute).
    mark: Stopwatch,
    fwd: HashMap<&'static str, (u64, u64)>,
    bwd: HashMap<&'static str, (u64, u64)>,
}

/// A single-use computation tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    timing: Option<Box<OpTimes>>,
}

impl Drop for Graph {
    fn drop(&mut self) {
        // Flush per-op aggregates into global telemetry counters. Formatting
        // ~20 names per tape is noise next to the matrix work the tape did.
        let Some(t) = self.timing.take() else { return };
        for (prefix, map) in [(keys::NN_FWD_PREFIX, &t.fwd), (keys::NN_BWD_PREFIX, &t.bwd)] {
            for (kind, &(calls, ns)) in map {
                telemetry::counter_add(&format!("{prefix}.{kind}.calls"), calls);
                telemetry::counter_add(&format!("{prefix}.{kind}.ns"), ns);
            }
        }
    }
}

impl Graph {
    /// Creates an empty graph. Per-op timing is captured for this tape's
    /// whole lifetime iff telemetry is enabled now.
    pub fn new() -> Self {
        let timing = telemetry::enabled().then(|| {
            Box::new(OpTimes {
                mark: Stopwatch::start(),
                fwd: HashMap::new(),
                bwd: HashMap::new(),
            })
        });
        Self {
            nodes: Vec::new(),
            timing,
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        if let Some(t) = &mut self.timing {
            let ns = t.mark.lap_ns();
            let e = t.fwd.entry(op_kind(&op)).or_insert((0, 0));
            e.0 += 1;
            e.1 += ns;
        }
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Forward value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Adds a constant leaf (no gradient flows into it).
    pub fn input(&mut self, m: Matrix) -> Var {
        self.push(Op::Input, m)
    }

    /// Adds a parameter leaf; its gradient is routed to `id` on backward.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(Op::Param(id), store.value(id))
    }

    /// Matrix product. Dispatches to the row-partitioned parallel kernel
    /// when [`par::threads`] and the product size warrant it; either path
    /// is bit-identical (see `Matrix::matmul_auto`).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul_auto(&self.nodes[b.0].value);
        self.push(Op::MatMul(a, b), v)
    }

    /// Element-wise sum of two same-shape nodes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// `(r, c) + (1, c)` broadcast sum — the bias add.
    pub fn add_broadcast_row(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(bm.rows(), 1, "broadcast operand must be a row vector");
        assert_eq!(am.cols(), bm.cols(), "broadcast width mismatch");
        let mut out = am.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let v = out.get(r, c) + bm.get(0, c);
                out.set(r, c, v);
            }
        }
        self.push(Op::AddBroadcastRow(a, b), out)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x * y);
        self.push(Op::MulElem(a, b), v)
    }

    /// `(r, c) * (r, 1)` broadcast product — per-row scaling.
    pub fn mul_broadcast_col(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(bm.cols(), 1, "broadcast operand must be a column vector");
        assert_eq!(am.rows(), bm.rows(), "broadcast height mismatch");
        let mut out = am.clone();
        for r in 0..out.rows() {
            let s = bm.get(r, 0);
            for v in out.row_slice_mut(r) {
                *v *= s;
            }
        }
        self.push(Op::MulBroadcastCol(a, b), out)
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * s);
        self.push(Op::Scale(a, s), v)
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x + s);
        self.push(Op::AddScalar(a), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Leaky ReLU with the given negative-side slope.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let v = self.nodes[a.0]
            .value
            .map(|x| if x > 0.0 { x } else { slope * x });
        self.push(Op::LeakyRelu(a, slope), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Row-wise softmax (numerically stabilised).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let mut out = m.clone();
        for r in 0..out.rows() {
            let row = out.row_slice_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        self.push(Op::SoftmaxRows(a), out)
    }

    /// Builds a new matrix whose row `i` is row `indices[i]` of `a`.
    pub fn gather_rows(&mut self, a: Var, indices: Arc<Vec<usize>>) -> Var {
        let m = &self.nodes[a.0].value;
        let mut out = Matrix::zeros(indices.len(), m.cols());
        for (i, &src) in indices.iter().enumerate() {
            out.row_slice_mut(i).copy_from_slice(m.row_slice(src));
        }
        self.push(Op::GatherRows(a, indices), out)
    }

    /// Sums consecutive row groups of size `group_size`.
    ///
    /// Input `(k * g, c)` becomes output `(k, c)` with row `j` equal to the
    /// sum of input rows `j*g .. (j+1)*g`.
    pub fn sum_groups(&mut self, a: Var, group_size: usize) -> Var {
        let m = &self.nodes[a.0].value;
        assert!(
            group_size > 0 && m.rows() % group_size == 0,
            "rows must divide into groups"
        );
        let groups = m.rows() / group_size;
        let mut out = Matrix::zeros(groups, m.cols());
        for j in 0..groups {
            for i in 0..group_size {
                let src = m.row_slice(j * group_size + i);
                for (o, &s) in out.row_slice_mut(j).iter_mut().zip(src) {
                    *o += s;
                }
            }
        }
        self.push(Op::SumGroups(a, group_size), out)
    }

    /// Reshapes without reordering data.
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let v = self.nodes[a.0].value.reshaped(rows, cols);
        self.push(Op::Reshape(a), v)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.transpose();
        self.push(Op::Transpose(a), v)
    }

    /// Horizontal concatenation `[a || b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(am.rows(), bm.rows(), "concat_cols row mismatch");
        let mut out = Matrix::zeros(am.rows(), am.cols() + bm.cols());
        for r in 0..am.rows() {
            let dst = out.row_slice_mut(r);
            dst[..am.cols()].copy_from_slice(am.row_slice(r));
            dst[am.cols()..].copy_from_slice(bm.row_slice(r));
        }
        self.push(Op::ConcatCols(a, b), out)
    }

    /// Vertical concatenation (stack `b` below `a`).
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(am.cols(), bm.cols(), "concat_rows col mismatch");
        let mut data = Vec::with_capacity((am.rows() + bm.rows()) * am.cols());
        data.extend_from_slice(am.data());
        data.extend_from_slice(bm.data());
        let out = Matrix::from_vec(am.rows() + bm.rows(), am.cols(), data);
        self.push(Op::ConcatRows(a, b), out)
    }

    /// Sum of all elements, as a `1x1` matrix.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.sum()]);
        self.push(Op::SumAll(a), v)
    }

    /// Mean of all elements, as a `1x1` matrix.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let v = Matrix::from_vec(1, 1, vec![m.sum() / m.len() as f32]);
        self.push(Op::MeanAll(a), v)
    }

    /// Convenience: mean-squared-error between `pred` and `target`.
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let sq = self.mul_elem(d, d);
        self.mean_all(sq)
    }

    /// Convenience: element-mask-weighted squared error, normalised by
    /// `normaliser` (used by the LST-GAT loss to mask phantom targets).
    pub fn masked_sse(&mut self, pred: Var, target: Var, mask: Var, normaliser: f32) -> Var {
        let d = self.sub(pred, target);
        let sq = self.mul_elem(d, d);
        let masked = self.mul_elem(sq, mask);
        let s = self.sum_all(masked);
        self.scale(s, 1.0 / normaliser)
    }

    /// Runs the backward pass from `loss` (must be `1x1`) and accumulates
    /// parameter gradients into `store`. Returns the scalar loss value.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) -> f32 {
        let loss_value = {
            let m = &self.nodes[loss.0].value;
            assert_eq!(m.shape(), (1, 1), "backward seed must be a scalar");
            m.get(0, 0)
        };
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            // Re-insert so callers can inspect grads of intermediate nodes if
            // this ever becomes useful; cheap because matrices are small.
            let op = self.nodes[i].op.clone();
            let kind = op_kind(&op);
            let t0 = self.timing.as_ref().map(|_| Stopwatch::start());
            match op {
                Op::Input => {}
                Op::Param(id) => store.accumulate_grad(id, &g),
                Op::MatMul(a, b) => {
                    let bt = self.nodes[b.0].value.transpose();
                    let ga = g.matmul_auto(&bt);
                    let av = &self.nodes[a.0].value;
                    // Batch-1 weight gradient is an outer product aᵀ·g;
                    // the dedicated kernel skips the transpose copy and is
                    // bit-identical to the matmul it replaces.
                    let gb = if av.rows() == 1 && g.rows() == 1 {
                        Matrix::outer_auto(av.data(), g.data())
                    } else {
                        av.transpose().matmul_auto(&g)
                    };
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, a.0, g.clone());
                    accumulate(&mut grads, b.0, g);
                }
                Op::AddBroadcastRow(a, b) => {
                    let mut gb = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            let v = gb.get(0, c) + g.get(r, c);
                            gb.set(0, c, v);
                        }
                    }
                    accumulate(&mut grads, a.0, g);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, a.0, g.clone());
                    accumulate(&mut grads, b.0, g.map(|x| -x));
                }
                Op::MulElem(a, b) => {
                    let ga = g.zip(&self.nodes[b.0].value, |x, y| x * y);
                    let gb = g.zip(&self.nodes[a.0].value, |x, y| x * y);
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::MulBroadcastCol(a, b) => {
                    let am = &self.nodes[a.0].value;
                    let bm = &self.nodes[b.0].value;
                    let mut ga = g.clone();
                    for r in 0..ga.rows() {
                        let s = bm.get(r, 0);
                        for v in ga.row_slice_mut(r) {
                            *v *= s;
                        }
                    }
                    let mut gb = Matrix::zeros(bm.rows(), 1);
                    for r in 0..g.rows() {
                        let dot: f32 = g
                            .row_slice(r)
                            .iter()
                            .zip(am.row_slice(r))
                            .map(|(&x, &y)| x * y)
                            .sum();
                        gb.set(r, 0, dot);
                    }
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::Scale(a, s) => accumulate(&mut grads, a.0, g.map(|x| x * s)),
                Op::AddScalar(a) => accumulate(&mut grads, a.0, g),
                Op::Relu(a) => {
                    let ga = g.zip(
                        &self.nodes[a.0].value,
                        |gv, x| if x > 0.0 { gv } else { 0.0 },
                    );
                    accumulate(&mut grads, a.0, ga);
                }
                Op::LeakyRelu(a, slope) => {
                    let ga = g.zip(&self.nodes[a.0].value, |gv, x| {
                        if x > 0.0 {
                            gv
                        } else {
                            gv * slope
                        }
                    });
                    accumulate(&mut grads, a.0, ga);
                }
                Op::Tanh(a) => {
                    let ga = g.zip(&self.nodes[i].value, |gv, y| gv * (1.0 - y * y));
                    accumulate(&mut grads, a.0, ga);
                }
                Op::Sigmoid(a) => {
                    let ga = g.zip(&self.nodes[i].value, |gv, y| gv * y * (1.0 - y));
                    accumulate(&mut grads, a.0, ga);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[i].value;
                    let mut ga = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 = g
                            .row_slice(r)
                            .iter()
                            .zip(y.row_slice(r))
                            .map(|(&x, &p)| x * p)
                            .sum();
                        for c in 0..y.cols() {
                            ga.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::GatherRows(a, indices) => {
                    let src = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(src.rows(), src.cols());
                    for (r, &idx) in indices.iter().enumerate() {
                        for (o, &gv) in ga.row_slice_mut(idx).iter_mut().zip(g.row_slice(r)) {
                            *o += gv;
                        }
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::SumGroups(a, group_size) => {
                    let src = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(src.rows(), src.cols());
                    for r in 0..src.rows() {
                        ga.row_slice_mut(r)
                            .copy_from_slice(g.row_slice(r / group_size));
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::Reshape(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    accumulate(&mut grads, a.0, g.reshaped(r, c));
                }
                Op::Transpose(a) => accumulate(&mut grads, a.0, g.transpose()),
                Op::ConcatCols(a, b) => {
                    let ac = self.nodes[a.0].value.cols();
                    let mut ga = Matrix::zeros(g.rows(), ac);
                    let mut gb = Matrix::zeros(g.rows(), g.cols() - ac);
                    for r in 0..g.rows() {
                        let src = g.row_slice(r);
                        ga.row_slice_mut(r).copy_from_slice(&src[..ac]);
                        gb.row_slice_mut(r).copy_from_slice(&src[ac..]);
                    }
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::ConcatRows(a, b) => {
                    let ar = self.nodes[a.0].value.rows();
                    let cols = g.cols();
                    let ga = Matrix::from_vec(ar, cols, g.data()[..ar * cols].to_vec());
                    let gb = Matrix::from_vec(g.rows() - ar, cols, g.data()[ar * cols..].to_vec());
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::SumAll(a) => {
                    let s = g.get(0, 0);
                    let (r, c) = self.nodes[a.0].value.shape();
                    accumulate(&mut grads, a.0, Matrix::full(r, c, s));
                }
                Op::MeanAll(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let s = g.get(0, 0) / (r * c) as f32;
                    accumulate(&mut grads, a.0, Matrix::full(r, c, s));
                }
            }
            if let (Some(t0), Some(t)) = (t0, &mut self.timing) {
                let e = t.bwd.entry(kind).or_insert((0, 0));
                e.0 += 1;
                e.1 += t0.elapsed_ns();
            }
        }
        loss_value
    }
}

fn accumulate(grads: &mut [Option<Matrix>], idx: usize, delta: Matrix) {
    match &mut grads[idx] {
        Some(existing) => existing.add_assign(&delta),
        slot @ None => *slot = Some(delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_linear_chain() {
        let mut g = Graph::new();
        let x = g.input(Matrix::row(&[1.0, 2.0]));
        let w = g.input(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let y = g.matmul(x, w);
        assert_eq!(g.value(y), &Matrix::row(&[1.0, 2.0]));
    }

    #[test]
    fn backward_through_matmul_param() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_rows(&[&[2.0], &[3.0]]));
        let mut g = Graph::new();
        let x = g.input(Matrix::row(&[5.0, 7.0]));
        let wv = g.param(&store, w);
        let y = g.matmul(x, wv); // y = 5*2 + 7*3 = 31
        let loss = g.sum_all(y);
        let lv = g.backward(loss, &mut store);
        assert_eq!(lv, 31.0);
        // dloss/dw = x^T
        assert_eq!(store.get(w).grad, Matrix::from_rows(&[&[5.0], &[7.0]]));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_grad_is_zero_for_uniform_seed() {
        let mut store = ParamStore::new();
        let p = store.register("p", Matrix::row(&[1.0, 2.0, 3.0]));
        let mut g = Graph::new();
        let pv = g.param(&store, p);
        let sm = g.softmax_rows(pv);
        let total: f32 = g.value(sm).data().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        // Sum of softmax outputs is constant 1 => gradient of the sum is 0.
        let loss = g.sum_all(sm);
        g.backward(loss, &mut store);
        for &v in store.get(p).grad.data() {
            assert!(v.abs() < 1e-6, "expected zero grad, got {v}");
        }
    }

    #[test]
    fn gather_rows_forward_and_backward() {
        let mut store = ParamStore::new();
        let p = store.register("p", Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]));
        let mut g = Graph::new();
        let pv = g.param(&store, p);
        let gathered = g.gather_rows(pv, Arc::new(vec![2, 0, 2]));
        assert_eq!(
            g.value(gathered),
            &Matrix::from_rows(&[&[100.0], &[1.0], &[100.0]])
        );
        let loss = g.sum_all(gathered);
        g.backward(loss, &mut store);
        // Row 2 gathered twice -> grad 2; row 0 once; row 1 never.
        assert_eq!(
            store.get(p).grad,
            Matrix::from_rows(&[&[1.0], &[0.0], &[2.0]])
        );
    }

    #[test]
    fn sum_groups_forward_and_backward() {
        let mut store = ParamStore::new();
        let p = store.register(
            "p",
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]),
        );
        let mut g = Graph::new();
        let pv = g.param(&store, p);
        let summed = g.sum_groups(pv, 2);
        assert_eq!(
            g.value(summed),
            &Matrix::from_rows(&[&[4.0, 6.0], &[12.0, 14.0]])
        );
        let loss = g.sum_all(summed);
        g.backward(loss, &mut store);
        assert_eq!(store.get(p).grad, Matrix::full(4, 2, 1.0));
    }

    #[test]
    fn mse_loss_value_and_grad() {
        let mut store = ParamStore::new();
        let p = store.register("p", Matrix::row(&[1.0, 3.0]));
        let mut g = Graph::new();
        let pred = g.param(&store, p);
        let target = g.input(Matrix::row(&[0.0, 0.0]));
        let loss = g.mse(pred, target);
        let lv = g.backward(loss, &mut store);
        assert!((lv - 5.0).abs() < 1e-6); // (1 + 9) / 2
                                          // d/dp mean((p - 0)^2) = 2p / n = p
        assert_eq!(store.get(p).grad, Matrix::row(&[1.0, 3.0]));
    }

    #[test]
    fn masked_sse_ignores_masked_entries() {
        let mut store = ParamStore::new();
        let p = store.register("p", Matrix::row(&[2.0, 100.0]));
        let mut g = Graph::new();
        let pred = g.param(&store, p);
        let target = g.input(Matrix::row(&[0.0, 0.0]));
        let mask = g.input(Matrix::row(&[1.0, 0.0]));
        let loss = g.masked_sse(pred, target, mask, 1.0);
        let lv = g.backward(loss, &mut store);
        assert!((lv - 4.0).abs() < 1e-6);
        assert_eq!(store.get(p).grad.get(0, 1), 0.0);
    }

    #[test]
    fn concat_splits_gradient() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::row(&[1.0]));
        let b = store.register("b", Matrix::row(&[2.0, 3.0]));
        let mut g = Graph::new();
        let av = g.param(&store, a);
        let bv = g.param(&store, b);
        let cat = g.concat_cols(av, bv);
        assert_eq!(g.value(cat), &Matrix::row(&[1.0, 2.0, 3.0]));
        let w = g.input(Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]));
        let y = g.matmul(cat, w);
        let loss = g.sum_all(y);
        g.backward(loss, &mut store);
        assert_eq!(store.get(a).grad, Matrix::row(&[1.0]));
        assert_eq!(store.get(b).grad, Matrix::row(&[10.0, 100.0]));
    }

    #[test]
    fn grad_accumulates_over_fanout() {
        // y = p + p => dy/dp = 2
        let mut store = ParamStore::new();
        let p = store.register("p", Matrix::row(&[4.0]));
        let mut g = Graph::new();
        let pv = g.param(&store, p);
        let y = g.add(pv, pv);
        let loss = g.sum_all(y);
        g.backward(loss, &mut store);
        assert_eq!(store.get(p).grad, Matrix::row(&[2.0]));
    }

    #[test]
    fn op_timing_flows_into_telemetry_counters() {
        let was = telemetry::set_enabled(true);
        {
            let mut store = ParamStore::new();
            let mut g = Graph::new();
            let x = g.input(Matrix::row(&[1.0, 2.0]));
            let w = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
            let y = g.matmul(x, w);
            let loss = g.sum_all(y);
            g.backward(loss, &mut store);
        } // dropping the tape flushes its per-op aggregates
        telemetry::set_enabled(was);
        assert!(telemetry::counter_value("nn.fwd.matmul.calls") >= 1);
        assert!(telemetry::counter_value("nn.bwd.matmul.calls") >= 1);
        assert!(telemetry::counter_value("nn.bwd.sum_all.calls") >= 1);
    }

    #[test]
    fn transpose_backward() {
        let mut store = ParamStore::new();
        let p = store.register("p", Matrix::from_rows(&[&[1.0, 2.0]]));
        let mut g = Graph::new();
        let pv = g.param(&store, p);
        let t = g.transpose(pv);
        let w = g.input(Matrix::from_rows(&[&[3.0, 5.0]]));
        let y = g.matmul(w, t); // 1x1 = 3*1 + 5*2 = 13
        let loss = g.sum_all(y);
        let lv = g.backward(loss, &mut store);
        assert_eq!(lv, 13.0);
        assert_eq!(store.get(p).grad, Matrix::from_rows(&[&[3.0, 5.0]]));
    }
}
