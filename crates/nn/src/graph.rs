//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a tape of operations built for one forward pass. Each op
//! builder immediately computes the forward value and records how to
//! propagate gradients. [`Graph::backward`] walks the tape in reverse and
//! accumulates parameter gradients into the [`ParamStore`].
//!
//! The tape is **reusable**: every tape-local matrix (node values, the
//! gradient scratch, backward temporaries) is checked out of a per-graph
//! [`BufferPool`] arena, and [`Graph::reset`] returns them all to the
//! arena while keeping node and scratch capacity. A long-lived tape that
//! is reset between training steps therefore reaches a steady state where
//! a full forward/backward pass performs (almost) no heap allocation —
//! see the pool-level invariants in [`crate::pool`].
//!
//! The op set is exactly what the HEAD networks need: dense algebra,
//! broadcasts, activations, row-softmax, the gather/segment-sum pair that
//! expresses graph attention over a fixed neighbour structure, and a fused
//! [`Graph::linear`] (matmul + broadcast bias + optional ReLU) collapsing
//! the three-node chain that dominates every dense forward.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::pool::{BufferPool, PoolStats};
use std::collections::BTreeMap;
use std::sync::Arc;
use telemetry::{keys, Stopwatch};

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Clone, Debug)]
enum Op {
    Input,
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    AddBroadcastRow(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    MulBroadcastCol(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Tanh(Var),
    Sigmoid(Var),
    SoftmaxRows(Var),
    GatherRows(Var, Arc<Vec<usize>>),
    SumGroups(Var, usize),
    Reshape(Var),
    Transpose(Var),
    ConcatCols(Var, Var),
    ConcatRows(Var, Var),
    SumAll(Var),
    MeanAll(Var),
    /// Fused `x·w + b` (+ optional ReLU) — see [`Graph::linear`].
    Linear(Var, Var, Var, bool),
}

struct Node {
    op: Op,
    value: Matrix,
}

/// The stable label used in telemetry counter names for one op variant.
fn op_kind(op: &Op) -> &'static str {
    match op {
        Op::Input => "input",
        Op::Param(_) => "param",
        Op::MatMul(..) => "matmul",
        Op::Add(..) => "add",
        Op::AddBroadcastRow(..) => "add_broadcast_row",
        Op::Sub(..) => "sub",
        Op::MulElem(..) => "mul_elem",
        Op::MulBroadcastCol(..) => "mul_broadcast_col",
        Op::Scale(..) => "scale",
        Op::AddScalar(_) => "add_scalar",
        Op::Relu(_) => "relu",
        Op::LeakyRelu(..) => "leaky_relu",
        Op::Tanh(_) => "tanh",
        Op::Sigmoid(_) => "sigmoid",
        Op::SoftmaxRows(_) => "softmax_rows",
        Op::GatherRows(..) => "gather_rows",
        Op::SumGroups(..) => "sum_groups",
        Op::Reshape(_) => "reshape",
        Op::Transpose(_) => "transpose",
        Op::ConcatCols(..) => "concat_cols",
        Op::ConcatRows(..) => "concat_rows",
        Op::SumAll(_) => "sum_all",
        Op::MeanAll(_) => "mean_all",
        Op::Linear(..) => "linear",
    }
}

/// Per-op-kind `(calls, ns)` aggregates for one tape's lifetime, only
/// allocated when telemetry is enabled at [`Graph::new`] (or
/// [`Graph::reset`]) time so the disabled path stays a `None` check per op.
struct OpTimes {
    /// Rolling timestamp: forward time between consecutive `push()` calls
    /// is attributed to the op being pushed (each builder computes its
    /// value immediately before pushing, so the delta is dominated by that
    /// op's own compute).
    mark: Stopwatch,
    // Ordered so the counter flush (and hence telemetry snapshots) is
    // independent of hasher state; ~20 keys, so the tree walk is noise.
    fwd: BTreeMap<&'static str, (u64, u64)>,
    bwd: BTreeMap<&'static str, (u64, u64)>,
}

fn new_op_times() -> Box<OpTimes> {
    Box::new(OpTimes {
        mark: Stopwatch::start(),
        fwd: BTreeMap::new(),
        bwd: BTreeMap::new(),
    })
}

/// A reusable computation tape backed by a [`BufferPool`] arena.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Persistent backward scratch, indexed like `nodes`. Every entry is
    /// `None` between passes; `backward` seeds and drains it in place.
    grads: Vec<Option<Matrix>>,
    pool: BufferPool,
    timing: Option<Box<OpTimes>>,
}

impl Drop for Graph {
    fn drop(&mut self) {
        self.flush_timing();
        self.pool.flush_telemetry();
    }
}

impl Graph {
    /// Creates an empty graph. Per-op timing is captured for this tape's
    /// whole lifetime iff telemetry is enabled now.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            grads: Vec::new(),
            pool: BufferPool::new(),
            timing: telemetry::enabled().then(new_op_times),
        }
    }

    /// Clears the tape for reuse: every node value and any leftover
    /// gradient buffer goes back to the arena, while node capacity,
    /// gradient-scratch capacity and the pooled backing stores survive.
    /// At steady state the next pass re-serves every buffer it needs from
    /// the free lists instead of the heap.
    ///
    /// Telemetry bookkeeping matches a drop-and-recreate cycle: per-op
    /// timing aggregates are flushed to the global counters, pool counter
    /// deltas are flushed, and timing is re-armed iff telemetry is
    /// enabled now (the [`Graph::new`] rule).
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            self.pool.give(node.value);
        }
        for slot in &mut self.grads {
            if let Some(stale) = slot.take() {
                self.pool.give(stale);
            }
        }
        self.flush_timing();
        self.pool.flush_telemetry();
        self.timing = telemetry::enabled().then(new_op_times);
    }

    /// Flush per-op aggregates into global telemetry counters. Formatting
    /// ~20 names per tape is noise next to the matrix work the tape did.
    fn flush_timing(&mut self) {
        let Some(t) = self.timing.take() else { return };
        for (prefix, map) in [(keys::NN_FWD_PREFIX, &t.fwd), (keys::NN_BWD_PREFIX, &t.bwd)] {
            for (kind, &(calls, ns)) in map {
                telemetry::counter_add(&format!("{prefix}.{kind}.calls"), calls);
                telemetry::counter_add(&format!("{prefix}.{kind}.ns"), ns);
            }
        }
    }

    /// Allocation counters of this tape's arena (cumulative over the
    /// tape's lifetime, across resets).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        if let Some(t) = &mut self.timing {
            let ns = t.mark.lap_ns();
            let e = t.fwd.entry(op_kind(&op)).or_insert((0, 0));
            e.0 += 1;
            e.1 += ns;
        }
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Forward value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Adds a constant leaf (no gradient flows into it).
    pub fn input(&mut self, m: Matrix) -> Var {
        self.push(Op::Input, m)
    }

    /// Adds a constant leaf copied from `m` into a pooled buffer — the
    /// hot-path form of `input(m.clone())`.
    pub fn input_copy(&mut self, m: &Matrix) -> Var {
        let v = self.pool.copy_of(m);
        self.push(Op::Input, v)
    }

    /// Adds an all-zero constant leaf served from the arena.
    pub fn input_zeros(&mut self, rows: usize, cols: usize) -> Var {
        let v = self.pool.take_zeroed(rows, cols);
        self.push(Op::Input, v)
    }

    /// Adds a parameter leaf; its gradient is routed to `id` on backward.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.pool.copy_of(&store.get(id).value);
        self.push(Op::Param(id), v)
    }

    /// Matrix product. Dispatches to the row-partitioned parallel kernel
    /// when [`par::threads`] and the product size warrant it; either path
    /// is bit-identical (see `Matrix::matmul_auto`).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let out = {
            let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            let mut out = self.pool.take(am.rows(), bm.cols());
            am.matmul_auto_into(bm, &mut out);
            out
        };
        self.push(Op::MatMul(a, b), out)
    }

    /// Element-wise sum of two same-shape nodes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .pool
            .zip_from(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// `(r, c) + (1, c)` broadcast sum — the bias add.
    pub fn add_broadcast_row(&mut self, a: Var, b: Var) -> Var {
        let out = {
            let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            assert_eq!(bm.rows(), 1, "broadcast operand must be a row vector");
            assert_eq!(am.cols(), bm.cols(), "broadcast width mismatch");
            let mut out = self.pool.take(am.rows(), am.cols());
            for r in 0..am.rows() {
                let dst = out.row_slice_mut(r);
                dst.copy_from_slice(am.row_slice(r));
                for (o, &bv) in dst.iter_mut().zip(bm.row_slice(0)) {
                    *o += bv;
                }
            }
            out
        };
        self.push(Op::AddBroadcastRow(a, b), out)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .pool
            .zip_from(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .pool
            .zip_from(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x * y);
        self.push(Op::MulElem(a, b), v)
    }

    /// `(r, c) * (r, 1)` broadcast product — per-row scaling.
    pub fn mul_broadcast_col(&mut self, a: Var, b: Var) -> Var {
        let out = {
            let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            assert_eq!(bm.cols(), 1, "broadcast operand must be a column vector");
            assert_eq!(am.rows(), bm.rows(), "broadcast height mismatch");
            let mut out = self.pool.copy_of(am);
            for r in 0..out.rows() {
                let s = bm.get(r, 0);
                for v in out.row_slice_mut(r) {
                    *v *= s;
                }
            }
            out
        };
        self.push(Op::MulBroadcastCol(a, b), out)
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.pool.map_from(&self.nodes[a.0].value, |x| x * s);
        self.push(Op::Scale(a, s), v)
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.pool.map_from(&self.nodes[a.0].value, |x| x + s);
        self.push(Op::AddScalar(a), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.pool.map_from(&self.nodes[a.0].value, |x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Leaky ReLU with the given negative-side slope.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let v = self.pool.map_from(
            &self.nodes[a.0].value,
            |x| if x > 0.0 { x } else { slope * x },
        );
        self.push(Op::LeakyRelu(a, slope), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.pool.map_from(&self.nodes[a.0].value, f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self
            .pool
            .map_from(&self.nodes[a.0].value, |x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Fused dense layer: `x·w` plus a row-broadcast bias, with an
    /// optional ReLU — one tape node where the unfused spelling records
    /// three (`matmul` / `add_broadcast_row` / `relu`).
    ///
    /// Bit-identical to the unfused chain: the same matmul kernel runs on
    /// the same operands, the bias add and ReLU apply element-wise in the
    /// same order, and the backward pass reuses the exact kernels of the
    /// three unfused branches (see `Op::Linear` in `backward`).
    pub fn linear(&mut self, x: Var, w: Var, b: Var, relu: bool) -> Var {
        let out = {
            let xm = &self.nodes[x.0].value;
            let wm = &self.nodes[w.0].value;
            let bm = &self.nodes[b.0].value;
            assert_eq!(bm.rows(), 1, "bias must be a row vector");
            assert_eq!(wm.cols(), bm.cols(), "bias width mismatch");
            let mut out = self.pool.take(xm.rows(), wm.cols());
            xm.matmul_auto_into(wm, &mut out);
            for r in 0..xm.rows() {
                for (o, &bv) in out.row_slice_mut(r).iter_mut().zip(bm.row_slice(0)) {
                    *o += bv;
                }
            }
            if relu {
                for o in out.data_mut() {
                    *o = o.max(0.0);
                }
            }
            out
        };
        self.push(Op::Linear(x, w, b, relu), out)
    }

    /// Row-wise softmax (numerically stabilised).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let mut out = self.pool.copy_of(&self.nodes[a.0].value);
        for r in 0..out.rows() {
            let row = out.row_slice_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        self.push(Op::SoftmaxRows(a), out)
    }

    /// Builds a new matrix whose row `i` is row `indices[i]` of `a`.
    pub fn gather_rows(&mut self, a: Var, indices: Arc<Vec<usize>>) -> Var {
        let out = {
            let m = &self.nodes[a.0].value;
            // Every row is fully overwritten below, so a raw (unzeroed)
            // pooled buffer is safe.
            let mut out = self.pool.take(indices.len(), m.cols());
            for (i, &src) in indices.iter().enumerate() {
                out.row_slice_mut(i).copy_from_slice(m.row_slice(src));
            }
            out
        };
        self.push(Op::GatherRows(a, indices), out)
    }

    /// Sums consecutive row groups of size `group_size`.
    ///
    /// Input `(k * g, c)` becomes output `(k, c)` with row `j` equal to the
    /// sum of input rows `j*g .. (j+1)*g`.
    pub fn sum_groups(&mut self, a: Var, group_size: usize) -> Var {
        let out = {
            let m = &self.nodes[a.0].value;
            assert!(
                group_size > 0 && m.rows() % group_size == 0,
                "rows must divide into groups"
            );
            let groups = m.rows() / group_size;
            let mut out = self.pool.take_zeroed(groups, m.cols());
            for j in 0..groups {
                for i in 0..group_size {
                    let src = m.row_slice(j * group_size + i);
                    for (o, &s) in out.row_slice_mut(j).iter_mut().zip(src) {
                        *o += s;
                    }
                }
            }
            out
        };
        self.push(Op::SumGroups(a, group_size), out)
    }

    /// Reshapes without reordering data.
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let out = {
            let m = &self.nodes[a.0].value;
            assert_eq!(m.len(), rows * cols, "reshape must preserve length");
            let mut out = self.pool.take(rows, cols);
            out.data_mut().copy_from_slice(m.data());
            out
        };
        self.push(Op::Reshape(a), out)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.pool.transpose_of(&self.nodes[a.0].value);
        self.push(Op::Transpose(a), v)
    }

    /// Horizontal concatenation `[a || b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let out = {
            let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            assert_eq!(am.rows(), bm.rows(), "concat_cols row mismatch");
            let mut out = self.pool.take(am.rows(), am.cols() + bm.cols());
            for r in 0..am.rows() {
                let dst = out.row_slice_mut(r);
                dst[..am.cols()].copy_from_slice(am.row_slice(r));
                dst[am.cols()..].copy_from_slice(bm.row_slice(r));
            }
            out
        };
        self.push(Op::ConcatCols(a, b), out)
    }

    /// Vertical concatenation (stack `b` below `a`).
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let out = {
            let (am, bm) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            assert_eq!(am.cols(), bm.cols(), "concat_rows col mismatch");
            let mut out = self.pool.take(am.rows() + bm.rows(), am.cols());
            out.data_mut()[..am.len()].copy_from_slice(am.data());
            out.data_mut()[am.len()..].copy_from_slice(bm.data());
            out
        };
        self.push(Op::ConcatRows(a, b), out)
    }

    /// Sum of all elements, as a `1x1` matrix.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.sum();
        let mut out = self.pool.take(1, 1);
        out.set(0, 0, s);
        self.push(Op::SumAll(a), out)
    }

    /// Mean of all elements, as a `1x1` matrix.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let (s, n) = {
            let m = &self.nodes[a.0].value;
            (m.sum(), m.len())
        };
        let mut out = self.pool.take(1, 1);
        out.set(0, 0, s / n as f32);
        self.push(Op::MeanAll(a), out)
    }

    /// Convenience: mean-squared-error between `pred` and `target`.
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let sq = self.mul_elem(d, d);
        self.mean_all(sq)
    }

    /// Convenience: element-mask-weighted squared error, normalised by
    /// `normaliser` (used by the LST-GAT loss to mask phantom targets).
    pub fn masked_sse(&mut self, pred: Var, target: Var, mask: Var, normaliser: f32) -> Var {
        let d = self.sub(pred, target);
        let sq = self.mul_elem(d, d);
        let masked = self.mul_elem(sq, mask);
        let s = self.sum_all(masked);
        self.scale(s, 1.0 / normaliser)
    }

    /// Runs the backward pass from `loss` (must be `1x1`) and accumulates
    /// parameter gradients into `store`. Returns the scalar loss value.
    ///
    /// Gradients flow through a persistent per-tape scratch (`self.grads`)
    /// and pooled temporaries; each visited gradient buffer returns to the
    /// arena as soon as its contributions are propagated, so the pass
    /// allocates nothing at steady state.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) -> f32 {
        let loss_value = {
            let m = &self.nodes[loss.0].value;
            assert_eq!(m.shape(), (1, 1), "backward seed must be a scalar");
            m.get(0, 0)
        };
        if self.grads.len() < self.nodes.len() {
            self.grads.resize_with(self.nodes.len(), || None);
        }
        // Normally a no-op: the reverse walk below drains every slot it
        // seeds. Clearing defensively keeps a panicked pass from leaking
        // stale gradients into the next one.
        for slot in &mut self.grads {
            if let Some(stale) = slot.take() {
                self.pool.give(stale);
            }
        }
        let seed = {
            let mut m = self.pool.take(1, 1);
            m.set(0, 0, 1.0);
            m
        };
        self.grads[loss.0] = Some(seed);

        for i in (0..=loss.0).rev() {
            let Some(g) = self.grads[i].take() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            let kind = op_kind(&op);
            let t0 = self.timing.as_ref().map(|_| Stopwatch::start());
            match op {
                Op::Input => {}
                Op::Param(id) => store.accumulate_grad(id, &g),
                Op::MatMul(a, b) => {
                    let bt = self.pool.transpose_of(&self.nodes[b.0].value);
                    let mut ga = self.pool.take(g.rows(), bt.cols());
                    g.matmul_auto_into(&bt, &mut ga);
                    self.pool.give(bt);
                    let gb = {
                        let av = &self.nodes[a.0].value;
                        // Batch-1 weight gradient is an outer product aᵀ·g;
                        // the dedicated kernel skips the transpose copy and
                        // is bit-identical to the matmul it replaces.
                        if av.rows() == 1 && g.rows() == 1 {
                            let mut gb = self.pool.take(av.cols(), g.cols());
                            Matrix::outer_auto_into(av.data(), g.data(), &mut gb);
                            gb
                        } else {
                            let at = self.pool.transpose_of(av);
                            let mut gb = self.pool.take(at.rows(), g.cols());
                            at.matmul_auto_into(&g, &mut gb);
                            self.pool.give(at);
                            gb
                        }
                    };
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                    accumulate_owned(&mut self.grads, &mut self.pool, b.0, gb);
                }
                Op::Add(a, b) => {
                    accumulate_ref(&mut self.grads, &mut self.pool, a.0, &g);
                    accumulate_ref(&mut self.grads, &mut self.pool, b.0, &g);
                }
                Op::AddBroadcastRow(a, b) => {
                    let mut gb = self.pool.take_zeroed(1, g.cols());
                    {
                        let dst = gb.data_mut();
                        for r in 0..g.rows() {
                            for (o, &gv) in dst.iter_mut().zip(g.row_slice(r)) {
                                *o += gv;
                            }
                        }
                    }
                    accumulate_ref(&mut self.grads, &mut self.pool, a.0, &g);
                    accumulate_owned(&mut self.grads, &mut self.pool, b.0, gb);
                }
                Op::Sub(a, b) => {
                    accumulate_ref(&mut self.grads, &mut self.pool, a.0, &g);
                    let gneg = self.pool.map_from(&g, |x| -x);
                    accumulate_owned(&mut self.grads, &mut self.pool, b.0, gneg);
                }
                Op::MulElem(a, b) => {
                    let ga = self.pool.zip_from(&g, &self.nodes[b.0].value, |x, y| x * y);
                    let gb = self.pool.zip_from(&g, &self.nodes[a.0].value, |x, y| x * y);
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                    accumulate_owned(&mut self.grads, &mut self.pool, b.0, gb);
                }
                Op::MulBroadcastCol(a, b) => {
                    let mut ga = self.pool.copy_of(&g);
                    {
                        let bm = &self.nodes[b.0].value;
                        for r in 0..ga.rows() {
                            let s = bm.get(r, 0);
                            for v in ga.row_slice_mut(r) {
                                *v *= s;
                            }
                        }
                    }
                    let gb = {
                        let am = &self.nodes[a.0].value;
                        let rows = self.nodes[b.0].value.rows();
                        // Full overwrite: one `set` per row of the (rows, 1)
                        // buffer, so a raw pooled take is safe.
                        let mut gb = self.pool.take(rows, 1);
                        for r in 0..g.rows() {
                            let dot: f32 = g
                                .row_slice(r)
                                .iter()
                                .zip(am.row_slice(r))
                                .map(|(&x, &y)| x * y)
                                .sum();
                            gb.set(r, 0, dot);
                        }
                        gb
                    };
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                    accumulate_owned(&mut self.grads, &mut self.pool, b.0, gb);
                }
                Op::Scale(a, s) => {
                    let ga = self.pool.map_from(&g, |x| x * s);
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                }
                Op::AddScalar(a) => accumulate_ref(&mut self.grads, &mut self.pool, a.0, &g),
                Op::Relu(a) => {
                    let ga = self.pool.zip_from(&g, &self.nodes[a.0].value, |gv, x| {
                        if x > 0.0 {
                            gv
                        } else {
                            0.0
                        }
                    });
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                }
                Op::LeakyRelu(a, slope) => {
                    let ga = self.pool.zip_from(&g, &self.nodes[a.0].value, |gv, x| {
                        if x > 0.0 {
                            gv
                        } else {
                            gv * slope
                        }
                    });
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                }
                Op::Tanh(a) => {
                    let ga = self
                        .pool
                        .zip_from(&g, &self.nodes[i].value, |gv, y| gv * (1.0 - y * y));
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                }
                Op::Sigmoid(a) => {
                    let ga = self
                        .pool
                        .zip_from(&g, &self.nodes[i].value, |gv, y| gv * y * (1.0 - y));
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                }
                Op::SoftmaxRows(a) => {
                    let ga = {
                        let y = &self.nodes[i].value;
                        // Full overwrite: every (r, c) is set below.
                        let mut ga = self.pool.take(y.rows(), y.cols());
                        for r in 0..y.rows() {
                            let dot: f32 = g
                                .row_slice(r)
                                .iter()
                                .zip(y.row_slice(r))
                                .map(|(&x, &p)| x * p)
                                .sum();
                            for c in 0..y.cols() {
                                ga.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                            }
                        }
                        ga
                    };
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                }
                Op::GatherRows(a, indices) => {
                    let ga = {
                        let src = &self.nodes[a.0].value;
                        let mut ga = self.pool.take_zeroed(src.rows(), src.cols());
                        for (r, &idx) in indices.iter().enumerate() {
                            for (o, &gv) in ga.row_slice_mut(idx).iter_mut().zip(g.row_slice(r)) {
                                *o += gv;
                            }
                        }
                        ga
                    };
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                }
                Op::SumGroups(a, group_size) => {
                    let ga = {
                        let src = &self.nodes[a.0].value;
                        // Full overwrite: every row is copied from g.
                        let mut ga = self.pool.take(src.rows(), src.cols());
                        for r in 0..src.rows() {
                            ga.row_slice_mut(r)
                                .copy_from_slice(g.row_slice(r / group_size));
                        }
                        ga
                    };
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                }
                Op::Reshape(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut ga = self.pool.take(r, c);
                    ga.data_mut().copy_from_slice(g.data());
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                }
                Op::Transpose(a) => {
                    let ga = self.pool.transpose_of(&g);
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                }
                Op::ConcatCols(a, b) => {
                    let ac = self.nodes[a.0].value.cols();
                    let mut ga = self.pool.take(g.rows(), ac);
                    let mut gb = self.pool.take(g.rows(), g.cols() - ac);
                    for r in 0..g.rows() {
                        let src = g.row_slice(r);
                        ga.row_slice_mut(r).copy_from_slice(&src[..ac]);
                        gb.row_slice_mut(r).copy_from_slice(&src[ac..]);
                    }
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                    accumulate_owned(&mut self.grads, &mut self.pool, b.0, gb);
                }
                Op::ConcatRows(a, b) => {
                    let ar = self.nodes[a.0].value.rows();
                    let cols = g.cols();
                    let mut ga = self.pool.take(ar, cols);
                    ga.data_mut().copy_from_slice(&g.data()[..ar * cols]);
                    let mut gb = self.pool.take(g.rows() - ar, cols);
                    gb.data_mut().copy_from_slice(&g.data()[ar * cols..]);
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                    accumulate_owned(&mut self.grads, &mut self.pool, b.0, gb);
                }
                Op::SumAll(a) => {
                    let s = g.get(0, 0);
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut ga = self.pool.take(r, c);
                    ga.data_mut().fill(s);
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                }
                Op::MeanAll(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let s = g.get(0, 0) / (r * c) as f32;
                    let mut ga = self.pool.take(r, c);
                    ga.data_mut().fill(s);
                    accumulate_owned(&mut self.grads, &mut self.pool, a.0, ga);
                }
                Op::Linear(x, w, b, relu) => {
                    // With the fused ReLU, masking by the node's own output
                    // is bit-identical to the unfused relu backward's mask
                    // by pre-activation: for ReLU, out > 0 exactly when the
                    // pre-activation is > 0, and the passed-through
                    // gradient value is unchanged either way.
                    let gm = if relu {
                        self.pool.zip_from(
                            &g,
                            &self.nodes[i].value,
                            |gv, y| if y > 0.0 { gv } else { 0.0 },
                        )
                    } else {
                        self.pool.copy_of(&g)
                    };
                    // Bias gradient: column sums of gm, exactly the
                    // AddBroadcastRow backward.
                    let mut gb = self.pool.take_zeroed(1, gm.cols());
                    {
                        let dst = gb.data_mut();
                        for r in 0..gm.rows() {
                            for (o, &gv) in dst.iter_mut().zip(gm.row_slice(r)) {
                                *o += gv;
                            }
                        }
                    }
                    // Input and weight gradients: exactly the MatMul
                    // backward, with gm in place of g.
                    let wt = self.pool.transpose_of(&self.nodes[w.0].value);
                    let mut gx = self.pool.take(gm.rows(), wt.cols());
                    gm.matmul_auto_into(&wt, &mut gx);
                    self.pool.give(wt);
                    let gw = {
                        let xm = &self.nodes[x.0].value;
                        if xm.rows() == 1 && gm.rows() == 1 {
                            let mut gw = self.pool.take(xm.cols(), gm.cols());
                            Matrix::outer_auto_into(xm.data(), gm.data(), &mut gw);
                            gw
                        } else {
                            let xt = self.pool.transpose_of(xm);
                            let mut gw = self.pool.take(xt.rows(), gm.cols());
                            xt.matmul_auto_into(&gm, &mut gw);
                            self.pool.give(xt);
                            gw
                        }
                    };
                    self.pool.give(gm);
                    accumulate_owned(&mut self.grads, &mut self.pool, x.0, gx);
                    accumulate_owned(&mut self.grads, &mut self.pool, w.0, gw);
                    accumulate_owned(&mut self.grads, &mut self.pool, b.0, gb);
                }
            }
            if let (Some(t0), Some(t)) = (t0, &mut self.timing) {
                let e = t.bwd.entry(kind).or_insert((0, 0));
                e.0 += 1;
                e.1 += t0.elapsed_ns();
            }
            self.pool.give(g);
        }
        loss_value
    }
}

/// Accumulates an owned, pool-backed `delta` into `grads[idx]`; when the
/// slot is already populated the delta's buffer returns to the arena.
fn accumulate_owned(
    grads: &mut [Option<Matrix>],
    pool: &mut BufferPool,
    idx: usize,
    delta: Matrix,
) {
    match &mut grads[idx] {
        Some(existing) => {
            existing.add_assign(&delta);
            pool.give(delta);
        }
        slot @ None => *slot = Some(delta),
    }
}

/// Accumulates a borrowed `delta` into `grads[idx]`, copying into a pooled
/// buffer only when the slot is empty — the clone-free path for ops whose
/// upstream gradient passes through unchanged.
fn accumulate_ref(grads: &mut [Option<Matrix>], pool: &mut BufferPool, idx: usize, delta: &Matrix) {
    match &mut grads[idx] {
        Some(existing) => existing.add_assign(delta),
        slot @ None => *slot = Some(pool.copy_of(delta)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_linear_chain() {
        let mut g = Graph::new();
        let x = g.input(Matrix::row(&[1.0, 2.0]));
        let w = g.input(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let y = g.matmul(x, w);
        assert_eq!(g.value(y), &Matrix::row(&[1.0, 2.0]));
    }

    #[test]
    fn backward_through_matmul_param() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_rows(&[&[2.0], &[3.0]]));
        let mut g = Graph::new();
        let x = g.input(Matrix::row(&[5.0, 7.0]));
        let wv = g.param(&store, w);
        let y = g.matmul(x, wv); // y = 5*2 + 7*3 = 31
        let loss = g.sum_all(y);
        let lv = g.backward(loss, &mut store);
        assert_eq!(lv, 31.0);
        // dloss/dw = x^T
        assert_eq!(store.get(w).grad, Matrix::from_rows(&[&[5.0], &[7.0]]));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_grad_is_zero_for_uniform_seed() {
        let mut store = ParamStore::new();
        let p = store.register("p", Matrix::row(&[1.0, 2.0, 3.0]));
        let mut g = Graph::new();
        let pv = g.param(&store, p);
        let sm = g.softmax_rows(pv);
        let total: f32 = g.value(sm).data().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        // Sum of softmax outputs is constant 1 => gradient of the sum is 0.
        let loss = g.sum_all(sm);
        g.backward(loss, &mut store);
        for &v in store.get(p).grad.data() {
            assert!(v.abs() < 1e-6, "expected zero grad, got {v}");
        }
    }

    #[test]
    fn gather_rows_forward_and_backward() {
        let mut store = ParamStore::new();
        let p = store.register("p", Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]));
        let mut g = Graph::new();
        let pv = g.param(&store, p);
        let gathered = g.gather_rows(pv, Arc::new(vec![2, 0, 2]));
        assert_eq!(
            g.value(gathered),
            &Matrix::from_rows(&[&[100.0], &[1.0], &[100.0]])
        );
        let loss = g.sum_all(gathered);
        g.backward(loss, &mut store);
        // Row 2 gathered twice -> grad 2; row 0 once; row 1 never.
        assert_eq!(
            store.get(p).grad,
            Matrix::from_rows(&[&[1.0], &[0.0], &[2.0]])
        );
    }

    #[test]
    fn sum_groups_forward_and_backward() {
        let mut store = ParamStore::new();
        let p = store.register(
            "p",
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]),
        );
        let mut g = Graph::new();
        let pv = g.param(&store, p);
        let summed = g.sum_groups(pv, 2);
        assert_eq!(
            g.value(summed),
            &Matrix::from_rows(&[&[4.0, 6.0], &[12.0, 14.0]])
        );
        let loss = g.sum_all(summed);
        g.backward(loss, &mut store);
        assert_eq!(store.get(p).grad, Matrix::full(4, 2, 1.0));
    }

    #[test]
    fn mse_loss_value_and_grad() {
        let mut store = ParamStore::new();
        let p = store.register("p", Matrix::row(&[1.0, 3.0]));
        let mut g = Graph::new();
        let pred = g.param(&store, p);
        let target = g.input(Matrix::row(&[0.0, 0.0]));
        let loss = g.mse(pred, target);
        let lv = g.backward(loss, &mut store);
        assert!((lv - 5.0).abs() < 1e-6); // (1 + 9) / 2
                                          // d/dp mean((p - 0)^2) = 2p / n = p
        assert_eq!(store.get(p).grad, Matrix::row(&[1.0, 3.0]));
    }

    #[test]
    fn masked_sse_ignores_masked_entries() {
        let mut store = ParamStore::new();
        let p = store.register("p", Matrix::row(&[2.0, 100.0]));
        let mut g = Graph::new();
        let pred = g.param(&store, p);
        let target = g.input(Matrix::row(&[0.0, 0.0]));
        let mask = g.input(Matrix::row(&[1.0, 0.0]));
        let loss = g.masked_sse(pred, target, mask, 1.0);
        let lv = g.backward(loss, &mut store);
        assert!((lv - 4.0).abs() < 1e-6);
        assert_eq!(store.get(p).grad.get(0, 1), 0.0);
    }

    #[test]
    fn concat_splits_gradient() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::row(&[1.0]));
        let b = store.register("b", Matrix::row(&[2.0, 3.0]));
        let mut g = Graph::new();
        let av = g.param(&store, a);
        let bv = g.param(&store, b);
        let cat = g.concat_cols(av, bv);
        assert_eq!(g.value(cat), &Matrix::row(&[1.0, 2.0, 3.0]));
        let w = g.input(Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]));
        let y = g.matmul(cat, w);
        let loss = g.sum_all(y);
        g.backward(loss, &mut store);
        assert_eq!(store.get(a).grad, Matrix::row(&[1.0]));
        assert_eq!(store.get(b).grad, Matrix::row(&[10.0, 100.0]));
    }

    #[test]
    fn grad_accumulates_over_fanout() {
        // y = p + p => dy/dp = 2
        let mut store = ParamStore::new();
        let p = store.register("p", Matrix::row(&[4.0]));
        let mut g = Graph::new();
        let pv = g.param(&store, p);
        let y = g.add(pv, pv);
        let loss = g.sum_all(y);
        g.backward(loss, &mut store);
        assert_eq!(store.get(p).grad, Matrix::row(&[2.0]));
    }

    #[test]
    fn op_timing_flows_into_telemetry_counters() {
        let was = telemetry::set_enabled(true);
        {
            let mut store = ParamStore::new();
            let mut g = Graph::new();
            let x = g.input(Matrix::row(&[1.0, 2.0]));
            let w = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
            let y = g.matmul(x, w);
            let loss = g.sum_all(y);
            g.backward(loss, &mut store);
        } // dropping the tape flushes its per-op aggregates
        telemetry::set_enabled(was);
        assert!(telemetry::counter_value("nn.fwd.matmul.calls") >= 1);
        assert!(telemetry::counter_value("nn.bwd.matmul.calls") >= 1);
        assert!(telemetry::counter_value("nn.bwd.sum_all.calls") >= 1);
    }

    #[test]
    fn transpose_backward() {
        let mut store = ParamStore::new();
        let p = store.register("p", Matrix::from_rows(&[&[1.0, 2.0]]));
        let mut g = Graph::new();
        let pv = g.param(&store, p);
        let t = g.transpose(pv);
        let w = g.input(Matrix::from_rows(&[&[3.0, 5.0]]));
        let y = g.matmul(w, t); // 1x1 = 3*1 + 5*2 = 13
        let loss = g.sum_all(y);
        let lv = g.backward(loss, &mut store);
        assert_eq!(lv, 13.0);
        assert_eq!(store.get(p).grad, Matrix::from_rows(&[&[3.0, 5.0]]));
    }

    #[test]
    fn reset_reuses_buffers_instead_of_allocating() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_rows(&[&[2.0], &[3.0]]));
        let mut g = Graph::new();
        for _ in 0..3 {
            g.reset();
            let x = g.input_copy(&Matrix::row(&[5.0, 7.0]));
            let wv = g.param(&store, w);
            let y = g.matmul(x, wv);
            let loss = g.sum_all(y);
            let lv = g.backward(loss, &mut store);
            assert_eq!(lv, 31.0);
        }
        let stats = g.pool_stats();
        // Steps 2 and 3 are served entirely from the free lists, so
        // reuses strictly dominate fresh allocations.
        assert!(
            stats.reused > stats.fresh,
            "expected steady-state reuse, got {stats:?}"
        );
    }

    #[test]
    fn fused_linear_forward_matches_unfused_chain() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.25]]));
        let b = store.register("b", Matrix::row(&[0.1, -0.2]));
        let x = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);

        let mut g1 = Graph::new();
        let (xv, wv, bv) = (
            g1.input(x.clone()),
            g1.param(&store, w),
            g1.param(&store, b),
        );
        let mm = g1.matmul(xv, wv);
        let biased = g1.add_broadcast_row(mm, bv);
        let unfused = g1.relu(biased);

        let mut g2 = Graph::new();
        let (xv, wv, bv) = (g2.input(x), g2.param(&store, w), g2.param(&store, b));
        let fused = g2.linear(xv, wv, bv, true);

        assert_eq!(g1.value(unfused), g2.value(fused));
    }
}
