//! Size-class-keyed arena for [`Matrix`] backing stores.
//!
//! Every tape-local matrix a [`crate::Graph`] produces — node values,
//! gradient scratch, backward temporaries — is checked out of a
//! [`BufferPool`] and returned on [`crate::Graph::reset`]. At steady state
//! a reused tape therefore performs (almost) no heap allocation per
//! training step: every `take` is served from a free list populated by the
//! previous step's buffers.
//!
//! Size classes are exact element counts. HEAD's networks have a small,
//! fixed set of shapes per tape (layer widths never change between steps),
//! so exact keying gives a 100% hit rate after the first step without the
//! internal fragmentation of power-of-two classes.
//!
//! Determinism: a reused buffer carries the previous step's bits, so every
//! op writing into a pooled buffer must either fully overwrite it or start
//! from [`BufferPool::take_zeroed`]. Under that discipline pooling is
//! invisible in the output — only in the allocator profile — and the PR-4
//! serial/parallel checksum gates are unaffected.
//!
//! Accounting: the pool keeps local `fresh` / `reused` / `bytes` counters
//! (readable any time via [`BufferPool::stats`]) and flushes deltas to the
//! global telemetry counters `nn.alloc.fresh` / `nn.alloc.reused` /
//! `nn.alloc.bytes` when telemetry is enabled. The counters double as the
//! repo's allocation metric: the workspace forbids `unsafe`, so a counting
//! global allocator is off the table, but every pooled `take` is exactly
//! one heap allocation in the pre-arena design, making `fresh` vs `reused`
//! an honest per-step allocation profile.

use crate::matrix::Matrix;
use std::collections::BTreeMap;
use telemetry::keys;

/// Allocation counters of one [`BufferPool`], cumulative since creation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers allocated fresh from the heap.
    pub fresh: u64,
    /// Buffers served from a free list.
    pub reused: u64,
    /// Bytes freshly allocated.
    pub bytes: u64,
}

/// A free-list arena of `Vec<f32>` backing stores keyed by element count.
#[derive(Default)]
pub struct BufferPool {
    // Ordered map: lookups are always by exact length, but an ordered
    // free list keeps any future iteration (shrink, debug dumps) off the
    // hasher's nondeterministic order.
    free: BTreeMap<usize, Vec<Vec<f32>>>,
    stats: PoolStats,
    flushed: PoolStats,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a `rows x cols` matrix. A fresh buffer is zeroed; a
    /// reused one carries stale bits — callers must fully overwrite it
    /// (use [`BufferPool::take_zeroed`] when accumulating).
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        match self.free.get_mut(&len).and_then(Vec::pop) {
            Some(data) => {
                self.stats.reused += 1;
                Matrix::from_vec(rows, cols, data)
            }
            None => {
                self.stats.fresh += 1;
                self.stats.bytes += (len as u64) * 4;
                Matrix::from_vec(rows, cols, vec![0.0; len])
            }
        }
    }

    /// Checks out a `rows x cols` matrix with every element zeroed.
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = self.take(rows, cols);
        m.zero_out();
        m
    }

    /// Checks out a copy of `src`.
    pub fn copy_of(&mut self, src: &Matrix) -> Matrix {
        let mut out = self.take(src.rows(), src.cols());
        out.data_mut().copy_from_slice(src.data());
        out
    }

    /// Checks out the element-wise map of `src` under `f`.
    pub fn map_from(&mut self, src: &Matrix, f: impl Fn(f32) -> f32) -> Matrix {
        let mut out = self.take(src.rows(), src.cols());
        for (o, &x) in out.data_mut().iter_mut().zip(src.data()) {
            *o = f(x);
        }
        out
    }

    /// Checks out the element-wise combination of `a` and `b` under `f`.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn zip_from(&mut self, a: &Matrix, b: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(a.shape(), b.shape(), "zip shape mismatch");
        let mut out = self.take(a.rows(), a.cols());
        for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
            *o = f(x, y);
        }
        out
    }

    /// Checks out the transpose of `src`.
    pub fn transpose_of(&mut self, src: &Matrix) -> Matrix {
        let mut out = self.take(src.cols(), src.rows());
        for r in 0..src.rows() {
            for (c, &v) in src.row_slice(r).iter().enumerate() {
                out.set(c, r, v);
            }
        }
        out
    }

    /// Returns a matrix's backing store to the free lists.
    pub fn give(&mut self, m: Matrix) {
        let data = m.into_vec();
        if data.capacity() == 0 {
            return;
        }
        self.free.entry(data.len()).or_default().push(data);
    }

    /// Cumulative allocation counters since the pool was created.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Flushes the since-last-flush counter deltas into the global
    /// telemetry counters. No-op (and no watermark advance, so nothing is
    /// lost) while telemetry is disabled.
    pub fn flush_telemetry(&mut self) {
        if !telemetry::enabled() {
            return;
        }
        let d_fresh = self.stats.fresh - self.flushed.fresh;
        let d_reused = self.stats.reused - self.flushed.reused;
        let d_bytes = self.stats.bytes - self.flushed.bytes;
        if d_fresh > 0 {
            telemetry::counter_add(keys::NN_ALLOC_FRESH, d_fresh);
        }
        if d_reused > 0 {
            telemetry::counter_add(keys::NN_ALLOC_REUSED, d_reused);
        }
        if d_bytes > 0 {
            telemetry::counter_add(keys::NN_ALLOC_BYTES, d_bytes);
        }
        self.flushed = self.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_then_give_then_take_reuses() {
        let mut pool = BufferPool::new();
        let m = pool.take(3, 4);
        assert_eq!(
            pool.stats(),
            PoolStats {
                fresh: 1,
                reused: 0,
                bytes: 48
            }
        );
        pool.give(m);
        let m2 = pool.take(4, 3); // same element count, different shape
        assert_eq!(m2.shape(), (4, 3));
        assert_eq!(pool.stats().reused, 1);
        assert_eq!(pool.stats().fresh, 1, "no second heap allocation");
    }

    #[test]
    fn take_zeroed_clears_stale_bits() {
        let mut pool = BufferPool::new();
        let mut m = pool.take(2, 2);
        m.data_mut().fill(7.5);
        pool.give(m);
        let z = pool.take_zeroed(2, 2);
        // lint:allow(float-eq) intentional exact-bit check: the buffer must be all-zero bits
        assert!(z.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn helpers_match_matrix_equivalents() {
        let mut pool = BufferPool::new();
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5], &[1.0, -1.0]]);
        assert_eq!(pool.copy_of(&a), a);
        assert_eq!(pool.map_from(&a, |x| x * 2.0), a.map(|x| x * 2.0));
        assert_eq!(pool.zip_from(&a, &b, |x, y| x * y), a.zip(&b, |x, y| x * y));
        assert_eq!(pool.transpose_of(&a), a.transpose());
    }

    #[test]
    fn flush_emits_counter_deltas_once() {
        let was = telemetry::set_enabled(true);
        let before_fresh = telemetry::counter_value(keys::NN_ALLOC_FRESH);
        let before_reused = telemetry::counter_value(keys::NN_ALLOC_REUSED);
        let mut pool = BufferPool::new();
        let m = pool.take(2, 2);
        pool.give(m);
        let m = pool.take(2, 2);
        pool.give(m);
        pool.flush_telemetry();
        pool.flush_telemetry(); // second flush has no new deltas
        telemetry::set_enabled(was);
        assert_eq!(
            telemetry::counter_value(keys::NN_ALLOC_FRESH),
            before_fresh + 1
        );
        assert_eq!(
            telemetry::counter_value(keys::NN_ALLOC_REUSED),
            before_reused + 1
        );
    }
}
