//! Reusable layers built on top of the autodiff [`Graph`].
//!
//! Convention: activations are **row vectors**; a batch is a matrix whose
//! rows are samples. A [`Linear`] layer therefore stores its weight as
//! `(in_dim, out_dim)` and computes `x @ w + b`.

use crate::graph::{Graph, Var};
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use rand::Rng;

/// Fully connected layer `y = x @ w + b`.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers weights for a `in_dim -> out_dim` layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.register_xavier(format!("{name}.w"), in_dim, out_dim, rng);
        let b = store.register_zeros(format!("{name}.b"), 1, out_dim);
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer to a `(batch, in_dim)` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        self.forward_inner(g, store, x, true, false)
    }

    /// Applies the layer followed by a ReLU, as one fused tape node
    /// (bit-identical to `forward` + `Graph::relu`).
    pub fn forward_relu(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        self.forward_inner(g, store, x, true, true)
    }

    /// Applies the layer with its weights treated as constants: gradients
    /// flow *through* the layer to its input but not *into* its weights.
    /// Used when optimising one network through another that must stay
    /// fixed (e.g. the P-DQN actor loss with θ_Q frozen).
    pub fn forward_frozen(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        self.forward_inner(g, store, x, false, false)
    }

    /// [`Linear::forward_frozen`] with a fused ReLU.
    pub fn forward_frozen_relu(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        self.forward_inner(g, store, x, false, true)
    }

    fn forward_inner(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: Var,
        trainable: bool,
        relu: bool,
    ) -> Var {
        debug_assert_eq!(
            g.value(x).cols(),
            self.in_dim,
            "Linear input width mismatch"
        );
        let (w, b) = if trainable {
            (g.param(store, self.w), g.param(store, self.b))
        } else {
            (
                g.input_copy(&store.get(self.w).value),
                g.input_copy(&store.get(self.b).value),
            )
        };
        g.linear(x, w, b, relu)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// A standard LSTM cell (Hochreiter & Schmidhuber) operating on row batches.
///
/// Gates use separate input/recurrent weight matrices; the forget-gate bias
/// is initialised to 1.0 (common practice that speeds up convergence).
#[derive(Clone, Copy, Debug)]
pub struct LstmCell {
    wxi: ParamId,
    whi: ParamId,
    bi: ParamId,
    wxf: ParamId,
    whf: ParamId,
    bf: ParamId,
    wxg: ParamId,
    whg: ParamId,
    bg: ParamId,
    wxo: ParamId,
    who: ParamId,
    bo: ParamId,
    in_dim: usize,
    hidden: usize,
}

/// The recurrent state `(h, c)` of an [`LstmCell`] as graph nodes.
#[derive(Clone, Copy, Debug)]
pub struct LstmState {
    /// Hidden state node, shape `(batch, hidden)`.
    pub h: Var,
    /// Cell state node, shape `(batch, hidden)`.
    pub c: Var,
}

impl LstmCell {
    /// Registers weights for an `in_dim -> hidden` LSTM cell.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let wxi = store.register_xavier(format!("{name}.wxi"), in_dim, hidden, rng);
        let whi = store.register_xavier(format!("{name}.whi"), hidden, hidden, rng);
        let wxf = store.register_xavier(format!("{name}.wxf"), in_dim, hidden, rng);
        let whf = store.register_xavier(format!("{name}.whf"), hidden, hidden, rng);
        let wxg = store.register_xavier(format!("{name}.wxg"), in_dim, hidden, rng);
        let whg = store.register_xavier(format!("{name}.whg"), hidden, hidden, rng);
        let wxo = store.register_xavier(format!("{name}.wxo"), in_dim, hidden, rng);
        let who = store.register_xavier(format!("{name}.who"), hidden, hidden, rng);
        let bi = store.register_zeros(format!("{name}.bi"), 1, hidden);
        let bf = store.register(format!("{name}.bf"), Matrix::full(1, hidden, 1.0));
        let bg = store.register_zeros(format!("{name}.bg"), 1, hidden);
        let bo = store.register_zeros(format!("{name}.bo"), 1, hidden);
        Self {
            wxi,
            whi,
            bi,
            wxf,
            whf,
            bf,
            wxg,
            whg,
            bg,
            wxo,
            who,
            bo,
            in_dim,
            hidden,
        }
    }

    /// Zero initial state for a batch of `batch` rows, served from the
    /// tape's arena.
    pub fn zero_state(&self, g: &mut Graph, batch: usize) -> LstmState {
        LstmState {
            h: g.input_zeros(batch, self.hidden),
            c: g.input_zeros(batch, self.hidden),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn gate(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: Var,
        h: Var,
        wx: ParamId,
        wh: ParamId,
        b: ParamId,
    ) -> Var {
        let wxv = g.param(store, wx);
        let whv = g.param(store, wh);
        let bv = g.param(store, b);
        let a = g.matmul(x, wxv);
        let r = g.matmul(h, whv);
        let s = g.add(a, r);
        g.add_broadcast_row(s, bv)
    }

    /// One recurrence step on a `(batch, in_dim)` input node.
    pub fn step(&self, g: &mut Graph, store: &ParamStore, x: Var, state: LstmState) -> LstmState {
        debug_assert_eq!(g.value(x).cols(), self.in_dim, "LSTM input width mismatch");
        let i_pre = self.gate(g, store, x, state.h, self.wxi, self.whi, self.bi);
        let i = g.sigmoid(i_pre);
        let f_pre = self.gate(g, store, x, state.h, self.wxf, self.whf, self.bf);
        let f = g.sigmoid(f_pre);
        let gg_pre = self.gate(g, store, x, state.h, self.wxg, self.whg, self.bg);
        let gg = g.tanh(gg_pre);
        let o_pre = self.gate(g, store, x, state.h, self.wxo, self.who, self.bo);
        let o = g.sigmoid(o_pre);

        let fc = g.mul_elem(f, state.c);
        let ig = g.mul_elem(i, gg);
        let c = g.add(fc, ig);
        let ct = g.tanh(c);
        let h = g.mul_elem(o, ct);
        LstmState { h, c }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }
}

/// A small multilayer perceptron with ReLU activations between layers.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[52, 64, 64, 3]`.
    pub fn new(store: &mut ParamStore, name: &str, dims: &[usize], rng: &mut impl Rng) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least one layer");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.l{i}"), w[0], w[1], rng))
            .collect();
        Self { layers }
    }

    /// Forward pass; ReLU after every layer except the last. Hidden
    /// layers use the fused linear+ReLU node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = if i + 1 < self.layers.len() {
                layer.forward_relu(g, store, h)
            } else {
                layer.forward(g, store, h)
            };
        }
        h
    }

    /// Forward pass with frozen weights (see [`Linear::forward_frozen`]).
    pub fn forward_frozen(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = if i + 1 < self.layers.len() {
                layer.forward_frozen_relu(g, store, h)
            } else {
                layer.forward_frozen(g, store, h)
            };
        }
        h
    }

    /// Output width of the final layer.
    pub fn out_dim(&self) -> usize {
        // lint:allow(panic) constructors reject empty layer stacks, so last() always exists
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Input width of the first layer.
    pub fn in_dim(&self) -> usize {
        // lint:allow(panic) constructors reject empty layer stacks, so first() always exists
        self.layers.first().expect("non-empty").in_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn linear_shapes() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "fc", 3, 5, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(4, 3));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (4, 5));
    }

    #[test]
    fn linear_zero_bias_initially() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "fc", 2, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(1, 2));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y), &Matrix::zeros(1, 2));
    }

    #[test]
    fn lstm_step_shapes_and_bounds() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 4, 8, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::full(6, 4, 0.5));
        let s0 = cell.zero_state(&mut g, 6);
        let s1 = cell.step(&mut g, &store, x, s0);
        assert_eq!(g.value(s1.h).shape(), (6, 8));
        assert_eq!(g.value(s1.c).shape(), (6, 8));
        // h = o * tanh(c) is bounded to (-1, 1).
        assert!(g.value(s1.h).data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn lstm_state_carries_information() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 2, 4, &mut rng);
        let mut g = Graph::new();
        let x1 = g.input(Matrix::full(1, 2, 1.0));
        let x2 = g.input(Matrix::zeros(1, 2));
        let s0 = cell.zero_state(&mut g, 1);
        let s1 = cell.step(&mut g, &store, x1, s0);
        let s2 = cell.step(&mut g, &store, x2, s1);
        // A fresh zero state stepped with zero input differs from s2,
        // proving the recurrence actually carries history.
        let f0 = cell.zero_state(&mut g, 1);
        let f1 = cell.step(&mut g, &store, x2, f0);
        assert_ne!(g.value(s2.h), g.value(f1.h));
    }

    #[test]
    fn mlp_trains_toward_target() {
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "mlp", &[2, 16, 1], &mut rng);
        let mut opt = crate::optim::Adam::new(1e-2);
        let x_data = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let y_data = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]); // XOR
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            let mut g = Graph::new();
            let x = g.input(x_data.clone());
            let t = g.input(y_data.clone());
            let y = mlp.forward(&mut g, &store, x);
            let loss = g.mse(y, t);
            store.zero_grad();
            last = g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(last < 0.05, "XOR loss did not drop: {last}");
    }
}
