//! Optimisers and training-loop helpers.

use crate::matrix::Matrix;
use crate::params::ParamStore;
use serde::{Deserialize, Serialize};

/// Adam optimiser (Kingma & Ba, 2014), the optimiser used throughout the
/// HEAD paper (learning rate 0.001 by default there).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates Adam with standard betas (0.9 / 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        if self.m.len() != store.len() {
            self.m = store
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
            self.v = self.m.clone();
        }
    }

    /// Applies one update using the gradients currently in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.ensure_state(store);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in store.iter_mut().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((w, &g), (mm, vv)) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mm = self.beta1 * *mm + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
                let m_hat = *mm / bc1;
                let v_hat = *vv / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain SGD, kept for tests and as a reference implementation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies one update using the gradients currently in `store`.
    pub fn step(&self, store: &mut ParamStore) {
        for p in store.iter_mut() {
            for (w, &g) in p.value.data_mut().iter_mut().zip(p.grad.data()) {
                *w -= self.lr * g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimise (w - 3)^2 with each optimiser.
    fn quadratic_loss(store: &mut ParamStore, step: &mut dyn FnMut(&mut ParamStore)) -> f32 {
        let w = store.register("w", Matrix::row(&[0.0]));
        for _ in 0..500 {
            let mut g = Graph::new();
            let wv = g.param(store, w);
            let target = g.input(Matrix::row(&[3.0]));
            let loss = g.mse(wv, target);
            store.zero_grad();
            g.backward(loss, store);
            step(store);
        }
        store.value(w).get(0, 0)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let mut adam = Adam::new(0.05);
        let w = quadratic_loss(&mut store, &mut |s| adam.step(s));
        assert!((w - 3.0).abs() < 1e-2, "adam ended at {w}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let sgd = Sgd::new(0.1);
        let w = quadratic_loss(&mut store, &mut |s| sgd.step(s));
        assert!((w - 3.0).abs() < 1e-3, "sgd ended at {w}");
    }

    #[test]
    fn adam_steps_counted() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::row(&[1.0]));
        let mut adam = Adam::new(0.01);
        adam.step(&mut store);
        adam.step(&mut store);
        assert_eq!(adam.steps(), 2);
    }

    #[test]
    fn adam_handles_param_store_growth_gracefully() {
        // If the store changes size, moment state is re-initialised.
        let mut store = ParamStore::new();
        store.register("a", Matrix::row(&[1.0]));
        let mut adam = Adam::new(0.01);
        adam.step(&mut store);
        store.register("b", Matrix::row(&[2.0]));
        adam.step(&mut store); // must not panic
        assert_eq!(adam.steps(), 2);
    }
}
