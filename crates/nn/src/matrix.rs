//! Dense row-major `f32` matrices.
//!
//! All neural networks in this workspace are small (hidden sizes ≤ 64,
//! batch sizes ≤ 64), so a simple cache-friendly `Vec<f32>` representation
//! with straightforward triple loops is both fast enough and easy to audit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Narrows an `f64` physics quantity to the network's `f32` input
/// precision.
///
/// Every feature-plumbing cast in the workspace funnels through this one
/// function so the intended quantisation is explicit and the headlint
/// `float-cast` pass has a single sanctioned narrowing site instead of a
/// scattering of bare `as f32` casts.
#[inline]
pub fn narrow(v: f64) -> f32 {
    v as f32
}

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a 1 x n row vector.
    pub fn row(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams through `rhs` rows, good locality.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                // lint:allow(float-eq) sparsity fast path: only an exact-zero row skips work
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combination of two same-shape matrices.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self *= s`.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fill with zeros, keeping the allocation.
    pub fn zero_out(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reshape into `(rows, cols)` without moving data.
    ///
    /// # Panics
    /// Panics if the element count changes.
    pub fn reshaped(&self, rows: usize, cols: usize) -> Matrix {
        assert_eq!(
            rows * cols,
            self.data.len(),
            "reshape changes element count"
        );
        Matrix {
            rows,
            cols,
            data: self.data.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_basic() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]);
        assert_eq!(a.matmul(&b), Matrix::from_rows(&[&[201.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.map(f32::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.zip(&b, |x, y| x + y), Matrix::from_rows(&[&[4.0, 2.0]]));
    }

    #[test]
    fn reshape_preserves_order() {
        let a = Matrix::from_vec(2, 3, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = a.reshaped(3, 2);
        assert_eq!(b.get(1, 0), 2.0);
        assert_eq!(b.get(2, 1), 5.0);
    }

    #[test]
    fn norm_and_sum() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.sum(), 7.0);
    }
}
