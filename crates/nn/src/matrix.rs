//! Dense row-major `f32` matrices.
//!
//! All neural networks in this workspace are small (hidden sizes ≤ 64,
//! batch sizes ≤ 64), so a simple cache-friendly `Vec<f32>` representation
//! with straightforward triple loops is both fast enough and easy to audit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Narrows an `f64` physics quantity to the network's `f32` input
/// precision.
///
/// Every feature-plumbing cast in the workspace funnels through this one
/// function so the intended quantisation is explicit and the headlint
/// `float-cast` pass has a single sanctioned narrowing site instead of a
/// scattering of bare `as f32` casts.
#[inline]
pub fn narrow(v: f64) -> f32 {
    v as f32
}

/// Register-tile height of the GEMM micro-kernel: output rows advanced
/// per inner step.
///
/// `MM_MR x MM_NR` f32 accumulators are 8 four-lane SIMD words — together
/// with one `MM_NR`-wide `rhs` panel and one broadcast lane they fit the
/// 16 vector registers of baseline x86-64, so the accumulator block never
/// spills inside the `k` loop.
const MM_MR: usize = 4;
/// Register-tile width of the GEMM micro-kernel: output columns advanced
/// per inner step (two four-lane SIMD words per row at baseline width).
const MM_NR: usize = 8;
/// Auto-dispatch threshold in multiply-adds: below this, scoped-thread
/// spawn overhead exceeds the whole kernel, so [`Matrix::matmul_auto`]
/// stays serial.
///
/// Derived from measured crossover, not guessed (see `bench --bin perf`,
/// kernel section): `par::Pool::try_map` spawns its scoped workers per
/// call at ~0.3 ms for two threads, and the serial micro-kernel sustains
/// on the order of 10 GFLOP/s, so spawn cost alone buys ~3 M multiply-adds
/// of work. Break-even is therefore in the millions of MACs; `1 << 23`
/// (~8.4 M) adds a safety margin so the parallel path only wins. The
/// workspace's policy nets (hidden ≤ 64) sit far below it — parallelism
/// pays at the episode/head level there, not per-GEMM. The old `1 << 20`
/// threshold admitted ~1 M-MAC products (~0.1 ms of work) and produced the
/// 0.47x smoke-scale slowdown recorded in `results/BENCH_parallel.json`.
pub const PAR_MIN_MACS: usize = 1 << 23;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a 1 x n row vector.
    pub fn row(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing vector — the hand-off
    /// point for the `BufferPool` arena, which recycles backing stores
    /// across tape resets instead of freeing them.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.assert_matmul_shapes(rhs);
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_rows_into(rhs, 0, self.rows, &mut out.data);
        out
    }

    /// `self * rhs` computed on `pool`'s workers by partitioning output
    /// rows into contiguous chunks.
    ///
    /// Bit-for-bit identical to [`Matrix::matmul`]: every output element
    /// is produced by the same kernel with the same `k` accumulation
    /// order; the partition only decides *who* computes a row, never how.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch, or if a worker panics
    /// (which would mean a kernel bug, not a caller error).
    pub fn matmul_par(&self, rhs: &Matrix, pool: &par::Pool) -> Matrix {
        self.assert_matmul_shapes(rhs);
        let workers = pool.threads().min(self.rows);
        if workers <= 1 {
            return self.matmul(rhs);
        }
        let chunk = self.rows.div_ceil(workers);
        let ranges: Vec<(usize, usize)> = (0..self.rows)
            .step_by(chunk.max(1))
            .map(|r0| (r0, (r0 + chunk).min(self.rows)))
            .collect();
        let blocks = match pool.try_map(ranges, |_, (r0, r1)| {
            let mut block = vec![0.0f32; (r1 - r0) * rhs.cols];
            self.matmul_rows_into(rhs, r0, r1, &mut block);
            block
        }) {
            Ok(blocks) => blocks,
            // lint:allow(panic, serve-reachability) a worker panic here is a kernel bug; re-raise with context
            Err(e) => panic!("parallel matmul failed: {e}"),
        };
        let mut data = Vec::with_capacity(self.rows * rhs.cols);
        for block in blocks {
            data.extend_from_slice(&block);
        }
        Matrix {
            rows: self.rows,
            cols: rhs.cols,
            data,
        }
    }

    /// `self * rhs` with automatic serial/parallel dispatch.
    ///
    /// Routes to [`Matrix::matmul_par`] when the effective worker count
    /// ([`par::effective_threads`]: the configured [`par::threads`] capped
    /// by the hardware core count) is above 1 **and** the product is big
    /// enough ([`PAR_MIN_MACS`] multiply-adds) that scoped-thread spawn
    /// overhead is amortised; otherwise runs the serial kernel. Because
    /// both paths are bit-identical the dispatch decision is invisible in
    /// the output — only in wall-clock. Decisions are counted under the
    /// `nn.kernel.dispatch_*` telemetry keys so a run can report how often
    /// each path was taken.
    pub fn matmul_auto(&self, rhs: &Matrix) -> Matrix {
        let threads = par::effective_threads();
        let macs = self.rows.saturating_mul(self.cols).saturating_mul(rhs.cols);
        if threads > 1 && self.rows > 1 && macs >= PAR_MIN_MACS {
            telemetry::counter_add(telemetry::keys::NN_KERNEL_DISPATCH_PARALLEL, 1);
            self.matmul_par(rhs, &par::Pool::new(threads))
        } else {
            telemetry::counter_add(telemetry::keys::NN_KERNEL_DISPATCH_SERIAL, 1);
            self.matmul(rhs)
        }
    }

    /// [`Matrix::matmul_auto`] computing into a caller-provided output
    /// buffer, so a pooled tape can reuse allocations across steps.
    ///
    /// Bit-identical to [`Matrix::matmul_auto`]: the serial branch runs
    /// the same overwriting kernel; the parallel branch (only reached on
    /// [`PAR_MIN_MACS`]-sized products, where a copy is noise) computes
    /// with [`Matrix::matmul_par`] and copies the result in.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch or if `out` is not
    /// `self.rows x rhs.cols`.
    pub fn matmul_auto_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.assert_matmul_shapes(rhs);
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul output shape mismatch"
        );
        let threads = par::effective_threads();
        let macs = self.rows.saturating_mul(self.cols).saturating_mul(rhs.cols);
        if threads > 1 && self.rows > 1 && macs >= PAR_MIN_MACS {
            telemetry::counter_add(telemetry::keys::NN_KERNEL_DISPATCH_PARALLEL, 1);
            let m = self.matmul_par(rhs, &par::Pool::new(threads));
            out.data.copy_from_slice(&m.data);
        } else {
            telemetry::counter_add(telemetry::keys::NN_KERNEL_DISPATCH_SERIAL, 1);
            self.matmul_rows_into(rhs, 0, self.rows, &mut out.data);
        }
    }

    /// The shared row-range GEMM kernel: computes (overwrites) output rows
    /// `r0..r1` into `out` (a `(r1-r0) x rhs.cols` row-major block).
    ///
    /// Register-tiled micro-kernel over contiguous column panels: for each
    /// `MM_NR`-wide panel of output columns, `MM_MR x MM_NR` accumulators
    /// sweep the **full** inner dimension before anything is stored, with
    /// the `MM_NR`-wide `rhs` panel row reloaded per `k` step (contiguous,
    /// cache-hot — the whole `k x MM_NR` panel of `rhs` stays resident
    /// while every row tile sweeps it). The per-column accumulator lanes
    /// are independent, so the compiler vectorises the panel loop without
    /// reassociating anything.
    ///
    /// Determinism contract: for every output element the products are
    /// accumulated in strictly ascending `k` order, starting from `+0.0`
    /// and never splitting the `k` sweep into partial sums — so tiling
    /// width, SIMD width, and the row partitioning above never change a
    /// single bit of the result, and serial/parallel checksums match at
    /// any thread count. Inputs are assumed finite (everything upstream is
    /// finite-guarded); the kernel itself never skips a term.
    fn matmul_rows_into(&self, rhs: &Matrix, r0: usize, r1: usize, out: &mut [f32]) {
        let m = r1 - r0;
        let k_dim = self.cols;
        let n = rhs.cols;
        debug_assert!(r1 <= self.rows && out.len() == m * n);
        let a = &self.data;
        let b = &rhs.data;
        let n_main = n - n % MM_NR;
        let m_main = m - m % MM_MR;
        let mut jb = 0;
        while jb < n_main {
            // Full MM_MR x MM_NR register tiles.
            let mut ib = 0;
            while ib < m_main {
                // Pre-sliced `lhs` rows let the `arows[r][kk]` loads below
                // elide bounds checks (kk < k_dim by construction).
                let mut arows: [&[f32]; MM_MR] = [&a[0..0]; MM_MR];
                for (r, slot) in arows.iter_mut().enumerate() {
                    let row = r0 + ib + r;
                    *slot = &a[row * k_dim..row * k_dim + k_dim];
                }
                let mut acc = [[0.0f32; MM_NR]; MM_MR];
                for kk in 0..k_dim {
                    let bs = kk * n + jb;
                    let mut bp = [0.0f32; MM_NR];
                    bp.copy_from_slice(&b[bs..bs + MM_NR]);
                    for (row, &av) in acc.iter_mut().zip(&arows) {
                        let av = av[kk];
                        for (o, &bv) in row.iter_mut().zip(&bp) {
                            *o += av * bv;
                        }
                    }
                }
                for (r, row) in acc.iter().enumerate() {
                    let base = (ib + r) * n + jb;
                    out[base..base + MM_NR].copy_from_slice(row);
                }
                ib += MM_MR;
            }
            // Row remainder: single-row accumulators over the same panel.
            for i in ib..m {
                let arow = &a[(r0 + i) * k_dim..(r0 + i) * k_dim + k_dim];
                let mut acc = [0.0f32; MM_NR];
                for (kk, &av) in arow.iter().enumerate() {
                    let bs = kk * n + jb;
                    let mut bp = [0.0f32; MM_NR];
                    bp.copy_from_slice(&b[bs..bs + MM_NR]);
                    for (o, &bv) in acc.iter_mut().zip(&bp) {
                        *o += av * bv;
                    }
                }
                out[i * n + jb..i * n + jb + MM_NR].copy_from_slice(&acc);
            }
            jb += MM_NR;
        }
        // Column remainder (n % MM_NR): scalar per-element, ascending k —
        // the same per-element accumulation order as the panels.
        if n_main < n {
            for i in 0..m {
                let arow = &a[(r0 + i) * k_dim..(r0 + i) * k_dim + k_dim];
                for j in n_main..n {
                    let mut acc = 0.0f32;
                    for (kk, &av) in arow.iter().enumerate() {
                        acc += av * b[kk * n + j];
                    }
                    out[i * n + j] = acc;
                }
            }
        }
    }

    fn assert_matmul_shapes(&self, rhs: &Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
    }

    /// Outer product `u vᵀ` (a `u.len() x v.len()` matrix).
    ///
    /// Mirrors the matmul kernel's arithmetic exactly — a `+0.0`-seeded
    /// one-term accumulation per element — so `outer(u, v)` is
    /// bit-identical to `col(u).matmul(&row(v))` and the graph backward
    /// pass can take this cheaper path for batch-1 gradients without
    /// perturbing any checksum.
    pub fn outer(u: &[f32], v: &[f32]) -> Matrix {
        let mut out = Matrix::zeros(u.len(), v.len());
        Self::outer_rows_into(u, v, 0, u.len(), &mut out.data);
        out
    }

    /// [`Matrix::outer`] on `pool`'s workers, row-partitioned; bit-identical.
    ///
    /// # Panics
    /// Panics if a worker panics (a kernel bug, not a caller error).
    pub fn outer_par(u: &[f32], v: &[f32], pool: &par::Pool) -> Matrix {
        let workers = pool.threads().min(u.len());
        if workers <= 1 {
            return Self::outer(u, v);
        }
        let chunk = u.len().div_ceil(workers);
        let ranges: Vec<(usize, usize)> = (0..u.len())
            .step_by(chunk.max(1))
            .map(|r0| (r0, (r0 + chunk).min(u.len())))
            .collect();
        let blocks = match pool.try_map(ranges, |_, (r0, r1)| {
            let mut block = vec![0.0f32; (r1 - r0) * v.len()];
            Self::outer_rows_into(u, v, r0, r1, &mut block);
            block
        }) {
            Ok(blocks) => blocks,
            // lint:allow(panic) a worker panic here is a kernel bug; re-raise with context
            Err(e) => panic!("parallel outer product failed: {e}"),
        };
        let mut data = Vec::with_capacity(u.len() * v.len());
        for block in blocks {
            data.extend_from_slice(&block);
        }
        Matrix {
            rows: u.len(),
            cols: v.len(),
            data,
        }
    }

    /// Outer product with the same auto-dispatch policy as
    /// [`Matrix::matmul_auto`].
    pub fn outer_auto(u: &[f32], v: &[f32]) -> Matrix {
        let threads = par::effective_threads();
        if threads > 1 && u.len() > 1 && u.len().saturating_mul(v.len()) >= PAR_MIN_MACS {
            telemetry::counter_add(telemetry::keys::NN_KERNEL_DISPATCH_PARALLEL, 1);
            Self::outer_par(u, v, &par::Pool::new(threads))
        } else {
            telemetry::counter_add(telemetry::keys::NN_KERNEL_DISPATCH_SERIAL, 1);
            Self::outer(u, v)
        }
    }

    /// [`Matrix::outer_auto`] computing into a caller-provided output
    /// buffer — the pooled-tape counterpart, bit-identical to the
    /// allocating form (see [`Matrix::matmul_auto_into`] for the policy).
    ///
    /// # Panics
    /// Panics if `out` is not `u.len() x v.len()`.
    pub fn outer_auto_into(u: &[f32], v: &[f32], out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (u.len(), v.len()),
            "outer output shape mismatch"
        );
        let threads = par::effective_threads();
        if threads > 1 && u.len() > 1 && u.len().saturating_mul(v.len()) >= PAR_MIN_MACS {
            telemetry::counter_add(telemetry::keys::NN_KERNEL_DISPATCH_PARALLEL, 1);
            let m = Self::outer_par(u, v, &par::Pool::new(threads));
            out.data.copy_from_slice(&m.data);
        } else {
            telemetry::counter_add(telemetry::keys::NN_KERNEL_DISPATCH_SERIAL, 1);
            Self::outer_rows_into(u, v, 0, u.len(), &mut out.data);
        }
    }

    fn outer_rows_into(u: &[f32], v: &[f32], r0: usize, r1: usize, out: &mut [f32]) {
        debug_assert!(r1 <= u.len() && out.len() == (r1 - r0) * v.len());
        for (off, &a) in u[r0..r1].iter().enumerate() {
            let base = off * v.len();
            let out_row = &mut out[base..base + v.len()];
            for (o, &b) in out_row.iter_mut().zip(v) {
                // Seed from +0.0 and accumulate (never assign the bare
                // product) so a `-0.0` product lands as `+0.0`, exactly as
                // the k=1 case of the matmul kernel produces it.
                let mut acc = 0.0f32;
                acc += a * b;
                *o = acc;
            }
        }
    }

    /// Bit-exact FNV-1a digest of the shape and every element's bit
    /// pattern — the currency of the serial-vs-parallel equality checks
    /// in `bench --bin perf` and CI's perf-smoke stage.
    pub fn checksum(&self) -> u64 {
        let mut c = par::Checksum::new();
        c.push_u64(self.rows as u64);
        c.push_u64(self.cols as u64);
        for &v in &self.data {
            c.push_f32(v);
        }
        c.finish()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combination of two same-shape matrices.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self *= s`.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fill with zeros, keeping the allocation.
    pub fn zero_out(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reshape into `(rows, cols)` without moving data.
    ///
    /// # Panics
    /// Panics if the element count changes.
    pub fn reshaped(&self, rows: usize, cols: usize) -> Matrix {
        assert_eq!(
            rows * cols,
            self.data.len(),
            "reshape changes element count"
        );
        Matrix {
            rows,
            cols,
            data: self.data.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_basic() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]);
        assert_eq!(a.matmul(&b), Matrix::from_rows(&[&[201.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.map(f32::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.zip(&b, |x, y| x + y), Matrix::from_rows(&[&[4.0, 2.0]]));
    }

    #[test]
    fn reshape_preserves_order() {
        let a = Matrix::from_vec(2, 3, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = a.reshaped(3, 2);
        assert_eq!(b.get(1, 0), 2.0);
        assert_eq!(b.get(2, 1), 5.0);
    }

    #[test]
    fn norm_and_sum() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.sum(), 7.0);
    }

    /// Deterministic pseudo-random fill (no rand dependency needed here).
    fn seeded(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut z = seed;
        let data = (0..rows * cols)
            .map(|i| {
                z = par::stream_seed(z, i as u64);
                // Spread across [-1, 1) with a sprinkling of exact zeros
                // so signed-zero products are exercised too.
                if z % 17 == 0 {
                    0.0
                } else {
                    (z % 10_000) as f32 / 5_000.0 - 1.0
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn parallel_matmul_is_bit_identical_to_serial() {
        // Odd, tile-straddling sizes: rows not divisible by workers or
        // tiles, inner dim crossing MM_K_TILE.
        for (m, k, n) in [(37, 129, 23), (5, 3, 7), (64, 64, 64), (1, 80, 9)] {
            let a = seeded(m, k, 11);
            let b = seeded(k, n, 13);
            let serial = a.matmul(&b);
            for threads in [2, 3, 8] {
                let parallel = a.matmul_par(&b, &par::Pool::new(threads));
                assert_eq!(
                    serial.checksum(),
                    parallel.checksum(),
                    "{m}x{k}x{n} @ {threads}"
                );
                assert_eq!(serial, parallel);
            }
        }
    }

    /// Naive i-j-k reference: per-element ascending-`k` accumulation from
    /// `+0.0` — the order the micro-kernel contractually reproduces.
    fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn micro_kernel_matches_naive_accumulation_order_bitwise() {
        // Shapes straddling every tile boundary: row remainders (m % MM_MR),
        // column remainders (n % MM_NR), k=1, and single-row inputs.
        for (m, k, n) in [(4, 8, 8), (7, 129, 23), (1, 5, 3), (12, 64, 40), (5, 1, 9)] {
            let a = seeded(m, k, 21);
            let b = seeded(k, n, 22);
            let fast = a.matmul(&b);
            let naive = matmul_naive(&a, &b);
            assert_eq!(fast.checksum(), naive.checksum(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn negative_zero_products_accumulate_to_positive_zero() {
        // (-1)·0 = -0.0, but the kernel seeds every accumulator with +0.0
        // and adds, so the stored element must be +0.0 bit-for-bit — the
        // invariant that keeps the old sparsity-skipping kernel's
        // checksums (and all committed baselines) valid.
        let u = Matrix::from_vec(2, 1, vec![-1.0, 0.0]);
        let v = Matrix::from_vec(1, 3, vec![0.0, 3.0, 0.0]);
        let prod = u.matmul(&v);
        assert_eq!(prod.get(0, 0).to_bits(), 0.0f32.to_bits());
        assert_eq!(prod.get(1, 2).to_bits(), 0.0f32.to_bits());
        let direct = Matrix::outer(u.data(), v.data());
        assert_eq!(prod.checksum(), direct.checksum());
    }

    #[test]
    fn outer_matches_matmul_bitwise() {
        let u = seeded(41, 1, 3);
        let v = seeded(1, 29, 5);
        let via_matmul = u.matmul(&v);
        let direct = Matrix::outer(u.data(), v.data());
        assert_eq!(via_matmul.checksum(), direct.checksum());
        let parallel = Matrix::outer_par(u.data(), v.data(), &par::Pool::new(4));
        assert_eq!(direct, parallel);
    }

    #[test]
    fn auto_dispatch_is_invisible_in_the_output() {
        let a = seeded(48, 32, 7);
        let b = seeded(32, 24, 9);
        let serial = a.matmul(&b);
        let prev = par::set_threads(4);
        let auto = a.matmul_auto(&b);
        par::set_threads(prev);
        assert_eq!(serial, auto);
    }

    #[test]
    fn checksum_is_shape_sensitive() {
        let a = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let b = Matrix::from_vec(3, 2, vec![1.0; 6]);
        assert_ne!(a.checksum(), b.checksum());
    }
}
