//! # nn — a minimal neural-network engine
//!
//! This crate is the PyTorch substitute for the HEAD reproduction: a small,
//! dependency-light, reverse-mode automatic-differentiation engine over dense
//! `f32` matrices, plus the layers (linear, LSTM) and optimisers (Adam) that
//! the paper's networks need.
//!
//! Design points:
//!
//! * **Define-by-run tape** — a [`Graph`] is built per forward pass; ops
//!   compute eagerly and record a backward rule. This mirrors how the paper's
//!   models (LST-GAT, BP-DQN, the baselines) would be written in PyTorch.
//!   Tapes are reusable: [`Graph::reset`] returns every buffer to a
//!   per-graph [`BufferPool`] arena, so a long-lived tape reaches a steady
//!   state with (almost) no per-step heap allocation.
//! * **External parameter store** — layer structs hold [`ParamId`] handles
//!   into a [`ParamStore`]; gradients are accumulated back into the store by
//!   [`Graph::backward`]. Target networks for DQN-style learners are just a
//!   second store updated with [`ParamStore::soft_update_from`].
//! * **Graph-attention primitives** — [`Graph::gather_rows`] and
//!   [`Graph::sum_groups`] express attention over a fixed neighbour structure
//!   (the paper's 42-node spatial graph) without any sparse-matrix machinery.
//!
//! Everything is gradient-checked against central finite differences in the
//! property-test suite (`tests/gradcheck.rs`).
//!
//! ```
//! use nn::{Graph, Matrix, ParamStore, Adam, Mlp};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let mlp = Mlp::new(&mut store, "demo", &[2, 8, 1], &mut rng);
//! let mut adam = Adam::new(1e-2);
//!
//! let mut g = Graph::new();
//! let x = g.input(Matrix::row(&[0.5, -0.5]));
//! let t = g.input(Matrix::row(&[1.0]));
//! let y = mlp.forward(&mut g, &store, x);
//! let loss = g.mse(y, t);
//! store.zero_grad();
//! g.backward(loss, &mut store);
//! adam.step(&mut store);
//! ```

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod graph;
mod guard;
mod layers;
mod matrix;
mod optim;
mod params;
mod pool;

pub use graph::{Graph, Var};
pub use guard::{finite_guard, DivergenceGuard};
pub use layers::{Linear, LstmCell, LstmState, Mlp};
pub use matrix::{narrow, Matrix, PAR_MIN_MACS};
pub use optim::{Adam, Sgd};
pub use params::{Param, ParamId, ParamStore};
pub use pool::{BufferPool, PoolStats};
