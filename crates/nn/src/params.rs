//! Learnable parameters and their registry.
//!
//! Layers hold [`ParamId`] handles; the values, gradients and optimizer
//! moments live in a [`ParamStore`] owned by the model. Computation graphs
//! read parameter values when a node is created and write gradients back
//! after the backward pass, which keeps the graph free of borrows into the
//! store.

use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Handle to one learnable tensor inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

/// One learnable tensor plus its accumulated gradient.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    /// Human-readable name, used in checkpoints and error messages.
    pub name: String,
    /// Current value.
    pub value: Matrix,
    /// Gradient accumulated since the last `zero_grad`.
    pub grad: Matrix,
}

/// Registry of all learnable parameters of a model.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an explicit initial value.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.params.push(Param {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.params.len() - 1)
    }

    /// Registers a `rows x cols` parameter with Xavier/Glorot-uniform init.
    pub fn register_xavier(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut impl Rng,
    ) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        self.register(name, Matrix::from_vec(rows, cols, data))
    }

    /// Registers a zero-initialised parameter (typical for biases).
    pub fn register_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.register(name, Matrix::zeros(rows, cols))
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn scalar_count(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Immutable access to a parameter.
    pub fn get(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    /// Mutable access to a parameter.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Param {
        &mut self.params[id.0]
    }

    /// Value of a parameter (cloned; matrices here are small).
    pub fn value(&self, id: ParamId) -> Matrix {
        self.params[id.0].value.clone()
    }

    /// Adds `delta` into the gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Matrix) {
        self.params[id.0].grad.add_assign(delta);
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad.zero_out();
        }
    }

    /// Iterates over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Iterates mutably over all parameters.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.params.iter_mut()
    }

    /// Global L2 norm of all gradients (for clipping diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| {
                let n = p.grad.frobenius_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient so that the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                p.grad.scale_assign(s);
            }
        }
    }

    /// Copies all values from `src` (shapes must match; used for target nets).
    pub fn copy_values_from(&mut self, src: &ParamStore) {
        assert_eq!(self.params.len(), src.params.len(), "param count mismatch");
        for (dst, s) in self.params.iter_mut().zip(&src.params) {
            assert_eq!(dst.value.shape(), s.value.shape(), "param shape mismatch");
            dst.value = s.value.clone();
        }
    }

    /// Checks that `src` has the same parameter count and per-tensor
    /// shapes as `self`, describing the first mismatch found. Lets callers
    /// with several stores validate all of them before mutating any.
    pub fn shapes_match(&self, src: &ParamStore) -> Result<(), String> {
        if self.params.len() != src.params.len() {
            return Err(format!(
                "param count mismatch: store has {}, source has {}",
                self.params.len(),
                src.params.len()
            ));
        }
        for (dst, s) in self.params.iter().zip(&src.params) {
            if dst.value.shape() != s.value.shape() {
                return Err(format!(
                    "param shape mismatch for `{}`: store {:?}, source {:?}",
                    dst.name,
                    dst.value.shape(),
                    s.value.shape()
                ));
            }
        }
        Ok(())
    }

    /// Fallible [`ParamStore::copy_values_from`]: checks every shape before
    /// touching `self`, so a mismatched source (e.g. a checkpoint written
    /// under a different architecture) leaves the store untouched instead
    /// of panicking mid-copy. Used by the serving hot-reload path.
    pub fn try_copy_values_from(&mut self, src: &ParamStore) -> Result<(), String> {
        self.shapes_match(src)?;
        for (dst, s) in self.params.iter_mut().zip(&src.params) {
            dst.value = s.value.clone();
        }
        Ok(())
    }

    /// Polyak soft update: `self = tau * src + (1 - tau) * self`.
    pub fn soft_update_from(&mut self, src: &ParamStore, tau: f32) {
        assert_eq!(self.params.len(), src.params.len(), "param count mismatch");
        for (dst, s) in self.params.iter_mut().zip(&src.params) {
            dst.value = dst.value.zip(&s.value, |d, v| (1.0 - tau) * d + tau * v);
        }
    }

    /// True when every parameter value is finite.
    pub fn values_are_finite(&self) -> bool {
        self.params
            .iter()
            .all(|p| p.value.data().iter().all(|v| v.is_finite()))
    }

    /// True when every accumulated gradient is finite.
    pub fn grads_are_finite(&self) -> bool {
        self.params
            .iter()
            .all(|p| p.grad.data().iter().all(|v| v.is_finite()))
    }

    /// Serialises the store to JSON (model checkpoint).
    ///
    /// # Panics
    /// Never in practice: the store is a plain tree of names and float
    /// matrices, which always serialises. Fallible callers (file I/O
    /// paths) should prefer [`ParamStore::try_to_json`].
    pub fn to_json(&self) -> String {
        self.try_to_json()
            // lint:allow(panic, serve-reachability) documented above: a plain tree of names and floats always serialises
            .expect("ParamStore is always serialisable")
    }

    /// Serialises the store to JSON, surfacing encoder errors.
    pub fn try_to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores a store from [`ParamStore::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn register_and_access() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::from_rows(&[&[1.0, 2.0]]));
        assert_eq!(store.value(id).get(0, 1), 2.0);
        assert_eq!(store.len(), 1);
        assert_eq!(store.scalar_count(), 2);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let id = store.register_xavier("w", 10, 30, &mut rng);
        let bound = (6.0f32 / 40.0).sqrt();
        assert!(store.value(id).data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn grad_accumulate_and_zero() {
        let mut store = ParamStore::new();
        let id = store.register_zeros("b", 1, 2);
        store.accumulate_grad(id, &Matrix::from_rows(&[&[1.0, -1.0]]));
        store.accumulate_grad(id, &Matrix::from_rows(&[&[0.5, 0.5]]));
        assert_eq!(store.get(id).grad, Matrix::from_rows(&[&[1.5, -0.5]]));
        store.zero_grad();
        assert_eq!(store.get(id).grad, Matrix::zeros(1, 2));
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut store = ParamStore::new();
        let id = store.register_zeros("w", 1, 2);
        store.accumulate_grad(id, &Matrix::from_rows(&[&[3.0, 4.0]]));
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-6);
        // Direction preserved.
        let g = store.get(id).grad.clone();
        assert!((g.get(0, 0) / g.get(0, 1) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn clip_noop_below_threshold() {
        let mut store = ParamStore::new();
        let id = store.register_zeros("w", 1, 2);
        store.accumulate_grad(id, &Matrix::from_rows(&[&[0.3, 0.4]]));
        store.clip_grad_norm(10.0);
        assert_eq!(store.get(id).grad, Matrix::from_rows(&[&[0.3, 0.4]]));
    }

    #[test]
    fn soft_update_mixes() {
        let mut a = ParamStore::new();
        let ida = a.register("w", Matrix::from_rows(&[&[0.0]]));
        let mut b = ParamStore::new();
        b.register("w", Matrix::from_rows(&[&[10.0]]));
        a.soft_update_from(&b, 0.1);
        assert!((a.value(ida).get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn try_copy_rejects_mismatches_without_mutating() {
        let mut dst = ParamStore::new();
        let id = dst.register("w", Matrix::from_rows(&[&[1.0, 2.0]]));
        let mut same = ParamStore::new();
        same.register("w", Matrix::from_rows(&[&[9.0, 8.0]]));
        dst.try_copy_values_from(&same).unwrap();
        assert_eq!(dst.value(id), Matrix::from_rows(&[&[9.0, 8.0]]));

        let mut wrong_shape = ParamStore::new();
        wrong_shape.register("w", Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let err = dst.try_copy_values_from(&wrong_shape).unwrap_err();
        assert!(err.contains("shape mismatch"), "{err}");
        assert_eq!(
            dst.value(id),
            Matrix::from_rows(&[&[9.0, 8.0]]),
            "untouched"
        );

        let mut wrong_count = ParamStore::new();
        wrong_count.register("w", Matrix::from_rows(&[&[1.0, 2.0]]));
        wrong_count.register("b", Matrix::from_rows(&[&[0.0]]));
        let err = dst.try_copy_values_from(&wrong_count).unwrap_err();
        assert!(err.contains("count mismatch"), "{err}");
    }

    #[test]
    fn json_roundtrip() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut store = ParamStore::new();
        store.register_xavier("w1", 3, 4, &mut rng);
        store.register_zeros("b1", 1, 4);
        let json = store.to_json();
        let restored = ParamStore::from_json(&json).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.get(ParamId(0)).value, store.get(ParamId(0)).value);
    }
}
