//! Divergence protection for gradient-based training.
//!
//! Poisoned transitions (NaN rewards, corrupted observations) propagate
//! through the Bellman target into the loss and, if stepped on, destroy
//! every parameter in one update. The guard layer makes training loops
//! skip such updates instead:
//!
//! * [`finite_guard`] — stateless per-step check: non-finite loss or
//!   gradients discard the step (and bump `nn.nonfinite.*` counters),
//!   finite ones are norm-clipped and admitted.
//! * [`DivergenceGuard`] — adds a periodic known-good snapshot of the
//!   [`ParamStore`]; after `patience` consecutive bad steps the parameter
//!   values are rolled back to the snapshot, so a run poisoned *after* a
//!   step (e.g. via `soft_update_from` of corrupted values) still recovers.

use crate::params::ParamStore;
use telemetry::keys;

/// Checks one training step for non-finite loss or gradients.
///
/// Returns `true` when the step is safe to apply; gradients have then been
/// clipped to `max_grad_norm`. Returns `false` when the step must be
/// skipped; gradients have then been zeroed so a later optimizer call is a
/// no-op even if the caller forgets to branch.
pub fn finite_guard(loss: f32, store: &mut ParamStore, max_grad_norm: f32) -> bool {
    if !loss.is_finite() {
        telemetry::counter_add(keys::NN_NONFINITE_LOSS, 1);
        telemetry::counter_add(keys::NN_NONFINITE_SKIPPED, 1);
        telemetry::flight_record(keys::NN_NONFINITE_LOSS, f64::from(loss));
        store.zero_grad();
        return false;
    }
    if !store.grads_are_finite() {
        telemetry::counter_add(keys::NN_NONFINITE_GRAD, 1);
        telemetry::counter_add(keys::NN_NONFINITE_SKIPPED, 1);
        telemetry::flight_record(keys::NN_NONFINITE_GRAD, f64::from(loss));
        store.zero_grad();
        return false;
    }
    store.clip_grad_norm(max_grad_norm);
    true
}

/// Stateful divergence guard: admits or rejects each update and restores
/// the last known-good parameter snapshot after a run of rejections.
#[derive(Clone, Debug)]
pub struct DivergenceGuard {
    max_grad_norm: f32,
    patience: u32,
    snapshot_every: u32,
    streak: u32,
    good_steps: u32,
    snapshot: Option<ParamStore>,
}

impl DivergenceGuard {
    /// How many admitted steps pass between snapshot refreshes.
    const SNAPSHOT_EVERY: u32 = 32;

    /// `max_grad_norm` clips admitted gradients; `patience` is the number
    /// of consecutive rejected steps that triggers a rollback.
    pub fn new(max_grad_norm: f32, patience: u32) -> Self {
        Self {
            max_grad_norm,
            patience: patience.max(1),
            snapshot_every: Self::SNAPSHOT_EVERY,
            streak: 0,
            good_steps: 0,
            snapshot: None,
        }
    }

    /// Judges one step. On `true` the caller should apply its optimizer
    /// step (gradients are clipped); on `false` the step has been skipped,
    /// gradients zeroed, and — after `patience` consecutive failures — the
    /// parameter values rolled back to the last snapshot.
    ///
    /// Optimizer moments are never poisoned by skipped steps (the step is
    /// not taken), so only parameter values are snapshotted.
    pub fn admit(&mut self, loss: f32, store: &mut ParamStore) -> bool {
        if finite_guard(loss, store, self.max_grad_norm) {
            if self.snapshot.is_none() || self.good_steps % self.snapshot_every == 0 {
                self.snapshot = Some(store.clone());
            }
            self.good_steps = self.good_steps.wrapping_add(1);
            self.streak = 0;
            return true;
        }
        self.streak += 1;
        if self.streak >= self.patience {
            if let Some(snapshot) = &self.snapshot {
                store.copy_values_from(snapshot);
                telemetry::counter_add(keys::NN_NONFINITE_RESTORED, 1);
                // A rollback is the divergence post-mortem moment: dump the
                // ring of rejected-step events that led here.
                telemetry::flight_record(keys::FLIGHT_NONFINITE_RESTORE, f64::from(self.patience));
                telemetry::flight_dump(keys::FLIGHT_NONFINITE_RESTORE);
            }
            self.streak = 0;
        }
        false
    }

    /// Consecutive rejected steps since the last admitted one.
    pub fn streak(&self) -> u32 {
        self.streak
    }

    /// Whether a known-good snapshot is held.
    pub fn has_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn store_with(value: f32) -> ParamStore {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::from_rows(&[&[value, value]]));
        store.accumulate_grad(id, &Matrix::from_rows(&[&[1.0, -1.0]]));
        store
    }

    #[test]
    fn finite_step_is_admitted_and_clipped() {
        let mut store = store_with(0.5);
        assert!(finite_guard(1.0, &mut store, 0.1));
        assert!(store.grad_norm() <= 0.1 + 1e-6);
    }

    #[test]
    fn nan_loss_is_rejected_and_grads_zeroed() {
        let mut store = store_with(0.5);
        assert!(!finite_guard(f32::NAN, &mut store, 10.0));
        assert_eq!(store.grad_norm(), 0.0);
    }

    #[test]
    fn nonfinite_grad_is_rejected() {
        let mut store = ParamStore::new();
        let id = store.register_zeros("w", 1, 2);
        store.accumulate_grad(id, &Matrix::from_rows(&[&[f32::INFINITY, 0.0]]));
        assert!(!finite_guard(1.0, &mut store, 10.0));
        assert_eq!(store.grad_norm(), 0.0);
    }

    #[test]
    fn rollback_after_patience_restores_snapshot() {
        let mut guard = DivergenceGuard::new(10.0, 3);
        let mut store = store_with(0.5);
        assert!(guard.admit(1.0, &mut store), "good step seeds the snapshot");

        // Poison the values (as a corrupted soft update would).
        for p in store.iter_mut() {
            for v in p.value.data_mut() {
                *v = f32::NAN;
            }
        }
        assert!(!store.values_are_finite());

        for k in 0..3 {
            assert!(!guard.admit(f32::NAN, &mut store), "bad step {k}");
        }
        assert!(
            store.values_are_finite(),
            "patience exhausted → snapshot restored"
        );
        assert_eq!(guard.streak(), 0, "streak resets after rollback");
    }

    #[test]
    fn good_step_resets_streak() {
        let mut guard = DivergenceGuard::new(10.0, 5);
        let mut store = store_with(0.5);
        assert!(guard.admit(1.0, &mut store));
        let _ = guard.admit(f32::NAN, &mut store);
        let _ = guard.admit(f32::NAN, &mut store);
        assert_eq!(guard.streak(), 2);
        store.zero_grad();
        assert!(guard.admit(0.5, &mut store));
        assert_eq!(guard.streak(), 0);
    }

    #[test]
    fn counters_record_skips() {
        let was = telemetry::set_enabled(true);
        let before = telemetry::counter_value("nn.nonfinite.skipped");
        let mut store = store_with(0.5);
        let _ = finite_guard(f32::NAN, &mut store, 10.0);
        assert!(telemetry::counter_value("nn.nonfinite.skipped") > before);
        telemetry::set_enabled(was);
    }
}
