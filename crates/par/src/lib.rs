//! # par — deterministic parallel execution for the HEAD stack
//!
//! A zero-dependency scoped worker pool built on `std::thread` and
//! channels, designed around one contract: **parallel output is
//! byte-identical to serial output**. Three mechanisms enforce it:
//!
//! * **Ordered reduction** — [`Pool::try_map`] hands each item an index at
//!   submission time and merges results by that index, so the caller sees
//!   results in submission order no matter which worker finished first.
//! * **Per-item seed streams** — [`stream_seed`] derives an independent
//!   RNG seed from `(base, item_index)`, never from the worker id, so the
//!   schedule cannot leak into any random draw.
//! * **Unchanged arithmetic** — the pool only partitions *whole items*;
//!   callers keep their serial per-item code path, so floating-point
//!   accumulation order inside an item is untouched. Cross-item folds must
//!   run over the ordered result vector (see `DESIGN.md` §Determinism).
//!
//! Worker panics are caught and surfaced as [`PoolError`] instead of
//! aborting the process, and the pool is a cheap reusable policy object:
//! threads are scoped per [`Pool::try_map`] call (`std::thread::scope`),
//! which keeps the crate free of `unsafe` under the workspace-wide
//! `unsafe_code = "forbid"`.
//!
//! The process-global thread count ([`set_threads`] / [`threads`]) is what
//! `nn`'s auto-dispatching kernels and the episode fan-out consult; bench
//! binaries set it from `--threads`.

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod checksum;
mod pool;
mod seed;

pub use checksum::{checksum_f32, checksum_f64, Checksum};
pub use pool::{Pool, PoolError};
pub use seed::stream_seed;

use std::sync::atomic::{AtomicUsize, Ordering};

static THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-global worker count consulted by [`pool`] and by the
/// auto-dispatching kernels in `nn`. Values below 1 are clamped to 1
/// (serial). Returns the previous setting.
pub fn set_threads(n: usize) -> usize {
    let n = n.max(1);
    telemetry::gauge_set(telemetry::keys::PAR_THREADS, n as f64);
    telemetry::gauge_set(
        telemetry::keys::PAR_EFFECTIVE_THREADS,
        n.min(hardware_threads()) as f64,
    );
    THREADS.swap(n, Ordering::Relaxed)
}

/// The process-global worker count (1 = serial, the default).
#[inline]
pub fn threads() -> usize {
    THREADS.load(Ordering::Relaxed)
}

/// Number of hardware execution units actually available to this process
/// (`std::thread::available_parallelism`), cached after the first query.
///
/// Requesting more workers than cores never speeds up a compute-bound
/// kernel — the extra threads only time-slice — so the auto-dispatch
/// heuristics cap their decisions at this value via
/// [`effective_threads`]. Falls back to 1 when the platform cannot
/// report a count.
pub fn hardware_threads() -> usize {
    static HARDWARE: AtomicUsize = AtomicUsize::new(0);
    let cached = HARDWARE.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::thread::available_parallelism().map_or(1, |n| n.get());
    telemetry::gauge_set(telemetry::keys::PAR_HARDWARE_THREADS, n as f64);
    HARDWARE.store(n, Ordering::Relaxed);
    n
}

/// The worker count auto-dispatch should actually plan for: the requested
/// [`threads`] capped by [`hardware_threads`]. Explicitly constructed
/// pools ([`Pool::new`]) are *not* capped — forced-parallel benchmark
/// legs and determinism tests deliberately oversubscribe — but
/// work-stealing heuristics that pick between serial and parallel paths
/// must consult this so the parallel path is never chosen on hardware
/// that cannot run it concurrently.
#[inline]
pub fn effective_threads() -> usize {
    threads().min(hardware_threads())
}

/// A [`Pool`] sized by the process-global [`threads`] setting.
#[inline]
pub fn pool() -> Pool {
    Pool::new(threads())
}
