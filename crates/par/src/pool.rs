//! The scoped worker pool.
//!
//! [`Pool`] is a reusable *policy* object (just a thread count): each
//! [`Pool::try_map`] call spawns scoped workers (`std::thread::scope`),
//! drains a shared work queue, and merges results **by submission index**.
//! Scoped threads let workers borrow the caller's closure and data without
//! `'static` bounds or `unsafe`, and guarantee every worker has joined
//! before the call returns — no detached threads, no leaked state.
//!
//! Workers claim items dynamically (an index-stamped queue behind a
//! mutex), so load imbalance costs idle time, never correctness: the
//! index assigned at submission decides where a result lands and which
//! seed stream ([`crate::stream_seed`]) the item may draw from.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex};
use std::thread;
use telemetry::keys;

/// A worker panicked while processing an item.
///
/// The pool catches worker panics (`catch_unwind`) and reports the one
/// with the **lowest item index** — deterministic even when several items
/// panic in the same call — instead of aborting the process. The
/// remaining workers finish draining the queue before this is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Submission index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for PoolError {}

/// A deterministic map-over-items worker pool. See the crate docs for the
/// byte-identity contract.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool running `threads` workers per call (clamped to at least 1;
    /// 1 means the serial in-line path, no threads spawned).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results in **submission order**.
    ///
    /// `f` receives `(index, item)`; the index is the item's position in
    /// `items` and is the only scheduling-independent identity a job has —
    /// derive any per-item seed from it, never from the worker.
    ///
    /// A panic inside `f` (on any path, serial included) is caught and
    /// surfaced as `Err(`[`PoolError`]`)`; already-claimed items still run
    /// to completion first.
    pub fn try_map<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, PoolError>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        telemetry::counter_add(keys::PAR_RUNS, 1);
        telemetry::counter_add(keys::PAR_JOBS, n as u64);
        let workers = self.threads.min(n);
        if workers <= 1 {
            let mut out = Vec::with_capacity(n);
            for (i, item) in items.into_iter().enumerate() {
                out.push(run_item(&f, i, item)?);
            }
            return Ok(out);
        }

        let queue = Mutex::new(items.into_iter().enumerate());
        let (tx, rx) = mpsc::channel::<(usize, Result<R, PoolError>)>();
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(n, || None);
        let mut failures: Vec<PoolError> = Vec::new();
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let queue = &queue;
                let f = &f;
                scope.spawn(move || loop {
                    // The lock only guards the claim; `f` runs outside it.
                    let claimed = match queue.lock() {
                        Ok(mut q) => q.next(),
                        Err(poisoned) => poisoned.into_inner().next(),
                    };
                    let Some((i, item)) = claimed else { break };
                    if tx.send((i, run_item(f, i, item))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Ordered reduction: completion order is scheduling noise; the
            // submission index decides where a result lands.
            for (i, res) in rx {
                match res {
                    Ok(r) => {
                        if let Some(slot) = slots.get_mut(i) {
                            *slot = Some(r);
                        }
                    }
                    Err(e) => failures.push(e),
                }
            }
        });
        if let Some(first) = failures.into_iter().min_by_key(|e| e.index) {
            return Err(first);
        }
        let mut out = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(r) => out.push(r),
                None => {
                    return Err(PoolError {
                        index: i,
                        message: "worker delivered no result".to_string(),
                    })
                }
            }
        }
        Ok(out)
    }
}

fn run_item<T, R, F>(f: &F, index: usize, item: T) -> Result<R, PoolError>
where
    F: Fn(usize, T) -> R,
{
    match catch_unwind(AssertUnwindSafe(|| f(index, item))) {
        Ok(r) => Ok(r),
        Err(payload) => {
            telemetry::counter_add(keys::PAR_WORKER_PANICS, 1);
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(PoolError { index, message })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream_seed;

    #[test]
    fn pool_is_reusable_across_calls() {
        let pool = Pool::new(4);
        let a = pool.try_map((0..32).collect(), |_, x: u32| x * 2).unwrap();
        let b = pool.try_map((0..8).collect(), |_, x: u32| x + 1).unwrap();
        assert_eq!(a, (0..32).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(b, (1..9).collect::<Vec<_>>());
    }

    #[test]
    fn reduction_is_in_submission_order_despite_skewed_finish_times() {
        // Early items sleep longest, so completion order is roughly the
        // reverse of submission order — the merge must undo that.
        let pool = Pool::new(4);
        let out = pool
            .try_map((0..24u64).collect(), |i, x| {
                std::thread::sleep(std::time::Duration::from_millis(24 - i as u64));
                (i, x * x)
            })
            .unwrap();
        let expected: Vec<(usize, u64)> = (0..24u64).map(|x| (x as usize, x * x)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn panic_in_worker_surfaces_as_err_not_abort() {
        let pool = Pool::new(3);
        let err = pool
            .try_map((0..16).collect(), |_, x: u32| {
                assert!(x != 11, "boom at {x}");
                x
            })
            .unwrap_err();
        assert_eq!(err.index, 11);
        assert!(err.message.contains("boom at 11"), "{}", err.message);
        // The pool (and the process) survive; the next call succeeds.
        let ok = pool.try_map(vec![1, 2, 3], |_, x: u32| x).unwrap();
        assert_eq!(ok, vec![1, 2, 3]);
    }

    #[test]
    fn earliest_panic_index_wins_deterministically() {
        let pool = Pool::new(4);
        for _ in 0..8 {
            let err = pool
                .try_map((0..16).collect(), |_, x: u32| {
                    assert!(x % 5 != 2, "multi-panic");
                    x
                })
                .unwrap_err();
            assert_eq!(err.index, 2, "lowest panicking index must be reported");
        }
    }

    #[test]
    fn serial_path_catches_panics_with_same_semantics() {
        let pool = Pool::new(1);
        let err = pool
            .try_map(vec![0u32, 1, 2], |_, x| {
                assert!(x != 1, "serial boom");
                x
            })
            .unwrap_err();
        assert_eq!(err.index, 1);
    }

    #[test]
    fn per_item_seed_streams_are_schedule_independent() {
        // The same seeded computation must produce bit-identical output on
        // 1 worker and on 4 — per-item streams derive from the submission
        // index, never the worker.
        let job = |i: usize, base: u64| {
            let mut z = stream_seed(base, i as u64);
            let mut acc = 0u64;
            for _ in 0..100 {
                z = z
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                acc ^= z;
            }
            acc
        };
        let items: Vec<u64> = vec![9; 64];
        let serial = Pool::new(1).try_map(items.clone(), job).unwrap();
        let parallel = Pool::new(4).try_map(items, job).unwrap();
        assert_eq!(serial, parallel);
        // And the streams really are independent: all distinct.
        let uniq: std::collections::BTreeSet<u64> = serial.iter().copied().collect();
        assert_eq!(uniq.len(), serial.len());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(8);
        let empty: Vec<u32> = pool.try_map(Vec::new(), |_, x: u32| x).unwrap();
        assert!(empty.is_empty());
        let one = pool.try_map(vec![5u32], |i, x| (i, x)).unwrap();
        assert_eq!(one, vec![(0, 5)]);
    }
}
