//! Bit-exact checksums for verifying the determinism contract.
//!
//! The perf harness and the CI perf-smoke stage prove "parallel ==
//! serial" by hashing the *bit patterns* of result buffers: two runs that
//! differ in even one ULP of one element produce different checksums.
//! FNV-1a over little-endian bytes — no dependency, stable across
//! platforms of the same float format.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a checksum over raw bit patterns.
#[derive(Clone, Copy, Debug)]
pub struct Checksum(u64);

impl Default for Checksum {
    fn default() -> Self {
        Self::new()
    }
}

impl Checksum {
    /// A fresh checksum at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Folds raw bytes into the checksum.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds an `f32` by bit pattern (NaN-safe: the exact payload hashes).
    pub fn push_f32(&mut self, v: f32) {
        self.push_bytes(&v.to_bits().to_le_bytes());
    }

    /// Folds an `f64` by bit pattern.
    pub fn push_f64(&mut self, v: f64) {
        self.push_bytes(&v.to_bits().to_le_bytes());
    }

    /// Folds a `u64` (e.g. a count that must also agree across runs).
    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Checksums an `f32` slice by bit pattern.
#[must_use]
pub fn checksum_f32(data: &[f32]) -> u64 {
    let mut c = Checksum::new();
    for &v in data {
        c.push_f32(v);
    }
    c.finish()
}

/// Checksums an `f64` slice by bit pattern.
#[must_use]
pub fn checksum_f64(data: &[f64]) -> u64 {
    let mut c = Checksum::new();
    for &v in data {
        c.push_f64(v);
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_ulp_changes_the_digest() {
        let a = [1.0f32, 2.0, 3.0];
        let mut b = a;
        b[2] = f32::from_bits(b[2].to_bits() + 1);
        assert_ne!(checksum_f32(&a), checksum_f32(&b));
    }

    #[test]
    fn order_sensitive_and_nan_payload_sensitive() {
        assert_ne!(checksum_f32(&[1.0, 2.0]), checksum_f32(&[2.0, 1.0]));
        let q = f32::from_bits(0x7fc0_0001);
        let r = f32::from_bits(0x7fc0_0002);
        assert!(q.is_nan() && r.is_nan());
        assert_ne!(checksum_f32(&[q]), checksum_f32(&[r]));
    }

    #[test]
    fn streaming_matches_oneshot() {
        let xs = [0.5f64, -0.25, 1e-300];
        let mut c = Checksum::new();
        for &x in &xs {
            c.push_f64(x);
        }
        assert_eq!(c.finish(), checksum_f64(&xs));
    }
}
