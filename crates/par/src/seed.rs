//! Per-item seed derivation.
//!
//! Every parallel job that needs randomness derives its seed from the run
//! base seed and the **item index** — never from the worker id or any
//! scheduling artifact — so the same items produce the same draws whether
//! they run serially, on 2 workers or on 16.

/// Derives the RNG seed for item `index` of a run seeded with `base`.
///
/// Two rounds of the SplitMix64 finalizer over `base + golden-ratio *
/// (index + 1)`: cheap, stateless, and avalanching, so neighbouring
/// indices yield statistically independent streams and `(base, index)`
/// pairs never collide in practice. `index` participates before the first
/// mix so `stream_seed(b, 0) != b` (the derived stream is distinct from
/// the base stream even for item 0).
#[must_use]
pub fn stream_seed(base: u64, index: u64) -> u64 {
    const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut z = base.wrapping_add(GOLDEN.wrapping_mul(index.wrapping_add(1)));
    for _ in 0..2 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

#[cfg(test)]
mod tests {
    use super::stream_seed;

    #[test]
    fn streams_are_distinct_and_stable() {
        let a = stream_seed(7, 0);
        let b = stream_seed(7, 1);
        let c = stream_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, 7, "derived stream must differ from the base seed");
        assert_eq!(a, stream_seed(7, 0), "derivation is a pure function");
    }

    #[test]
    fn no_collisions_over_a_wide_index_range() {
        let mut seen = std::collections::BTreeSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for idx in 0..512u64 {
                assert!(
                    seen.insert(stream_seed(base, idx)),
                    "collision at base={base} idx={idx}"
                );
            }
        }
    }
}
