//! # dataset — the synthetic REAL corpus
//!
//! The paper trains its state predictors on **REAL**, a merge of the NGSIM
//! US-101 and I-80 recordings: conventional-vehicle trajectories on a
//! 1.14 km six-lane highway segment, resampled to 0.5 s. Those recordings
//! are not redistributable here, so this crate generates the closest
//! synthetic equivalent (see DESIGN.md §3): trajectories produced by the
//! `traffic-sim` substrate with *heterogeneous* driver parameters on a road
//! of the same shape. Like NGSIM, the corpus contains naturalistic
//! car-following and lane-change interactions; like the paper, samples are
//! extracted ego-centrically (a randomly chosen conventional vehicle plays
//! the observer) through the simulated sensor, including its range and
//! occlusion limitations, and split 4:1 into train/test.

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use perception::{relative_truth, BuilderConfig, GraphBuilder, RawState, TrainSample, NUM_TARGETS};
use rand::seq::{IndexedRandom, SliceRandom};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use sensor::{sense, SensorConfig, SensorHistory};
use serde::{Deserialize, Serialize};
use traffic_sim::{SimConfig, Simulation, VehicleId};

/// Corpus-generation options.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Road length, m (the NGSIM segment is 1.14 km).
    pub road_len: f64,
    /// Number of lanes.
    pub lanes: usize,
    /// Traffic density over the whole road, veh/km.
    pub density_per_km: f64,
    /// Warm-up steps before recording starts.
    pub warmup_steps: usize,
    /// Number of recording windows.
    pub windows: usize,
    /// Ego perspectives extracted per window.
    pub egos_per_window: usize,
    /// Plain simulation steps between windows (decorrelates samples).
    pub gap_steps: usize,
    /// History depth `z`.
    pub z: usize,
    /// Sensor detection radius, m.
    pub sensor_range: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            road_len: 1140.0,
            lanes: 6,
            density_per_km: 180.0,
            warmup_steps: 120,
            windows: 100,
            egos_per_window: 4,
            gap_steps: 3,
            z: 5,
            sensor_range: 100.0,
            seed: 0,
        }
    }
}

/// A generated corpus, already split 4:1 (the paper's ratio).
#[derive(Clone, Debug)]
pub struct RealCorpus {
    /// Training samples.
    pub train: Vec<TrainSample>,
    /// Held-out test samples.
    pub test: Vec<TrainSample>,
}

impl RealCorpus {
    /// Generates the corpus.
    pub fn generate(cfg: &CorpusConfig) -> Self {
        let samples = generate_samples(cfg);
        split(samples, 0.8, cfg.seed ^ 0x5eed)
    }
}

/// Generates raw (unsplit) samples.
pub fn generate_samples(cfg: &CorpusConfig) -> Vec<TrainSample> {
    let sim_cfg = SimConfig {
        lanes: cfg.lanes,
        road_len: cfg.road_len,
        density_per_km: cfg.density_per_km,
        seed: cfg.seed,
        ..SimConfig::default()
    };
    let dt = sim_cfg.dt;
    let lane_width = sim_cfg.lane_width;
    let builder = GraphBuilder::new(BuilderConfig {
        lanes: cfg.lanes,
        lane_width,
        range: cfg.sensor_range,
        dt,
        z: cfg.z,
        phantoms_enabled: true,
    });
    let sensor_cfg = SensorConfig {
        range: cfg.sensor_range,
        ..SensorConfig::default()
    };

    let mut sim = Simulation::new(sim_cfg);
    sim.populate();
    sim.warm_up(cfg.warmup_steps);

    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed.wrapping_mul(0x9e37_79b9));
    let mut out = Vec::with_capacity(cfg.windows * cfg.egos_per_window);

    for _ in 0..cfg.windows {
        // Pick ego perspectives away from the road ends so neighbourhoods
        // are well populated throughout the window.
        let candidates: Vec<VehicleId> = sim
            .vehicles()
            .filter(|v| v.pos > 150.0 && v.pos < cfg.road_len - 150.0)
            .map(|v| v.id)
            .collect();
        if candidates.is_empty() {
            sim.warm_up(cfg.gap_steps.max(1));
            continue;
        }
        let egos: Vec<VehicleId> = candidates
            .choose_multiple(&mut rng, cfg.egos_per_window.min(candidates.len()))
            .copied()
            .collect();

        let mut histories: Vec<(VehicleId, SensorHistory)> = egos
            .iter()
            .map(|&id| (id, SensorHistory::new(cfg.z)))
            .collect();

        // Record z frames.
        let mut alive = true;
        for _ in 0..cfg.z {
            for (id, history) in &mut histories {
                if sim.get(*id).is_some() {
                    history.push(sense(&sim, *id, &sensor_cfg));
                } else {
                    alive = false;
                }
            }
            sim.step();
            if !alive {
                break;
            }
        }
        if !alive {
            continue;
        }

        // Build graphs at t, then read the t+1 ground truth directly from
        // the simulator (which, unlike the sensor, always knows the truth).
        for (id, history) in &histories {
            if !history.is_full() || sim.get(*id).is_none() {
                continue;
            }
            let graph = builder.build(history);
            let ego_now = graph.ego_latest;
            let mut truth = [[0.0; 3]; NUM_TARGETS];
            let mut complete = true;
            for (i, t) in truth.iter_mut().enumerate() {
                if let Some(target_id) = graph.target_id(i) {
                    match sim.get(target_id) {
                        Some(v) => {
                            let next = RawState {
                                lat: v.lane as f64 + 1.0,
                                lon: v.pos,
                                vel: v.vel,
                            };
                            *t = relative_truth(&next, &ego_now, lane_width);
                        }
                        None => {
                            // The target left the road between t and t+1 —
                            // the sample has no complete label.
                            complete = false;
                        }
                    }
                }
            }
            if complete {
                out.push(TrainSample { graph, truth });
            }
        }

        sim.warm_up(cfg.gap_steps);
    }
    out
}

/// Splits samples into (train, test) with `train_fraction` in train.
pub fn split(mut samples: Vec<TrainSample>, train_fraction: f64, seed: u64) -> RealCorpus {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    samples.shuffle(&mut rng);
    let cut = ((samples.len() as f64) * train_fraction).round() as usize;
    let test = samples.split_off(cut.min(samples.len()));
    RealCorpus {
        train: samples,
        test,
    }
}

/// Quick corpus statistics used in reports and sanity tests.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Total samples.
    pub samples: usize,
    /// Mean real (non-phantom) targets per sample.
    pub mean_real_targets: f64,
    /// Fraction of samples containing at least one phantom target.
    pub phantom_fraction: f64,
}

/// Computes [`CorpusStats`] for a sample set.
pub fn stats(samples: &[TrainSample]) -> CorpusStats {
    if samples.is_empty() {
        return CorpusStats::default();
    }
    let mut real = 0usize;
    let mut with_phantom = 0usize;
    for s in samples {
        let r = (0..NUM_TARGETS)
            .filter(|&i| !s.graph.target_is_phantom(i))
            .count();
        real += r;
        if r < NUM_TARGETS {
            with_phantom += 1;
        }
    }
    CorpusStats {
        samples: samples.len(),
        mean_real_targets: real as f64 / samples.len() as f64,
        phantom_fraction: with_phantom as f64 / samples.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> CorpusConfig {
        CorpusConfig {
            windows: 12,
            egos_per_window: 3,
            warmup_steps: 60,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn generates_labelled_samples() {
        let samples = generate_samples(&small_cfg(1));
        assert!(
            samples.len() >= 20,
            "expected a usable corpus, got {}",
            samples.len()
        );
        for s in &samples {
            assert_eq!(s.graph.depth(), 5);
            for i in 0..NUM_TARGETS {
                if !s.graph.target_is_phantom(i) {
                    // Real targets must have plausible labels: within sensor
                    // range plus one step of motion.
                    assert!(s.truth[i][1].abs() < 150.0, "d_lon label {}", s.truth[i][1]);
                    assert!(s.truth[i][2].abs() < 30.0, "v_rel label {}", s.truth[i][2]);
                }
            }
        }
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = generate_samples(&small_cfg(7));
        let b = generate_samples(&small_cfg(7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.truth, y.truth);
        }
        let c = generate_samples(&small_cfg(8));
        assert!(a.len() != c.len() || a.iter().zip(&c).any(|(x, y)| x.truth != y.truth));
    }

    #[test]
    fn split_ratio_respected() {
        let samples = generate_samples(&small_cfg(2));
        let n = samples.len();
        let corpus = split(samples, 0.8, 3);
        assert_eq!(corpus.train.len() + corpus.test.len(), n);
        let ratio = corpus.train.len() as f64 / n as f64;
        assert!((ratio - 0.8).abs() < 0.05, "split ratio {ratio}");
    }

    #[test]
    fn stats_reflect_sensor_limits() {
        let samples = generate_samples(&small_cfg(4));
        let st = stats(&samples);
        assert_eq!(st.samples, samples.len());
        assert!(
            st.mean_real_targets > 1.0,
            "dense traffic should surround egos"
        );
        assert!(st.mean_real_targets <= 6.0);
        // With occlusion and range limits, some neighbourhoods are always
        // incomplete.
        assert!(st.phantom_fraction > 0.0);
    }
}
