//! # serve — graceful-degradation serving layer for HEAD
//!
//! Wraps a trained decision agent behind `headd`, a single-threaded daemon
//! speaking a length-prefixed JSON protocol over stdin/stdout or a Unix
//! socket. Every observation request carries a deadline budget and flows
//! through three robustness layers before an answer leaves the process:
//!
//! 1. **Admission** ([`Admission`]) — burst requests pass a bounded queue;
//!    overflow is shed with an explicit, typed response that still carries
//!    the rule-based safe action, never silently dropped.
//! 2. **Degradation ladder** ([`DecisionLadder`]) — mirrors the semantics
//!    of `perception::FallbackGuard`: full agent inference while outputs
//!    are fresh and finite, last-valid-action replay for a bounded number
//!    of stale steps, then a rule-based decelerate-and-hold fallback.
//!    Non-finite model output is treated exactly like `nn`'s divergence
//!    guards treat a poisoned gradient step: the result is discarded and
//!    the last known-good state serves instead.
//! 3. **Hot reload** ([`Service::reload`]) — atomically swaps weights from
//!    a [`head::Checkpoint`] directory with validation-forward semantics:
//!    shape-mismatched or non-finite weights roll back to the running set.
//!    The daemon itself is crash-only; a restart resumes from the last
//!    good checkpoint generation and, for healthy (full-tier) streams, is
//!    byte-identical to a run that was never killed.
//!
//! Everything is deterministic by construction: greedy inference consumes
//! no randomness, responses carry no wall-clock fields, and the only
//! sanctioned timer is `telemetry::Stopwatch` feeding latency histograms
//! and the deadline watchdog.

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod admission;
mod ladder;
mod protocol;
mod service;

pub use admission::{Admission, AdmissionOutcome, DEFAULT_CAPACITY};
pub use ladder::{safe_hold, DecisionLadder, ServeTier, REPLAY_LIMIT, SAFE_DECEL};
pub use protocol::{
    read_frame, state_from_json, state_to_json, write_frame, Decision, Request, MAX_FRAME_BYTES,
};
pub use service::{state_is_finite, Service, ServiceConfig};
