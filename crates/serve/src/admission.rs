//! Admission control: a bounded queue with explicit load shedding.
//!
//! `headd` is single-threaded, so admission is applied per burst: a batch
//! request offering more observations than the queue capacity has its tail
//! shed. Shedding is never silent — every shed slot is answered with a
//! typed response carrying the rule-based safe action, counted under
//! `serve.shed`, and recorded into the flight ring so the post-mortem dump
//! shows the overload burst that preceded an incident.

use telemetry::keys;

/// Default bounded-queue capacity (observations per burst).
pub const DEFAULT_CAPACITY: usize = 32;

/// How a burst of offered requests was split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionOutcome {
    /// Requests admitted to full processing, in offer order.
    pub admitted: usize,
    /// Requests shed from the tail of the burst.
    pub shed: usize,
}

/// Bounded-queue admission controller.
#[derive(Clone, Debug)]
pub struct Admission {
    capacity: usize,
}

impl Admission {
    /// A controller admitting at most `capacity` requests per burst
    /// (clamped to at least 1 so single requests always pass).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
        }
    }

    /// The bounded-queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Splits a burst of `offered` requests into admitted head and shed
    /// tail, counting and flight-recording any shed.
    pub fn admit(&self, offered: usize) -> AdmissionOutcome {
        let admitted = offered.min(self.capacity);
        let shed = offered - admitted;
        if shed > 0 {
            telemetry::counter_add(keys::SERVE_SHED, shed as u64);
            telemetry::flight_record(keys::FLIGHT_SERVE_SHED, shed as f64);
            // A shed burst is a post-mortem moment: dump the ring so the
            // overload pattern that led here is preserved.
            let _ = telemetry::flight_dump(keys::FLIGHT_SERVE_SHED);
        }
        AdmissionOutcome { admitted, shed }
    }
}

impl Default for Admission {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_admits_everything() {
        let adm = Admission::new(8);
        assert_eq!(
            adm.admit(5),
            AdmissionOutcome {
                admitted: 5,
                shed: 0
            }
        );
    }

    #[test]
    fn overflow_sheds_the_tail() {
        let adm = Admission::new(8);
        assert_eq!(
            adm.admit(11),
            AdmissionOutcome {
                admitted: 8,
                shed: 3
            }
        );
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let adm = Admission::new(0);
        assert_eq!(adm.capacity(), 1);
        assert_eq!(
            adm.admit(1),
            AdmissionOutcome {
                admitted: 1,
                shed: 0
            }
        );
    }

    #[test]
    fn shed_bursts_are_counted() {
        let was = telemetry::set_enabled(true);
        let before = telemetry::counter_value(keys::SERVE_SHED);
        let _ = Admission::new(2).admit(7);
        assert_eq!(telemetry::counter_value(keys::SERVE_SHED), before + 5);
        telemetry::set_enabled(was);
    }
}
