//! The request-handling core behind `headd`.
//!
//! [`Service`] owns the decision agent, the admission controller, the
//! degradation ladder and the hot-reload machinery, and is transport
//! agnostic: [`Service::serve`] pumps frames from any `Read`/`Write` pair
//! (stdin/stdout or a Unix socket connection).
//!
//! Determinism contract: greedy inference (`explore = false`) consumes no
//! randomness and does not mutate weights, and responses carry no
//! wall-clock fields. A healthy (full-tier) response stream is therefore
//! a pure function of the weights and the request stream — the property
//! the crash-only restart test and the CI chaos soak assert byte-for-byte.
//! The only timing-sensitive behaviour is the deadline watchdog, which can
//! only *degrade* tiers, never change a full-tier answer.

use crate::admission::Admission;
use crate::ladder::{DecisionLadder, ServeTier};
use crate::protocol::{self, Decision, Request};
use decision::{Action, AgentConfig, AugmentedState, BpDqn, PamdpAgent};
use head::{Checkpoint, CheckpointSource};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use telemetry::{keys, Json, Stopwatch};

/// True when every slot of the augmented state is finite.
pub fn state_is_finite(state: &AugmentedState) -> bool {
    state
        .current
        .iter()
        .chain(state.future.iter())
        .all(|row| row.iter().all(|v| v.is_finite()))
}

/// How to build a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Agent architecture; must match the checkpoint being served.
    pub agent: AgentConfig,
    /// Admission capacity (observations per burst).
    pub capacity: usize,
    /// Checkpoint directory for initial weights and crash-only restart.
    /// `None` serves freshly initialised weights.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            agent: AgentConfig::default(),
            capacity: crate::admission::DEFAULT_CAPACITY,
            checkpoint_dir: None,
        }
    }
}

/// The serving core: agent + admission + ladder + reload.
pub struct Service {
    agent: Box<dyn PamdpAgent>,
    admission: Admission,
    ladder: DecisionLadder,
    last_tier: ServeTier,
    /// EWMA of observed full-inference cost, ms — the watchdog's estimate
    /// of whether a request's budget is already lost before starting.
    est_cost_ms: f64,
}

fn output_is_finite(accel: f64, params: &[f32; 6]) -> bool {
    accel.is_finite() && params.iter().all(|p| p.is_finite())
}

impl Service {
    /// Builds the service, loading weights from `cfg.checkpoint_dir` when
    /// one exists there (via the corruption-tolerant resilient loader).
    /// Returns which checkpoint generation supplied the weights, or `None`
    /// for fresh weights. Fails on shape-mismatched or non-finite weights
    /// — crash-only startup refuses to serve garbage.
    pub fn new(cfg: ServiceConfig) -> Result<(Service, Option<CheckpointSource>), String> {
        let mut agent: Box<dyn PamdpAgent> = Box::new(BpDqn::new(cfg.agent));
        let mut source = None;
        if let Some(dir) = &cfg.checkpoint_dir {
            if let Some((ckpt, src)) = Checkpoint::load_resilient(dir).map_err(|e| e.to_string())? {
                if let Some(json) = &ckpt.agent_json {
                    agent
                        .load_json(json)
                        .map_err(|e| format!("checkpoint weights rejected: {e}"))?;
                    if !agent.weights_are_finite() {
                        return Err("checkpoint weights are non-finite".to_string());
                    }
                    source = Some(src);
                }
            }
        }
        Ok((
            Service {
                agent,
                admission: Admission::new(cfg.capacity),
                ladder: DecisionLadder::new(),
                last_tier: ServeTier::Full,
                est_cost_ms: 0.0,
            },
            source,
        ))
    }

    /// Current ladder staleness (0 while serving full-tier).
    pub fn staleness(&self) -> u64 {
        self.ladder.staleness()
    }

    /// Answers one observation within `deadline_ms`.
    ///
    /// The watchdog is cooperative (the daemon is single-threaded, and
    /// threads outside `par` are forbidden): a request whose budget is
    /// already smaller than the estimated inference cost skips inference
    /// up front and walks the ladder; a request whose inference *measured*
    /// over budget is counted as a deadline miss. Non-finite input or
    /// output likewise withholds the fresh result from the ladder.
    pub fn decide(&mut self, state: &AugmentedState, deadline_ms: f64) -> Decision {
        telemetry::counter_add(keys::SERVE_REQUESTS, 1);
        let sw = Stopwatch::start();
        let fresh = if !state_is_finite(state) {
            telemetry::counter_add(keys::SERVE_NONFINITE, 1);
            None
        } else if deadline_ms <= self.est_cost_ms {
            telemetry::counter_add(keys::SERVE_DEADLINE_MISS, 1);
            None
        } else {
            let (action, params) = self.agent.act(state, false);
            if output_is_finite(action.accel, &params) {
                Some(action)
            } else {
                telemetry::counter_add(keys::SERVE_NONFINITE, 1);
                None
            }
        };
        let decision = self.resolve_tiered(fresh);

        let elapsed_ms = sw.elapsed().as_secs_f64() * 1e3;
        telemetry::histogram_record(keys::SERVE_LATENCY_MS, elapsed_ms);
        self.record_cost(elapsed_ms);
        if fresh.is_some() && elapsed_ms > deadline_ms {
            telemetry::counter_add(keys::SERVE_DEADLINE_MISS, 1);
        }

        decision
    }

    /// Answers a whole admitted batch within one shared `deadline_ms`.
    ///
    /// The agent sees one wide greedy pass ([`PamdpAgent::act_batch_greedy`])
    /// over every inferable state instead of per-state skinny passes; each
    /// row is bit-identical to [`Service::decide`] on that state, so the
    /// crash-only determinism contract is unchanged. Ladder resolution still
    /// walks the states **in request order** — staleness bookkeeping is
    /// sequential by design. The deadline watchdog preempts the whole batch
    /// up front when the *per-state* budget is already lost, and the EWMA
    /// cost estimate absorbs the batch's per-state mean.
    pub fn decide_batch(&mut self, states: &[AugmentedState], deadline_ms: f64) -> Vec<Decision> {
        let n = states.len();
        if n == 0 {
            return Vec::new();
        }
        telemetry::counter_add(keys::SERVE_REQUESTS, n as u64);
        let sw = Stopwatch::start();
        let preempted = deadline_ms <= self.est_cost_ms;

        let mut fresh: Vec<Option<Action>> = vec![None; n];
        let mut inferable: Vec<usize> = Vec::with_capacity(n);
        for (i, state) in states.iter().enumerate() {
            if !state_is_finite(state) {
                telemetry::counter_add(keys::SERVE_NONFINITE, 1);
            } else if preempted {
                telemetry::counter_add(keys::SERVE_DEADLINE_MISS, 1);
            } else {
                inferable.push(i);
            }
        }
        if !inferable.is_empty() {
            let refs: Vec<&AugmentedState> = inferable.iter().map(|&i| &states[i]).collect();
            let outputs = self.agent.act_batch_greedy(&refs);
            for (&i, (action, params)) in inferable.iter().zip(&outputs) {
                if output_is_finite(action.accel, params) {
                    fresh[i] = Some(*action);
                } else {
                    telemetry::counter_add(keys::SERVE_NONFINITE, 1);
                }
            }
        }
        let fresh_count = fresh.iter().flatten().count();
        let decisions: Vec<Decision> = fresh.into_iter().map(|f| self.resolve_tiered(f)).collect();

        let per_state_ms = sw.elapsed().as_secs_f64() * 1e3 / n as f64;
        for _ in 0..n {
            telemetry::histogram_record(keys::SERVE_LATENCY_MS, per_state_ms);
        }
        self.record_cost(per_state_ms);
        if fresh_count > 0 && per_state_ms > deadline_ms {
            telemetry::counter_add(keys::SERVE_DEADLINE_MISS, fresh_count as u64);
        }
        decisions
    }

    /// Walks the degradation ladder with an optional fresh full-tier
    /// answer and emits the tier-transition telemetry. Shared by the
    /// single-state and batched decision paths.
    fn resolve_tiered(&mut self, fresh: Option<Action>) -> Decision {
        let (action, tier) = self.ladder.resolve(fresh);
        if tier != ServeTier::Full {
            telemetry::counter_add(keys::SERVE_DEGRADED, 1);
        }
        if tier != self.last_tier {
            telemetry::flight_record(keys::FLIGHT_SERVE_DEGRADE, f64::from(tier.rank()));
            // Every ladder transition is dump-worthy: the ring shows what
            // the service was doing when it changed tiers.
            let _ = telemetry::flight_dump(keys::FLIGHT_SERVE_DEGRADE);
            self.last_tier = tier;
        }
        Decision {
            tier,
            behaviour: action.behaviour.index(),
            accel: action.accel,
            shed: false,
        }
    }

    /// Folds an observed per-request inference cost into the watchdog's
    /// EWMA estimate.
    fn record_cost(&mut self, elapsed_ms: f64) {
        self.est_cost_ms = if self.est_cost_ms > 0.0 {
            0.9 * self.est_cost_ms + 0.1 * elapsed_ms
        } else {
            elapsed_ms
        };
    }

    fn reload_inner(&mut self, dir: &Path) -> Result<CheckpointSource, String> {
        let (ckpt, source) = Checkpoint::load_resilient(dir)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("no checkpoint found in {}", dir.display()))?;
        let json = ckpt
            .agent_json
            .ok_or("checkpoint carries no agent weights")?;
        let backup = self.agent.save_json();
        self.agent
            .load_json(&json)
            .map_err(|e| format!("weights rejected: {e}"))?;
        // Validation-forward: the swapped-in weights must be finite and
        // must produce a finite decision on a probe state before the
        // reload is accepted; otherwise roll back to the running set.
        let probe_ok = self.agent.weights_are_finite() && {
            let (action, params) = self.agent.act(&AugmentedState::zeros(), false);
            output_is_finite(action.accel, &params)
        };
        if !probe_ok {
            // The backup came from this very agent, so it always re-loads.
            let _ = self.agent.load_json(&backup);
            return Err("weights rejected: non-finite after load, rolled back".to_string());
        }
        Ok(source)
    }

    /// Atomically swaps weights from a checkpoint directory. On any
    /// failure — unreadable or corrupt checkpoint, shape mismatch,
    /// non-finite weights — the running weights stay in service and the
    /// rejection is counted and flight-dumped.
    pub fn reload(&mut self, dir: &Path) -> Result<CheckpointSource, String> {
        match self.reload_inner(dir) {
            Ok(source) => {
                telemetry::counter_add(keys::SERVE_RELOAD_OK, 1);
                Ok(source)
            }
            Err(e) => {
                telemetry::counter_add(keys::SERVE_RELOAD_REJECTED, 1);
                telemetry::flight_record(keys::FLIGHT_SERVE_ROLLBACK, 1.0);
                let _ = telemetry::flight_dump(keys::FLIGHT_SERVE_ROLLBACK);
                Err(e)
            }
        }
    }

    /// Snapshot of every `serve.*` counter.
    pub fn stats(&self) -> Json {
        let counters = [
            keys::SERVE_REQUESTS,
            keys::SERVE_SHED,
            keys::SERVE_DEGRADED,
            keys::SERVE_TIER_REPLAY,
            keys::SERVE_TIER_SAFE,
            keys::SERVE_NONFINITE,
            keys::SERVE_DEADLINE_MISS,
            keys::SERVE_RELOAD_OK,
            keys::SERVE_RELOAD_REJECTED,
        ];
        Json::Obj(
            counters
                .iter()
                .map(|k| (k.to_string(), Json::from(telemetry::counter_value(k))))
                .collect(),
        )
    }

    /// Handles one request payload. Returns the response payload and
    /// whether the serve loop should stop (`shutdown`). Every frame gets
    /// an answer — malformed ones a typed error.
    pub fn handle(&mut self, text: &str) -> (String, bool) {
        let req = match Request::parse(text) {
            Ok(req) => req,
            Err(e) => return (protocol::error_response(0, &e), false),
        };
        match req {
            Request::Decide {
                id,
                deadline_ms,
                state,
            } => (
                protocol::decide_response(id, self.decide(&state, deadline_ms)),
                false,
            ),
            Request::Batch {
                id,
                deadline_ms,
                states,
            } => {
                let outcome = self.admission.admit(states.len());
                let mut results = self.decide_batch(&states[..outcome.admitted], deadline_ms);
                for _ in 0..outcome.shed {
                    telemetry::counter_add(keys::SERVE_REQUESTS, 1);
                    results.push(Decision::shed());
                }
                (protocol::batch_response(id, &results), false)
            }
            Request::Reload { id, dir } => match self.reload(&dir) {
                Ok(source) => (protocol::reload_response(id, source.as_str()), false),
                Err(e) => (protocol::error_response(id, &e), false),
            },
            Request::Stats { id } => (protocol::stats_response(id, self.stats()), false),
            Request::Shutdown { id } => (protocol::shutdown_response(id), true),
        }
    }

    /// Pumps frames until EOF or a `shutdown` request. Returns `true` when
    /// the loop ended on `shutdown` (the daemon should exit), `false` on a
    /// clean EOF (a socket client disconnected).
    pub fn serve(&mut self, r: &mut impl Read, w: &mut impl Write) -> io::Result<bool> {
        while let Some(text) = protocol::read_frame(r)? {
            let (response, shutdown) = self.handle(&text);
            protocol::write_frame(w, &response)?;
            if shutdown {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decision::LaneBehaviour;

    fn fresh_service(capacity: usize) -> Service {
        let cfg = ServiceConfig {
            capacity,
            ..ServiceConfig::default()
        };
        Service::new(cfg).expect("fresh service").0
    }

    fn nan_state() -> AugmentedState {
        let mut s = AugmentedState::zeros();
        s.current[0][0] = f64::NAN;
        s
    }

    #[test]
    fn healthy_request_is_full_tier_and_deterministic() {
        let mut a = fresh_service(8);
        let mut b = fresh_service(8);
        let state = AugmentedState::zeros();
        let da = a.decide(&state, f64::INFINITY);
        let db = b.decide(&state, f64::INFINITY);
        assert_eq!(da.tier, ServeTier::Full);
        assert_eq!(da, db, "same weights + same request = same answer");
        assert!(da.accel.is_finite());
    }

    #[test]
    fn non_finite_state_walks_the_ladder() {
        let mut svc = fresh_service(8);
        let _ = svc.decide(&AugmentedState::zeros(), f64::INFINITY);
        let d = svc.decide(&nan_state(), f64::INFINITY);
        assert_eq!(d.tier, ServeTier::Replay, "first stale step replays");
        for _ in 0..crate::REPLAY_LIMIT {
            let _ = svc.decide(&nan_state(), f64::INFINITY);
        }
        let d = svc.decide(&nan_state(), f64::INFINITY);
        assert_eq!(d.tier, ServeTier::Safe);
        assert_eq!(d.behaviour, LaneBehaviour::Keep.index());
        assert_eq!(d.accel, crate::SAFE_DECEL);
    }

    #[test]
    fn zero_deadline_preempts_inference_deterministically() {
        let mut svc = fresh_service(8);
        let d = svc.decide(&AugmentedState::zeros(), 0.0);
        assert_eq!(d.tier, ServeTier::Safe, "no budget, no history → safe");
        let d = svc.decide(&AugmentedState::zeros(), f64::INFINITY);
        assert_eq!(d.tier, ServeTier::Full, "recovers immediately");
    }

    #[test]
    fn batch_overflow_sheds_typed_responses() {
        let mut svc = fresh_service(2);
        let req = Request::Batch {
            id: 5,
            deadline_ms: f64::INFINITY,
            states: vec![AugmentedState::zeros(); 5],
        };
        let (resp, stop) = svc.handle(&req.encode());
        assert!(!stop);
        let v = Json::parse(&resp).unwrap();
        let Some(Json::Arr(results)) = v.get("results") else {
            panic!("no results: {resp}");
        };
        assert_eq!(results.len(), 5, "every offered state is answered");
        let shed: Vec<bool> = results
            .iter()
            .map(|r| r.get("shed") == Some(&Json::Bool(true)))
            .collect();
        assert_eq!(shed, [false, false, true, true, true], "tail is shed");
        for r in &results[2..] {
            assert_eq!(r.get("tier").and_then(Json::as_str), Some("safe"));
            assert_eq!(
                r.get("accel").and_then(Json::as_f64),
                Some(crate::SAFE_DECEL)
            );
        }
    }

    #[test]
    fn batched_decisions_match_sequential_decides() {
        let mut seq = fresh_service(16);
        let mut bat = fresh_service(16);
        let mut states = Vec::new();
        for i in 0..6 {
            let mut s = AugmentedState::zeros();
            s.current[0][0] = f64::from(i) * 0.3 - 1.0;
            s.future[1][2] = f64::from(i) * -0.2;
            states.push(s);
        }
        // A non-finite state mid-batch: the ladder walk must interleave
        // with the wide pass exactly as it does sequentially.
        states.insert(3, nan_state());
        let sequential: Vec<Decision> = states
            .iter()
            .map(|s| seq.decide(s, f64::INFINITY))
            .collect();
        let batched = bat.decide_batch(&states, f64::INFINITY);
        assert_eq!(
            sequential, batched,
            "one wide pass must not change any answer"
        );
    }

    #[test]
    fn malformed_frame_gets_a_typed_error() {
        let mut svc = fresh_service(8);
        let (resp, stop) = svc.handle("{broken");
        assert!(!stop);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert!(v.get("error").is_some());
    }

    #[test]
    fn serve_loop_answers_every_frame_and_stops_on_shutdown() {
        let mut svc = fresh_service(8);
        let mut input = Vec::new();
        let decide = Request::Decide {
            id: 1,
            deadline_ms: f64::INFINITY,
            state: Box::new(AugmentedState::zeros()),
        };
        protocol::write_frame(&mut input, &decide.encode()).unwrap();
        protocol::write_frame(&mut input, &Request::Stats { id: 2 }.encode()).unwrap();
        protocol::write_frame(&mut input, &Request::Shutdown { id: 3 }.encode()).unwrap();
        let mut out = Vec::new();
        let stopped = svc.serve(&mut input.as_slice(), &mut out).unwrap();
        assert!(stopped, "shutdown ends the loop");
        let mut r = out.as_slice();
        for expect_id in [1.0, 2.0, 3.0] {
            let frame = read_frame_text(&mut r);
            let v = Json::parse(&frame).unwrap();
            assert_eq!(v.get("id").and_then(Json::as_f64), Some(expect_id));
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        }
    }

    fn read_frame_text(r: &mut &[u8]) -> String {
        protocol::read_frame(r).unwrap().expect("frame present")
    }

    #[test]
    fn reload_swaps_weights_and_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("serve-reload-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // A checkpoint from a differently seeded agent: reload must change
        // the decision function.
        let donor = BpDqn::new(AgentConfig {
            seed: 99,
            ..AgentConfig::default()
        });
        Checkpoint {
            episode: 0,
            episodes: vec![],
            agent_json: Some(donor.save_json()),
            exploration_steps: 0,
            injector: None,
        }
        .save(&dir)
        .expect("save checkpoint");

        let mut svc = fresh_service(8);
        let mut probe = AugmentedState::zeros();
        probe.current[0][0] = 0.5;
        let before = svc.decide(&probe, f64::INFINITY);
        let source = svc.reload(&dir).expect("reload ok");
        assert_eq!(source, CheckpointSource::Current);
        let after = svc.decide(&probe, f64::INFINITY);
        assert!(
            before.accel != after.accel || before.behaviour != after.behaviour,
            "reload changed the decision function"
        );

        // A shape-mismatched checkpoint is rejected and the running
        // weights keep serving.
        let wide = BpDqn::new(AgentConfig {
            hidden: 96,
            ..AgentConfig::default()
        });
        Checkpoint {
            episode: 0,
            episodes: vec![],
            agent_json: Some(wide.save_json()),
            exploration_steps: 0,
            injector: None,
        }
        .save(&dir)
        .expect("save mismatched");
        let err = svc.reload(&dir).expect_err("mismatch rejected");
        assert!(err.contains("rejected"), "typed rejection: {err}");
        let post = svc.decide(&probe, f64::INFINITY);
        assert_eq!(post, after, "running weights untouched by rejection");

        // A corrupt checkpoint directory is rejected the same way.
        std::fs::write(dir.join(head::CHECKPOINT_FILE), "{garbage").expect("corrupt");
        std::fs::remove_file(dir.join(head::CHECKPOINT_PREV_FILE)).expect("drop prev");
        assert!(svc.reload(&dir).is_err());
        let post2 = svc.decide(&probe, f64::INFINITY);
        assert_eq!(post2, after);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_from_checkpoint_matches_donor() {
        let dir = std::env::temp_dir().join(format!("serve-boot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut donor = BpDqn::new(AgentConfig {
            seed: 4242,
            ..AgentConfig::default()
        });
        Checkpoint {
            episode: 0,
            episodes: vec![],
            agent_json: Some(donor.save_json()),
            exploration_steps: 0,
            injector: None,
        }
        .save(&dir)
        .expect("save");
        let (mut svc, source) = Service::new(ServiceConfig {
            checkpoint_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        })
        .expect("boot");
        assert_eq!(source, Some(CheckpointSource::Current));
        let mut probe = AugmentedState::zeros();
        probe.current[1][2] = -0.25;
        let (expect, _) = donor.act(&probe, false);
        let got = svc.decide(&probe, f64::INFINITY);
        assert_eq!(got.behaviour, expect.behaviour.index());
        assert_eq!(got.accel, expect.accel, "served weights == donor weights");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
