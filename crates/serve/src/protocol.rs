//! Wire protocol: length-prefixed JSON frames and the request/response
//! vocabulary.
//!
//! Every frame is a big-endian `u32` payload length followed by that many
//! bytes of UTF-8 JSON. Requests carry an `op`, a client-chosen `id`
//! echoed into the response, and — for observation ops — a `deadline_ms`
//! budget. Responses are deliberately free of wall-clock fields so a
//! healthy response stream is byte-identical across runs and restarts;
//! latency lives in telemetry histograms instead.

use crate::ladder::{safe_hold, ServeTier};
use decision::{AugmentedState, CURRENT_ROWS, FUTURE_ROWS, ROW_DIM};
use std::io::{self, Read, Write};
use std::path::PathBuf;
use telemetry::Json;

/// Upper bound on a single frame payload, bytes. Large enough for any
/// legitimate burst, small enough that a corrupt length prefix cannot ask
/// the daemon to allocate gigabytes.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_BYTES", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` on a clean end-of-stream (EOF before any
/// header byte); a stream cut mid-frame is an `UnexpectedEof` error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// One observation wanting one maneuver decision within `deadline_ms`.
    Decide {
        /// Client-chosen id echoed back.
        id: u64,
        /// Per-request latency budget, ms (`+inf` when absent).
        deadline_ms: f64,
        /// The augmented PAMDP state to decide on.
        state: Box<AugmentedState>,
    },
    /// A burst of observations sharing one deadline; subject to admission.
    Batch {
        /// Client-chosen id echoed back.
        id: u64,
        /// Per-request latency budget, ms (`+inf` when absent).
        deadline_ms: f64,
        /// The observations, in arrival order.
        states: Vec<AugmentedState>,
    },
    /// Hot-reload weights from a checkpoint directory.
    Reload {
        /// Client-chosen id echoed back.
        id: u64,
        /// Checkpoint directory (as written by `head::Checkpoint::save`).
        dir: PathBuf,
    },
    /// Snapshot of the daemon's serve counters.
    Stats {
        /// Client-chosen id echoed back.
        id: u64,
    },
    /// Acknowledge and exit the serve loop.
    Shutdown {
        /// Client-chosen id echoed back.
        id: u64,
    },
}

fn row_to_json(row: &[f64; ROW_DIM]) -> Json {
    Json::Arr(row.iter().map(|v| Json::Num(*v)).collect())
}

fn rows_to_json(rows: &[[f64; ROW_DIM]]) -> Json {
    Json::Arr(rows.iter().map(row_to_json).collect())
}

/// Encodes an augmented state as `{"current": [[..]; 7], "future": [[..]; 6]}`.
pub fn state_to_json(state: &AugmentedState) -> Json {
    Json::obj(vec![
        ("current", rows_to_json(&state.current)),
        ("future", rows_to_json(&state.future)),
    ])
}

fn row_from_json(v: &Json) -> Result<[f64; ROW_DIM], String> {
    let Json::Arr(items) = v else {
        return Err("state row is not an array".to_string());
    };
    if items.len() != ROW_DIM {
        return Err(format!(
            "state row has {} slots, want {ROW_DIM}",
            items.len()
        ));
    }
    let mut row = [0.0; ROW_DIM];
    for (slot, item) in row.iter_mut().zip(items) {
        // `null` is how JSON spells a non-finite number; decode it as NaN
        // so the service's finiteness check sees it (and degrades).
        *slot = match item {
            Json::Null => f64::NAN,
            other => other.as_f64().ok_or("state slot is not a number")?,
        };
    }
    Ok(row)
}

fn rows_from_json<const N: usize>(v: &Json, block: &str) -> Result<[[f64; ROW_DIM]; N], String> {
    let Json::Arr(items) = v else {
        return Err(format!("state block `{block}` is not an array"));
    };
    if items.len() != N {
        return Err(format!(
            "state block `{block}` has {} rows, want {N}",
            items.len()
        ));
    }
    let mut rows = [[0.0; ROW_DIM]; N];
    for (row, item) in rows.iter_mut().zip(items) {
        *row = row_from_json(item)?;
    }
    Ok(rows)
}

/// Decodes an augmented state produced by [`state_to_json`].
pub fn state_from_json(v: &Json) -> Result<AugmentedState, String> {
    Ok(AugmentedState {
        current: rows_from_json::<CURRENT_ROWS>(
            v.get("current").ok_or("state is missing `current`")?,
            "current",
        )?,
        future: rows_from_json::<FUTURE_ROWS>(
            v.get("future").ok_or("state is missing `future`")?,
            "future",
        )?,
    })
}

fn req_id(v: &Json) -> Result<u64, String> {
    v.get("id")
        .and_then(Json::as_f64)
        .map(|n| n as u64)
        .ok_or_else(|| "request is missing a numeric `id`".to_string())
}

fn req_deadline(v: &Json) -> f64 {
    match v.get("deadline_ms") {
        Some(Json::Num(ms)) => *ms,
        _ => f64::INFINITY,
    }
}

impl Request {
    /// Parses one request payload.
    pub fn parse(text: &str) -> Result<Request, String> {
        let v = Json::parse(text)?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request is missing `op`")?;
        let id = req_id(&v)?;
        match op {
            "decide" => Ok(Request::Decide {
                id,
                deadline_ms: req_deadline(&v),
                state: Box::new(state_from_json(
                    v.get("state").ok_or("decide is missing `state`")?,
                )?),
            }),
            "batch" => {
                let Some(Json::Arr(items)) = v.get("states") else {
                    return Err("batch is missing a `states` array".to_string());
                };
                let states = items
                    .iter()
                    .map(state_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Batch {
                    id,
                    deadline_ms: req_deadline(&v),
                    states,
                })
            }
            "reload" => Ok(Request::Reload {
                id,
                dir: PathBuf::from(
                    v.get("dir")
                        .and_then(Json::as_str)
                        .ok_or("reload is missing `dir`")?,
                ),
            }),
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Encodes the request payload (the client side of [`Request::parse`]).
    pub fn encode(&self) -> String {
        let json = match self {
            Request::Decide {
                id,
                deadline_ms,
                state,
            } => {
                let mut pairs = vec![("op", Json::from("decide")), ("id", Json::from(*id))];
                if deadline_ms.is_finite() {
                    pairs.push(("deadline_ms", Json::Num(*deadline_ms)));
                }
                pairs.push(("state", state_to_json(state)));
                Json::obj(pairs)
            }
            Request::Batch {
                id,
                deadline_ms,
                states,
            } => {
                let mut pairs = vec![("op", Json::from("batch")), ("id", Json::from(*id))];
                if deadline_ms.is_finite() {
                    pairs.push(("deadline_ms", Json::Num(*deadline_ms)));
                }
                pairs.push((
                    "states",
                    Json::Arr(states.iter().map(state_to_json).collect()),
                ));
                Json::obj(pairs)
            }
            Request::Reload { id, dir } => Json::obj(vec![
                ("op", Json::from("reload")),
                ("id", Json::from(*id)),
                ("dir", Json::from(dir.display().to_string())),
            ]),
            Request::Stats { id } => {
                Json::obj(vec![("op", Json::from("stats")), ("id", Json::from(*id))])
            }
            Request::Shutdown { id } => Json::obj(vec![
                ("op", Json::from("shutdown")),
                ("id", Json::from(*id)),
            ]),
        };
        json.to_string()
    }
}

/// One answered observation: which ladder tier produced it and the action.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Decision {
    /// Ladder rung that produced the action.
    pub tier: ServeTier,
    /// Lane behaviour index (`LaneBehaviour::index`).
    pub behaviour: usize,
    /// Longitudinal acceleration, m/s².
    pub accel: f64,
    /// True when admission shed this request (the action is the safe hold).
    pub shed: bool,
}

impl Decision {
    /// The typed response for a shed request: explicit, counted, and still
    /// actionable (safe hold) rather than silently dropped.
    pub fn shed() -> Decision {
        let safe = safe_hold();
        Decision {
            tier: ServeTier::Safe,
            behaviour: safe.behaviour.index(),
            accel: safe.accel,
            shed: true,
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("tier", Json::from(self.tier.name())),
            ("behaviour", Json::from(self.behaviour)),
            ("accel", Json::Num(self.accel)),
            ("shed", Json::from(self.shed)),
        ])
    }
}

/// Response to a `decide` request.
pub fn decide_response(id: u64, d: Decision) -> String {
    let mut pairs = vec![
        ("id".to_string(), Json::from(id)),
        ("ok".to_string(), Json::from(true)),
    ];
    if let Json::Obj(fields) = d.to_json() {
        pairs.extend(fields);
    }
    Json::Obj(pairs).to_string()
}

/// Response to a `batch` request: per-observation results in offer order.
pub fn batch_response(id: u64, results: &[Decision]) -> String {
    Json::obj(vec![
        ("id", Json::from(id)),
        ("ok", Json::from(true)),
        (
            "results",
            Json::Arr(results.iter().map(|d| d.to_json()).collect()),
        ),
    ])
    .to_string()
}

/// Response to a successful `reload`.
pub fn reload_response(id: u64, source: &str) -> String {
    Json::obj(vec![
        ("id", Json::from(id)),
        ("ok", Json::from(true)),
        ("reloaded", Json::from(true)),
        ("source", Json::from(source)),
    ])
    .to_string()
}

/// Response to a `stats` request, embedding the counter snapshot.
pub fn stats_response(id: u64, counters: Json) -> String {
    Json::obj(vec![
        ("id", Json::from(id)),
        ("ok", Json::from(true)),
        ("counters", counters),
    ])
    .to_string()
}

/// Acknowledgement of a `shutdown` request.
pub fn shutdown_response(id: u64) -> String {
    Json::obj(vec![
        ("id", Json::from(id)),
        ("ok", Json::from(true)),
        ("bye", Json::from(true)),
    ])
    .to_string()
}

/// A typed failure response (parse error, rejected reload, ...).
pub fn error_response(id: u64, error: &str) -> String {
    Json::obj(vec![
        ("id", Json::from(id)),
        ("ok", Json::from(false)),
        ("error", Json::from(error)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use decision::AugmentedState;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        buf.truncate(6);
        let mut r = buf.as_slice();
        assert!(read_frame(&mut r).is_err());
        let mut r = &buf[..2];
        assert!(read_frame(&mut r).is_err(), "EOF inside header");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let buf = u32::MAX.to_be_bytes();
        let mut r = buf.as_slice();
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let mut state = AugmentedState::zeros();
        state.current[0][1] = 12.75;
        state.future[5][3] = -0.125;
        let reqs = [
            Request::Decide {
                id: 7,
                deadline_ms: 50.0,
                state: Box::new(state),
            },
            Request::Batch {
                id: 8,
                deadline_ms: f64::INFINITY,
                states: vec![AugmentedState::zeros(), state],
            },
            Request::Reload {
                id: 9,
                dir: PathBuf::from("/tmp/ckpt"),
            },
            Request::Stats { id: 10 },
            Request::Shutdown { id: 11 },
        ];
        for req in reqs {
            let back = Request::parse(&req.encode()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn non_finite_state_slots_decode_as_nan() {
        let mut state = AugmentedState::zeros();
        state.current[2][2] = f64::NAN;
        let req = Request::Decide {
            id: 1,
            deadline_ms: f64::INFINITY,
            state: Box::new(state),
        };
        let Request::Decide { state: back, .. } = Request::parse(&req.encode()).unwrap() else {
            panic!("wrong op");
        };
        assert!(back.current[2][2].is_nan(), "null round-trips to NaN");
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::parse("{not json").is_err());
        assert!(Request::parse("{\"op\":\"decide\",\"id\":1}").is_err());
        assert!(Request::parse("{\"op\":\"nope\",\"id\":1}").is_err());
        assert!(Request::parse("{\"op\":\"stats\"}").is_err(), "missing id");
    }

    #[test]
    fn responses_are_stable_json() {
        let d = Decision::shed();
        let v = Json::parse(&decide_response(3, d)).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("tier").and_then(Json::as_str), Some("safe"));
        assert_eq!(v.get("shed"), Some(&Json::Bool(true)));
        let v = Json::parse(&error_response(4, "boom")).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("boom"));
    }
}
