//! `headd` — the HEAD serving daemon.
//!
//! Speaks the length-prefixed JSON protocol from `serve::protocol` over
//! stdin/stdout (default) or a Unix socket (`--socket PATH`). The process
//! is crash-only: there is no graceful persistence on the way down, and a
//! restart with the same `--checkpoint` directory resumes from the last
//! good checkpoint generation — for healthy streams, byte-identical to a
//! daemon that was never killed.
//!
//! ```text
//! headd [--checkpoint DIR] [--socket PATH] [--capacity N]
//!       [--seed N] [--hidden N] [--dump-dir DIR]
//! ```
//!
//! Exit codes: 0 clean shutdown, 1 startup/runtime failure, 2 bad usage.

use serve::{Service, ServiceConfig};
use std::io;
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Flags {
    checkpoint: Option<PathBuf>,
    socket: Option<PathBuf>,
    dump_dir: Option<PathBuf>,
    capacity: usize,
    seed: Option<u64>,
    hidden: Option<usize>,
}

const USAGE: &str = "usage: headd [--checkpoint DIR] [--socket PATH] [--capacity N] \
[--seed N] [--hidden N] [--dump-dir DIR]";

fn parse_flags(args: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut flags = Flags {
        checkpoint: None,
        socket: None,
        dump_dir: None,
        capacity: serve::DEFAULT_CAPACITY,
        seed: None,
        hidden: None,
    };
    let mut args = args;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--checkpoint" => flags.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--socket" => flags.socket = Some(PathBuf::from(value("--socket")?)),
            "--dump-dir" => flags.dump_dir = Some(PathBuf::from(value("--dump-dir")?)),
            "--capacity" => {
                flags.capacity = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?
            }
            "--seed" => {
                flags.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--hidden" => {
                flags.hidden = Some(
                    value("--hidden")?
                        .parse()
                        .map_err(|e| format!("--hidden: {e}"))?,
                )
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(flags)
}

fn run_stdio(service: &mut Service) -> io::Result<bool> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    service.serve(&mut stdin.lock(), &mut stdout.lock())
}

fn run_socket(service: &mut Service, path: &Path) -> io::Result<bool> {
    // Crash-only: a stale socket file from a killed predecessor is normal.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    loop {
        let (mut stream, _) = listener.accept()?;
        let mut writer = stream.try_clone()?;
        if service.serve(&mut stream, &mut writer)? {
            return Ok(true);
        }
        // Clean client disconnect: keep listening for the next one.
    }
}

fn main() -> ExitCode {
    let flags = match parse_flags(std::env::args().skip(1)) {
        Ok(flags) => flags,
        Err(msg) => {
            eprintln!("headd: {msg}");
            return ExitCode::from(2);
        }
    };

    telemetry::set_enabled(true);
    let mut recorder = telemetry::FlightRecorder::new(256);
    if let Some(dir) = &flags.dump_dir {
        recorder.configure_dumps(dir.clone(), "headd", Vec::new());
    }
    telemetry::flight_install(recorder);
    telemetry::flight_install_panic_hook();

    let mut agent = decision::AgentConfig::default();
    if let Some(seed) = flags.seed {
        agent.seed = seed;
    }
    if let Some(hidden) = flags.hidden {
        agent.hidden = hidden;
    }
    let cfg = ServiceConfig {
        agent,
        capacity: flags.capacity,
        checkpoint_dir: flags.checkpoint,
    };
    let (mut service, source) = match Service::new(cfg) {
        Ok(built) => built,
        Err(e) => {
            eprintln!("headd: startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "headd: serving (weights: {})",
        source.map_or("fresh", |s| s.as_str())
    );

    let result = match &flags.socket {
        Some(path) => run_socket(&mut service, path),
        None => run_stdio(&mut service),
    };
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("headd: transport error: {e}");
            ExitCode::FAILURE
        }
    }
}
