//! The decision-side degradation ladder.
//!
//! `perception::FallbackGuard` keeps the decision layer fed when sensing
//! degrades; [`DecisionLadder`] plays the same role one stage later, when
//! the *decision* itself cannot be produced in time (deadline overrun) or
//! is not trustworthy (non-finite output). The rungs map onto the paper's
//! failure handling:
//!
//! 1. [`ServeTier::Full`] — fresh, finite agent inference.
//! 2. [`ServeTier::Replay`] — the last valid action is replayed verbatim
//!    for up to [`REPLAY_LIMIT`] consecutive stale steps (a highway
//!    maneuver decision is valid across a handful of 100 ms ticks).
//! 3. [`ServeTier::Safe`] — rule-based decelerate-and-hold: keep the lane
//!    and brake gently ([`SAFE_DECEL`]) until full inference recovers.
//!
//! Every degraded step bumps a `serve.tier.*` counter and leaves a flight
//! ring entry, mirroring the `perception.fallback.*` instrumentation.

use decision::{Action, LaneBehaviour};
use telemetry::keys;

/// Longitudinal acceleration of the safe fallback, m/s² (gentle braking,
/// well inside the comfort band rather than an emergency stop).
pub const SAFE_DECEL: f64 = -2.0;

/// Consecutive stale steps the last valid action may be replayed before
/// the ladder drops to the rule-based safe tier.
pub const REPLAY_LIMIT: u64 = 2;

/// Which rung of the ladder produced a response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeTier {
    /// Fresh, finite agent inference — no degradation.
    Full,
    /// Last valid action replayed verbatim.
    Replay,
    /// Rule-based decelerate-and-hold fallback.
    Safe,
}

impl ServeTier {
    /// Short wire name, used in response payloads.
    pub fn name(self) -> &'static str {
        match self {
            ServeTier::Full => "full",
            ServeTier::Replay => "replay",
            ServeTier::Safe => "safe",
        }
    }

    /// Ladder depth: higher is more degraded.
    pub fn rank(self) -> u8 {
        match self {
            ServeTier::Full => 0,
            ServeTier::Replay => 1,
            ServeTier::Safe => 2,
        }
    }

    /// Telemetry counter bumped when this tier answers a request (`None`
    /// for the healthy path).
    pub fn counter(self) -> Option<&'static str> {
        match self {
            ServeTier::Full => None,
            ServeTier::Replay => Some(keys::SERVE_TIER_REPLAY),
            ServeTier::Safe => Some(keys::SERVE_TIER_SAFE),
        }
    }
}

/// The rule-based safe fallback action: hold the lane, brake gently.
pub fn safe_hold() -> Action {
    Action {
        behaviour: LaneBehaviour::Keep,
        accel: SAFE_DECEL,
    }
}

/// Keeps the last valid action and serves degraded substitutes while full
/// inference is unavailable, over deadline, or non-finite.
#[derive(Clone, Debug, Default)]
pub struct DecisionLadder {
    last_good: Option<Action>,
    staleness: u64,
}

impl DecisionLadder {
    /// A fresh ladder with no action history (cold start answers `Safe`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Consecutive requests served from fallback (0 on the healthy path).
    pub fn staleness(&self) -> u64 {
        self.staleness
    }

    /// Resolves one request. `fresh` is the agent's output when inference
    /// ran inside budget (possibly non-finite), or `None` when the
    /// watchdog skipped it. Always returns an answer — that is the point.
    pub fn resolve(&mut self, fresh: Option<Action>) -> (Action, ServeTier) {
        if let Some(action) = fresh {
            if action.accel.is_finite() {
                self.last_good = Some(action);
                self.staleness = 0;
                return (action, ServeTier::Full);
            }
        }
        self.staleness += 1;
        let (action, tier) = match &self.last_good {
            Some(prev) if self.staleness <= REPLAY_LIMIT => (*prev, ServeTier::Replay),
            _ => (safe_hold(), ServeTier::Safe),
        };
        if let Some(counter) = tier.counter() {
            telemetry::counter_add(counter, 1);
            // The staleness value makes a later flight dump show how deep
            // into the ladder the service was when things went wrong.
            telemetry::flight_record(counter, self.staleness as f64);
        }
        (action, tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(accel: f64) -> Action {
        Action {
            behaviour: LaneBehaviour::Left,
            accel,
        }
    }

    #[test]
    fn healthy_path_is_full_tier() {
        let mut ladder = DecisionLadder::new();
        let (a, tier) = ladder.resolve(Some(act(1.5)));
        assert_eq!(tier, ServeTier::Full);
        assert_eq!(a.accel, 1.5);
        assert_eq!(ladder.staleness(), 0);
    }

    #[test]
    fn cold_start_without_history_is_safe() {
        let mut ladder = DecisionLadder::new();
        let (a, tier) = ladder.resolve(None);
        assert_eq!(tier, ServeTier::Safe);
        assert_eq!(a.behaviour, LaneBehaviour::Keep);
        assert_eq!(a.accel, SAFE_DECEL);
    }

    #[test]
    fn ladder_descends_replay_then_safe() {
        let mut ladder = DecisionLadder::new();
        let _ = ladder.resolve(Some(act(0.7)));
        for k in 1..=REPLAY_LIMIT {
            let (a, tier) = ladder.resolve(None);
            assert_eq!(tier, ServeTier::Replay, "staleness {k} replays");
            assert_eq!(a.accel, 0.7, "replay is verbatim");
        }
        let (a, tier) = ladder.resolve(None);
        assert_eq!(tier, ServeTier::Safe);
        assert_eq!(a.accel, SAFE_DECEL);
        assert_eq!(ladder.staleness(), REPLAY_LIMIT + 1);
    }

    #[test]
    fn non_finite_fresh_counts_as_outage() {
        let mut ladder = DecisionLadder::new();
        let _ = ladder.resolve(Some(act(0.7)));
        let (a, tier) = ladder.resolve(Some(act(f64::NAN)));
        assert_eq!(tier, ServeTier::Replay);
        assert!(a.accel.is_finite());
    }

    #[test]
    fn good_output_resets_the_ladder() {
        let mut ladder = DecisionLadder::new();
        let _ = ladder.resolve(Some(act(0.7)));
        for _ in 0..4 {
            let _ = ladder.resolve(None);
        }
        let (_, tier) = ladder.resolve(Some(act(-0.1)));
        assert_eq!(tier, ServeTier::Full);
        let (a, tier) = ladder.resolve(None);
        assert_eq!(tier, ServeTier::Replay);
        assert_eq!(a.accel, -0.1, "ladder restarts from the newest action");
    }

    #[test]
    fn degraded_tiers_bump_counters() {
        let was = telemetry::set_enabled(true);
        let before = telemetry::counter_value(keys::SERVE_TIER_SAFE);
        let mut ladder = DecisionLadder::new();
        let _ = ladder.resolve(None);
        assert!(telemetry::counter_value(keys::SERVE_TIER_SAFE) > before);
        telemetry::set_enabled(was);
    }
}
