//! Crash-only recovery: SIGKILL `headd` mid-stream and assert that a
//! restart from the same checkpoint directory answers the remaining
//! requests byte-identically to a daemon that was never killed.

use decision::{AgentConfig, AugmentedState, BpDqn, PamdpAgent};
use head::Checkpoint;
use serve::Request;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("headd-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn write_checkpoint(dir: &Path, seed: u64) {
    let agent = BpDqn::new(AgentConfig {
        seed,
        ..AgentConfig::default()
    });
    Checkpoint {
        episode: 0,
        episodes: vec![],
        agent_json: Some(agent.save_json()),
        exploration_steps: 0,
        injector: None,
    }
    .save(dir)
    .expect("save checkpoint");
}

fn spawn_headd(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_headd"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn headd")
}

/// Lockstep request/response over the child's stdio.
fn roundtrip(child: &mut Child, req: &Request) -> String {
    let stdin = child.stdin.as_mut().expect("stdin piped");
    serve::write_frame(stdin, &req.encode()).expect("write frame");
    let stdout = child.stdout.as_mut().expect("stdout piped");
    read_one(stdout)
}

fn read_one(r: &mut impl Read) -> String {
    serve::read_frame(r).expect("read frame").expect("response")
}

fn shutdown(mut child: Child, id: u64) {
    let resp = roundtrip(&mut child, &Request::Shutdown { id });
    assert!(resp.contains("\"bye\":true"), "shutdown ack: {resp}");
    let status = child.wait().expect("wait");
    assert!(status.success(), "clean exit, no panic: {status:?}");
}

/// Deterministic, varied observation stream (no RNG — the same bytes on
/// every run and host).
fn state_k(k: usize) -> AugmentedState {
    let mut s = AugmentedState::zeros();
    for (i, row) in s.current.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = ((k * 31 + i * 7 + j * 3) % 97) as f64 / 9.7 - 5.0;
        }
    }
    for (i, row) in s.future.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = ((k * 17 + i * 11 + j * 5) % 89) as f64 / 8.9 - 5.0;
        }
    }
    s
}

fn decide_k(k: usize) -> Request {
    Request::Decide {
        id: k as u64,
        deadline_ms: f64::INFINITY,
        state: Box::new(state_k(k)),
    }
}

#[test]
fn kill_and_restart_is_byte_identical_to_uninterrupted_run() {
    let ckpt = temp_dir("crash-ckpt");
    write_checkpoint(&ckpt, 7);
    let ckpt_flag = ckpt.display().to_string();
    let args = ["--checkpoint", ckpt_flag.as_str()];
    const TOTAL: usize = 40;
    const CUT: usize = 17;

    // Reference: one daemon answers the whole stream.
    let mut reference = Vec::with_capacity(TOTAL);
    let mut child = spawn_headd(&args);
    for k in 0..TOTAL {
        reference.push(roundtrip(&mut child, &decide_k(k)));
    }
    shutdown(child, 1000);

    // Chaos: SIGKILL mid-stream after CUT answers, then restart and
    // finish the stream from the same checkpoint directory.
    let mut child = spawn_headd(&args);
    for (k, expect) in reference.iter().enumerate().take(CUT) {
        let got = roundtrip(&mut child, &decide_k(k));
        assert_eq!(&got, expect, "pre-kill answer {k}");
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    let mut child = spawn_headd(&args);
    for (k, expect) in reference.iter().enumerate().skip(CUT) {
        let got = roundtrip(&mut child, &decide_k(k));
        assert_eq!(
            &got, expect,
            "post-restart answer {k} must match the uninterrupted run byte-for-byte"
        );
    }
    shutdown(child, 1001);
    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn restart_resumes_from_previous_generation_when_current_is_corrupt() {
    let ckpt = temp_dir("crash-prev");
    write_checkpoint(&ckpt, 21);
    // A second save rotates the first generation to checkpoint.prev.json
    // with identical weights; then simulate a crash that corrupted the
    // current file mid-write.
    write_checkpoint(&ckpt, 21);
    let ckpt_flag = ckpt.display().to_string();
    let args = ["--checkpoint", ckpt_flag.as_str()];

    let mut child = spawn_headd(&args);
    let healthy: Vec<String> = (0..5)
        .map(|k| roundtrip(&mut child, &decide_k(k)))
        .collect();
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    std::fs::write(ckpt.join(head::CHECKPOINT_FILE), "{\"episode\": trun").expect("corrupt");
    let mut child = spawn_headd(&args);
    for (k, expect) in healthy.iter().enumerate() {
        let got = roundtrip(&mut child, &decide_k(k));
        assert_eq!(
            &got, expect,
            "answers from the rotated previous generation match"
        );
    }
    shutdown(child, 1002);
    let _ = std::fs::remove_dir_all(&ckpt);
}
