//! Transport-level coverage for `headd`: hot reload over the wire, typed
//! shed/degraded responses, the stats op, and the Unix-socket listener.

use decision::{AgentConfig, AugmentedState, BpDqn, PamdpAgent};
use head::Checkpoint;
use serve::Request;
use std::io::Read;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use telemetry::Json;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("headd-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn write_checkpoint(dir: &Path, seed: u64) {
    let agent = BpDqn::new(AgentConfig {
        seed,
        ..AgentConfig::default()
    });
    Checkpoint {
        episode: 0,
        episodes: vec![],
        agent_json: Some(agent.save_json()),
        exploration_steps: 0,
        injector: None,
    }
    .save(dir)
    .expect("save checkpoint");
}

fn spawn_headd(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_headd"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn headd")
}

fn roundtrip(child: &mut Child, req: &Request) -> Json {
    let stdin = child.stdin.as_mut().expect("stdin piped");
    serve::write_frame(stdin, &req.encode()).expect("write frame");
    let stdout = child.stdout.as_mut().expect("stdout piped");
    parse(read_one(stdout))
}

fn read_one(r: &mut impl Read) -> String {
    serve::read_frame(r).expect("read frame").expect("response")
}

fn parse(text: String) -> Json {
    Json::parse(&text).expect("response is JSON")
}

fn probe() -> Box<AugmentedState> {
    let mut s = AugmentedState::zeros();
    s.current[0][1] = 1.5;
    s.future[2][0] = -0.75;
    Box::new(s)
}

fn decide(id: u64) -> Request {
    Request::Decide {
        id,
        deadline_ms: f64::INFINITY,
        state: probe(),
    }
}

#[test]
fn hot_reload_swaps_weights_and_rolls_back_on_garbage() {
    let boot = temp_dir("reload-boot");
    let next = temp_dir("reload-next");
    write_checkpoint(&boot, 1);
    write_checkpoint(&next, 2);
    let boot_flag = boot.display().to_string();
    let mut child = spawn_headd(&["--checkpoint", boot_flag.as_str()]);

    let before = roundtrip(&mut child, &decide(1));
    assert_eq!(before.get("tier").and_then(Json::as_str), Some("full"));

    let resp = roundtrip(
        &mut child,
        &Request::Reload {
            id: 2,
            dir: next.clone(),
        },
    );
    assert_eq!(resp.get("reloaded"), Some(&Json::Bool(true)));
    assert_eq!(resp.get("source").and_then(Json::as_str), Some("current"));
    let after = roundtrip(&mut child, &decide(3));
    assert_ne!(
        before.get("accel"),
        after.get("accel"),
        "reload changed the served weights"
    );

    // Corrupt checkpoint: typed rejection, weights keep serving.
    std::fs::write(next.join(head::CHECKPOINT_FILE), "{oops").expect("corrupt");
    let _ = std::fs::remove_file(next.join(head::CHECKPOINT_PREV_FILE));
    let resp = roundtrip(
        &mut child,
        &Request::Reload {
            id: 4,
            dir: next.clone(),
        },
    );
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert!(resp.get("error").is_some());
    let post = roundtrip(&mut child, &decide(5));
    assert_eq!(
        after.get("accel"),
        post.get("accel"),
        "rejected reload left the running weights untouched"
    );

    // Stats reflect the reload outcomes.
    let stats = roundtrip(&mut child, &Request::Stats { id: 6 });
    let counters = stats.get("counters").expect("counters");
    assert_eq!(
        counters.get("serve.reload.ok").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(
        counters.get("serve.reload.rejected").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(
        counters.get("serve.requests").and_then(Json::as_f64),
        Some(3.0)
    );

    let bye = roundtrip(&mut child, &Request::Shutdown { id: 7 });
    assert_eq!(bye.get("bye"), Some(&Json::Bool(true)));
    assert!(child.wait().expect("wait").success());
    let _ = std::fs::remove_dir_all(&boot);
    let _ = std::fs::remove_dir_all(&next);
}

#[test]
fn degradation_and_shedding_are_typed_over_the_wire() {
    let mut child = spawn_headd(&["--capacity", "2"]);

    // Non-finite observation after a healthy one → replay tier.
    let healthy = roundtrip(&mut child, &decide(1));
    assert_eq!(healthy.get("tier").and_then(Json::as_str), Some("full"));
    let mut bad = AugmentedState::zeros();
    bad.current[3][2] = f64::NAN;
    let degraded = roundtrip(
        &mut child,
        &Request::Decide {
            id: 2,
            deadline_ms: f64::INFINITY,
            state: Box::new(bad),
        },
    );
    assert_eq!(degraded.get("tier").and_then(Json::as_str), Some("replay"));

    // Zero budget → deterministic preemptive degrade.
    let preempted = roundtrip(
        &mut child,
        &Request::Decide {
            id: 3,
            deadline_ms: 0.0,
            state: probe(),
        },
    );
    assert_ne!(preempted.get("tier").and_then(Json::as_str), Some("full"));

    // Burst over capacity → explicit shed tail with safe actions.
    let burst = roundtrip(
        &mut child,
        &Request::Batch {
            id: 4,
            deadline_ms: f64::INFINITY,
            states: vec![AugmentedState::zeros(); 5],
        },
    );
    let Some(Json::Arr(results)) = burst.get("results") else {
        panic!("results missing: {burst:?}");
    };
    assert_eq!(results.len(), 5, "every burst slot answered");
    let shed_count = results
        .iter()
        .filter(|r| r.get("shed") == Some(&Json::Bool(true)))
        .count();
    assert_eq!(shed_count, 3);

    let stats = roundtrip(&mut child, &Request::Stats { id: 5 });
    let counters = stats.get("counters").expect("counters");
    assert_eq!(counters.get("serve.shed").and_then(Json::as_f64), Some(3.0));
    assert!(counters.get("serve.degraded").and_then(Json::as_f64) >= Some(2.0));

    let bye = roundtrip(&mut child, &Request::Shutdown { id: 6 });
    assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
    assert!(child.wait().expect("wait").success());
}

#[test]
fn unix_socket_serves_across_reconnects() {
    let dir = temp_dir("socket");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let sock = dir.join("headd.sock");
    let sock_flag = sock.display().to_string();
    let mut child = spawn_headd(&["--socket", sock_flag.as_str()]);

    // Wait for the listener to come up.
    let mut stream = loop {
        match UnixStream::connect(&sock) {
            Ok(s) => break s,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    };
    serve::write_frame(&mut stream, &decide(1).encode()).expect("send");
    let first = parse(read_one(&mut stream));
    assert_eq!(first.get("tier").and_then(Json::as_str), Some("full"));
    drop(stream); // Disconnect: the daemon must keep listening.

    let mut stream = UnixStream::connect(&sock).expect("reconnect");
    serve::write_frame(&mut stream, &decide(2).encode()).expect("send");
    let second = parse(read_one(&mut stream));
    assert_eq!(
        first.get("accel"),
        second.get("accel"),
        "same state, same weights, same answer across connections"
    );
    serve::write_frame(&mut stream, &Request::Shutdown { id: 3 }.encode()).expect("send");
    let bye = parse(read_one(&mut stream));
    assert_eq!(bye.get("bye"), Some(&Json::Bool(true)));
    assert!(child.wait().expect("wait").success());
    let _ = std::fs::remove_dir_all(&dir);
}
