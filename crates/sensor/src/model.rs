//! The geometric sensor model: range filtering and line-of-sight occlusion.
//!
//! Sensing is *segment-aware*: candidates come from the ego's own segment
//! plus, through each lane link, the near band of successor and
//! predecessor segments, projected into the ego segment's frame (a
//! successor vehicle appears at `pos + seg.length`, a predecessor vehicle
//! at `pos - pred.length`). On the degenerate one-node network this
//! reduces exactly to the original whole-road sweep.

use serde::{Deserialize, Serialize};
use traffic_sim::{Simulation, Vehicle, VehicleId};

/// Sensor parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SensorConfig {
    /// Detection radius `R`, m (100 m in the paper).
    pub range: f64,
    /// Vehicle body width used for occlusion rectangles, m.
    pub vehicle_width: f64,
    /// Whether occlusion is simulated (disabling it gives an idealised
    /// sensor, useful for ablations and ground-truth extraction).
    pub occlusion: bool,
}

impl Default for SensorConfig {
    fn default() -> Self {
        Self {
            range: 100.0,
            vehicle_width: 1.8,
            occlusion: true,
        }
    }
}

/// The state of one vehicle as reported by the sensor (ground coordinates).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObservedState {
    /// Vehicle identity (ideal data association, as the paper assumes).
    pub id: VehicleId,
    /// Lane index, 0 = leftmost.
    pub lane: usize,
    /// Front-bumper longitudinal position, m.
    pub pos: f64,
    /// Longitudinal velocity, m/s.
    pub vel: f64,
}

impl ObservedState {
    fn from_vehicle(v: &Vehicle) -> Self {
        Self {
            id: v.id,
            lane: v.lane,
            pos: v.pos,
            vel: v.vel,
        }
    }
}

/// A sensing candidate projected into the ego segment's frame.
#[derive(Clone, Copy)]
struct Candidate {
    id: VehicleId,
    /// Lane index in the ego segment's frame.
    lane: usize,
    /// Front-bumper position in the ego segment's frame (negative for
    /// predecessor-segment vehicles behind the origin).
    pos: f64,
    vel: f64,
    length: f64,
}

impl Candidate {
    fn local(v: &Vehicle) -> Self {
        Self {
            id: v.id,
            lane: v.lane,
            pos: v.pos,
            vel: v.vel,
            length: v.length,
        }
    }
}

/// Gathers candidates: the ego's segment, plus successor and predecessor
/// segments through the lane links, projected into the ego frame.
fn gather_candidates(sim: &Simulation, ego: &Vehicle) -> Vec<Candidate> {
    let net = sim.network();
    let seg_idx = ego.seg.0 as usize;
    let segment = &net.segments[seg_idx];
    let mut cands: Vec<Candidate> = Vec::new();
    for v in sim.segment_vehicles(ego.seg) {
        if v.id != ego.id {
            cands.push(Candidate::local(v));
        }
    }
    // Successor band: a vehicle in the linked lane of the next segment is
    // seen ahead, in the source lane, at `seg.length + pos`.
    for (lane, link) in segment.links.iter().enumerate() {
        let Some(link) = link else { continue };
        for v in sim.segment_vehicles(link.to) {
            if v.lane == link.lane {
                cands.push(Candidate {
                    id: v.id,
                    lane,
                    pos: segment.length + v.pos,
                    vel: v.vel,
                    length: v.length,
                });
            }
        }
    }
    // Predecessor band: a vehicle feeding into this segment is seen
    // behind the origin, in the lane its link targets.
    for (pred, pred_lane, target_lane) in net.incoming(ego.seg) {
        let pred_len = net.segments[pred.0 as usize].length;
        for v in sim.segment_vehicles(pred) {
            if v.lane == pred_lane && v.id != ego.id {
                cands.push(Candidate {
                    id: v.id,
                    lane: target_lane,
                    pos: v.pos - pred_len,
                    vel: v.vel,
                    length: v.length,
                });
            }
        }
    }
    // A vehicle reachable through two links appears once (first wins).
    let mut seen = std::collections::BTreeSet::new();
    cands.retain(|c| seen.insert(c.id));
    cands
}

/// One sensor sweep: the ego's own state plus every visible vehicle.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SensorFrame {
    /// Simulation step at which the sweep was taken.
    pub step: u64,
    /// Ego state (always known exactly).
    pub ego: ObservedState,
    /// Visible surrounding vehicles.
    pub observed: Vec<ObservedState>,
}

impl SensorFrame {
    /// Looks up an observed vehicle by id.
    pub fn get(&self, id: VehicleId) -> Option<&ObservedState> {
        self.observed.iter().find(|o| o.id == id)
    }
}

/// Body centre of a candidate in road coordinates `(x, y)`:
/// `x` longitudinal (m), `y` lateral (m, lane 0 centred at 0.5 widths).
fn centre(v: &Candidate, lane_width: f64) -> (f64, f64) {
    (v.pos - v.length * 0.5, (v.lane as f64 + 0.5) * lane_width)
}

/// Axis-aligned body rectangle `(x_min, x_max, y_min, y_max)`.
fn body_rect(v: &Candidate, lane_width: f64, width: f64) -> (f64, f64, f64, f64) {
    let (cx, cy) = centre(v, lane_width);
    (
        cx - v.length * 0.5,
        cx + v.length * 0.5,
        cy - width * 0.5,
        cy + width * 0.5,
    )
}

/// Segment/AABB intersection (slab method).
fn segment_hits_rect(
    (x0, y0): (f64, f64),
    (x1, y1): (f64, f64),
    (rx0, rx1, ry0, ry1): (f64, f64, f64, f64),
) -> bool {
    let dx = x1 - x0;
    let dy = y1 - y0;
    let mut t_min = 0.0_f64;
    let mut t_max = 1.0_f64;
    for (p, d, lo, hi) in [(x0, dx, rx0, rx1), (y0, dy, ry0, ry1)] {
        if d.abs() < 1e-12 {
            if p < lo || p > hi {
                return false;
            }
        } else {
            let mut t1 = (lo - p) / d;
            let mut t2 = (hi - p) / d;
            if t1 > t2 {
                std::mem::swap(&mut t1, &mut t2);
            }
            t_min = t_min.max(t1);
            t_max = t_max.min(t2);
            if t_min > t_max {
                return false;
            }
        }
    }
    true
}

/// Performs one sensor sweep around `ego_id`.
///
/// # Panics
/// Panics if `ego_id` is not on the road.
pub fn sense(sim: &Simulation, ego_id: VehicleId, cfg: &SensorConfig) -> SensorFrame {
    // lint:allow(panic) sensing a removed vehicle is a caller bug worth failing fast on
    let ego = sim.get(ego_id).expect("ego vehicle must exist");
    let lane_width = sim.cfg().lane_width;
    let ego_centre = centre(&Candidate::local(ego), lane_width);

    // Range gate over the ego-frame candidates (own segment plus the
    // linked neighbour bands).
    let in_range: Vec<Candidate> = gather_candidates(sim, ego)
        .into_iter()
        .filter(|v| {
            let (cx, cy) = centre(v, lane_width);
            let d2 = (cx - ego_centre.0).powi(2) + (cy - ego_centre.1).powi(2);
            d2 <= cfg.range * cfg.range
        })
        .collect();

    // Occlusion gate: target visible unless line of sight to its centre is
    // blocked by some other (nearer) vehicle body.
    let observed = in_range
        .iter()
        .filter(|target| {
            if !cfg.occlusion {
                return true;
            }
            let t_centre = centre(target, lane_width);
            !in_range.iter().any(|occluder| {
                occluder.id != target.id
                    && segment_hits_rect(
                        ego_centre,
                        t_centre,
                        body_rect(occluder, lane_width, cfg.vehicle_width),
                    )
            })
        })
        .map(|v| ObservedState {
            id: v.id,
            lane: v.lane,
            pos: v.pos,
            vel: v.vel,
        })
        .collect();

    SensorFrame {
        step: sim.step_count(),
        ego: ObservedState::from_vehicle(ego),
        observed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_sim::SimConfig;

    fn sim_with(positions: &[(usize, f64, f64)]) -> (Simulation, VehicleId) {
        // First entry is the ego.
        let cfg = SimConfig {
            road_len: 2000.0,
            lanes: 6,
            density_per_km: 0.0,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg);
        let (lane, pos, vel) = positions[0];
        let ego = sim.spawn_external(lane, pos, vel);
        for &(lane, pos, vel) in &positions[1..] {
            let id = sim.spawn_external(lane, pos, vel);
            // Repaint as conventional so only one ego exists conceptually.
            let _ = id;
        }
        (sim, ego)
    }

    #[test]
    fn segment_rect_geometry() {
        let rect = (1.0, 2.0, -0.5, 0.5);
        assert!(segment_hits_rect((0.0, 0.0), (3.0, 0.0), rect));
        assert!(!segment_hits_rect((0.0, 2.0), (3.0, 2.0), rect));
        assert!(!segment_hits_rect((0.0, 0.0), (0.9, 0.0), rect)); // stops short
        assert!(segment_hits_rect((1.5, -2.0), (1.5, 2.0), rect)); // vertical
    }

    #[test]
    fn range_limit_filters_far_vehicles() {
        let (sim, ego) = sim_with(&[(2, 500.0, 20.0), (2, 590.0, 20.0), (2, 700.0, 20.0)]);
        let frame = sense(
            &sim,
            ego,
            &SensorConfig {
                occlusion: false,
                ..Default::default()
            },
        );
        assert_eq!(frame.observed.len(), 1);
        assert!((frame.observed[0].pos - 590.0).abs() < 1e-9);
    }

    #[test]
    fn occlusion_hides_vehicle_behind_leader() {
        // Ego, a leader dead ahead, and a second vehicle straight behind
        // the leader in the same lane: the far one must be occluded.
        let (sim, ego) = sim_with(&[(2, 500.0, 20.0), (2, 530.0, 20.0), (2, 560.0, 20.0)]);
        let frame = sense(&sim, ego, &SensorConfig::default());
        let ids: Vec<f64> = frame.observed.iter().map(|o| o.pos).collect();
        assert_eq!(ids, vec![530.0], "only the near leader should be visible");
    }

    #[test]
    fn adjacent_lane_vehicle_not_occluded() {
        let (sim, ego) = sim_with(&[(2, 500.0, 20.0), (2, 530.0, 20.0), (1, 560.0, 20.0)]);
        let frame = sense(&sim, ego, &SensorConfig::default());
        assert_eq!(frame.observed.len(), 2, "diagonal line of sight is clear");
    }

    #[test]
    fn rear_occlusion_symmetrical() {
        let (sim, ego) = sim_with(&[(2, 500.0, 20.0), (2, 470.0, 20.0), (2, 440.0, 20.0)]);
        let frame = sense(&sim, ego, &SensorConfig::default());
        assert_eq!(frame.observed.len(), 1);
        assert!((frame.observed[0].pos - 470.0).abs() < 1e-9);
    }

    #[test]
    fn disabling_occlusion_reveals_all_in_range() {
        let (sim, ego) = sim_with(&[(2, 500.0, 20.0), (2, 530.0, 20.0), (2, 560.0, 20.0)]);
        let frame = sense(
            &sim,
            ego,
            &SensorConfig {
                occlusion: false,
                ..Default::default()
            },
        );
        assert_eq!(frame.observed.len(), 2);
    }

    #[test]
    fn ego_always_reports_itself() {
        let (sim, ego) = sim_with(&[(3, 100.0, 15.0)]);
        let frame = sense(&sim, ego, &SensorConfig::default());
        assert_eq!(frame.ego.id, ego);
        assert_eq!(frame.ego.lane, 3);
        assert!(frame.observed.is_empty());
    }
}
