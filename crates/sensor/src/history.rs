//! Rolling `z`-step history of sensor frames.
//!
//! The LST-GAT state-prediction model consumes the last `z` sweeps. A
//! vehicle that entered the field of view fewer than `z` steps ago has an
//! incomplete track; the paper's model needs *some* value for those steps,
//! so the track is backfilled by constant-velocity extrapolation from its
//! earliest observation (the paper does not specify this case; constant
//! velocity is the mildest assumption and is flagged via
//! [`VehicleTrack::backfilled`]).

use crate::model::{ObservedState, SensorFrame};
use std::collections::VecDeque;
use traffic_sim::VehicleId;

/// A fixed-capacity FIFO of the most recent sensor frames.
#[derive(Clone, Debug)]
pub struct SensorHistory {
    z: usize,
    frames: VecDeque<SensorFrame>,
}

/// The `z`-step history of one vehicle, oldest first.
#[derive(Clone, Debug)]
pub struct VehicleTrack {
    /// Vehicle identity.
    pub id: VehicleId,
    /// One state per history step, oldest first; length = `z`.
    pub states: Vec<ObservedState>,
    /// How many leading entries were backfilled rather than observed.
    pub backfilled: usize,
}

impl SensorHistory {
    /// Creates a history that keeps the last `z` frames.
    pub fn new(z: usize) -> Self {
        assert!(z >= 1, "history needs at least one step");
        Self {
            z,
            frames: VecDeque::with_capacity(z),
        }
    }

    /// History depth `z`.
    pub fn depth(&self) -> usize {
        self.z
    }

    /// Pushes the newest frame, dropping the oldest when full.
    pub fn push(&mut self, frame: SensorFrame) {
        if self.frames.len() == self.z {
            self.frames.pop_front();
        }
        self.frames.push_back(frame);
    }

    /// True once `z` frames have been recorded.
    pub fn is_full(&self) -> bool {
        self.frames.len() == self.z
    }

    /// Number of frames currently held.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frame has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The most recent frame, if any.
    pub fn latest(&self) -> Option<&SensorFrame> {
        self.frames.back()
    }

    /// Frames oldest-first.
    pub fn frames(&self) -> impl Iterator<Item = &SensorFrame> {
        self.frames.iter()
    }

    /// Clears all stored frames (episode reset).
    pub fn clear(&mut self) {
        self.frames.clear();
    }

    /// Ego track over the stored window (always fully observed), padded to
    /// `z` by constant-velocity backfill when fewer frames exist.
    pub fn ego_track(&self, dt: f64) -> Option<VehicleTrack> {
        let states: Vec<ObservedState> = self.frames.iter().map(|f| f.ego).collect();
        Self::pad_track(states, self.z, dt)
    }

    /// Track of a surrounding vehicle. Returns `None` when the vehicle is
    /// not visible in the *latest* frame (then it is a candidate for the
    /// phantom construction instead).
    ///
    /// Steps in which the vehicle was not observed — including steps before
    /// it first appeared — are backfilled at constant velocity from its
    /// earliest observation.
    pub fn track_of(&self, id: VehicleId, dt: f64) -> Option<VehicleTrack> {
        self.latest()?.get(id)?;
        let observed: Vec<Option<ObservedState>> =
            self.frames.iter().map(|f| f.get(id).copied()).collect();
        // Fill gaps: walk from the earliest observation backwards, and
        // carry observations forward across interior gaps.
        let first_idx = observed.iter().position(Option::is_some)?;
        let mut states = Vec::with_capacity(self.z);
        let mut backfilled = 0;
        // lint:allow(panic) first_idx was produced by position(|o| o.is_some()) just above
        let first = observed[first_idx].expect("present by construction");
        // Leading backfill (also covers frames not yet recorded).
        let missing_lead = first_idx + (self.z - observed.len());
        for k in 0..missing_lead {
            let steps_back = (missing_lead - k) as f64;
            let mut s = first;
            s.pos -= s.vel * dt * steps_back;
            states.push(s);
            backfilled += 1;
        }
        let mut last_seen = first;
        for slot in &observed[first_idx..] {
            match slot {
                Some(s) => {
                    last_seen = *s;
                    states.push(*s);
                }
                None => {
                    // Interior gap: constant-velocity coast.
                    let mut s = last_seen;
                    s.pos += s.vel * dt;
                    last_seen = s;
                    states.push(s);
                    backfilled += 1;
                }
            }
        }
        debug_assert_eq!(states.len(), self.z);
        Some(VehicleTrack {
            id,
            states,
            backfilled,
        })
    }

    fn pad_track(states: Vec<ObservedState>, z: usize, dt: f64) -> Option<VehicleTrack> {
        let first = *states.first()?;
        let missing = z - states.len();
        let mut padded = Vec::with_capacity(z);
        for k in 0..missing {
            let steps_back = (missing - k) as f64;
            let mut s = first;
            s.pos -= s.vel * dt * steps_back;
            padded.push(s);
        }
        let id = first.id;
        padded.extend(states);
        Some(VehicleTrack {
            id,
            states: padded,
            backfilled: missing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(id: u64, pos: f64, vel: f64) -> ObservedState {
        ObservedState {
            id: VehicleId(id),
            lane: 0,
            pos,
            vel,
        }
    }

    fn frame(step: u64, ego_pos: f64, observed: Vec<ObservedState>) -> SensorFrame {
        SensorFrame {
            step,
            ego: obs(0, ego_pos, 10.0),
            observed,
        }
    }

    #[test]
    fn fifo_semantics() {
        let mut h = SensorHistory::new(3);
        for i in 0..5 {
            h.push(frame(i, i as f64, vec![]));
        }
        assert!(h.is_full());
        let steps: Vec<u64> = h.frames().map(|f| f.step).collect();
        assert_eq!(steps, vec![2, 3, 4]);
    }

    #[test]
    fn track_fully_observed() {
        let mut h = SensorHistory::new(3);
        for i in 0..3 {
            h.push(frame(i, 0.0, vec![obs(7, 100.0 + i as f64, 2.0)]));
        }
        let t = h.track_of(VehicleId(7), 0.5).unwrap();
        assert_eq!(t.backfilled, 0);
        assert_eq!(t.states.len(), 3);
        assert_eq!(t.states[0].pos, 100.0);
        assert_eq!(t.states[2].pos, 102.0);
    }

    #[test]
    fn track_missing_in_latest_frame_is_none() {
        let mut h = SensorHistory::new(3);
        h.push(frame(0, 0.0, vec![obs(7, 100.0, 2.0)]));
        h.push(frame(1, 0.0, vec![obs(7, 101.0, 2.0)]));
        h.push(frame(2, 0.0, vec![]));
        assert!(h.track_of(VehicleId(7), 0.5).is_none());
    }

    #[test]
    fn leading_backfill_constant_velocity() {
        let mut h = SensorHistory::new(4);
        h.push(frame(0, 0.0, vec![]));
        h.push(frame(1, 0.0, vec![]));
        h.push(frame(2, 0.0, vec![obs(7, 100.0, 4.0)]));
        h.push(frame(3, 0.0, vec![obs(7, 102.0, 4.0)]));
        let t = h.track_of(VehicleId(7), 0.5).unwrap();
        assert_eq!(t.backfilled, 2);
        assert_eq!(t.states.len(), 4);
        // Extrapolated backwards at 4 m/s * 0.5 s = 2 m per step.
        assert!((t.states[0].pos - 96.0).abs() < 1e-9);
        assert!((t.states[1].pos - 98.0).abs() < 1e-9);
    }

    #[test]
    fn interior_gap_coasts_forward() {
        let mut h = SensorHistory::new(3);
        h.push(frame(0, 0.0, vec![obs(7, 100.0, 4.0)]));
        h.push(frame(1, 0.0, vec![])); // momentarily occluded
        h.push(frame(2, 0.0, vec![obs(7, 104.0, 4.0)]));
        let t = h.track_of(VehicleId(7), 0.5).unwrap();
        assert_eq!(t.backfilled, 1);
        assert!((t.states[1].pos - 102.0).abs() < 1e-9);
    }

    #[test]
    fn short_history_is_padded() {
        let mut h = SensorHistory::new(5);
        h.push(frame(0, 0.0, vec![obs(7, 50.0, 2.0)]));
        let t = h.track_of(VehicleId(7), 0.5).unwrap();
        assert_eq!(t.states.len(), 5);
        assert_eq!(t.backfilled, 4);
        assert!((t.states[0].pos - 46.0).abs() < 1e-9);
    }

    #[test]
    fn ego_track_padded_and_ordered() {
        let mut h = SensorHistory::new(3);
        h.push(frame(0, 10.0, vec![]));
        h.push(frame(1, 15.0, vec![]));
        let t = h.ego_track(0.5).unwrap();
        assert_eq!(t.states.len(), 3);
        assert_eq!(t.backfilled, 1);
        assert!((t.states[0].pos - 5.0).abs() < 1e-9); // 10 - 10*0.5
        assert_eq!(t.states[2].pos, 15.0);
    }

    #[test]
    fn clear_resets() {
        let mut h = SensorHistory::new(2);
        h.push(frame(0, 0.0, vec![]));
        h.clear();
        assert!(h.is_empty());
        assert!(h.latest().is_none());
    }
}
