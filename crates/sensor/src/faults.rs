//! Deterministic sensor fault injection.
//!
//! Wraps the sweep produced by [`sense`](crate::sense) with the perception
//! failure modes the HEAD paper's enhanced perception module is built to
//! tolerate: per-detection dropout (range/occlusion flicker), position and
//! velocity noise bursts, frame latency (a stale sweep delivered late), and
//! whole-sweep blackouts. A [`FaultInjector`] is seeded explicitly and owns
//! its own generator, so the same [`FaultProfile`] and seed always produce
//! the same fault trace regardless of what any other subsystem samples.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::model::SensorFrame;

/// Upper bound on retained [`FaultRecord`]s; counters and the digest keep
/// counting past it.
const MAX_TRACE: usize = 4096;

/// Rates and magnitudes for every injected fault class, plus an activation
/// window so scenarios can stage faults mid-episode.
///
/// All rates are per-frame probabilities in `[0, 1]`; a rate of exactly
/// `0.0` draws nothing from the generator, so disabled fault classes leave
/// the random stream untouched (this is what makes a zero profile a
/// bit-identical no-op).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability that each individual detection is dropped from a sweep.
    pub dropout_rate: f64,
    /// Probability per frame that a noise burst starts.
    pub noise_rate: f64,
    /// Length of a noise burst, frames.
    pub noise_burst: u32,
    /// Position noise standard deviation during a burst, m.
    pub pos_sigma: f64,
    /// Velocity noise standard deviation during a burst, m/s.
    pub vel_sigma: f64,
    /// Probability per frame that the sweep is replaced by a stale one.
    pub latency_rate: f64,
    /// Age of the stale sweep delivered on a latency fault, frames.
    pub latency_steps: u32,
    /// Probability per frame that a blackout starts.
    pub blackout_rate: f64,
    /// Length of a blackout, frames (every frame in it is swallowed).
    pub blackout_len: u32,
    /// Probability per frame that one detection field is corrupted to NaN.
    pub nan_rate: f64,
    /// First frame index at which faults are active.
    pub active_from: u64,
    /// Frame index at which faults deactivate (exclusive); `0` = never.
    pub active_until: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultProfile {
    /// All fault classes disabled; [`FaultInjector::apply`] is the identity.
    pub fn none() -> Self {
        Self {
            dropout_rate: 0.0,
            noise_rate: 0.0,
            noise_burst: 0,
            pos_sigma: 0.0,
            vel_sigma: 0.0,
            latency_rate: 0.0,
            latency_steps: 0,
            blackout_rate: 0.0,
            blackout_len: 0,
            nan_rate: 0.0,
            active_from: 0,
            active_until: 0,
        }
    }

    /// Mild degradation: occasional dropout, short noise bursts.
    pub fn light() -> Self {
        Self {
            dropout_rate: 0.05,
            noise_rate: 0.05,
            noise_burst: 3,
            pos_sigma: 0.5,
            vel_sigma: 0.25,
            latency_rate: 0.02,
            latency_steps: 2,
            blackout_rate: 0.005,
            blackout_len: 2,
            nan_rate: 0.0,
            active_from: 0,
            active_until: 0,
        }
    }

    /// Aggressive degradation across every fault class, including NaN
    /// corruption of raw detections.
    pub fn heavy() -> Self {
        Self {
            dropout_rate: 0.15,
            noise_rate: 0.10,
            noise_burst: 5,
            pos_sigma: 1.5,
            vel_sigma: 0.75,
            latency_rate: 0.05,
            latency_steps: 3,
            blackout_rate: 0.02,
            blackout_len: 3,
            nan_rate: 0.01,
            active_from: 0,
            active_until: 0,
        }
    }

    /// Frequent multi-frame blackouts with light secondary faults — the
    /// profile the fallback ladder is primarily exercised against.
    pub fn blackout_heavy() -> Self {
        Self {
            dropout_rate: 0.05,
            noise_rate: 0.02,
            noise_burst: 2,
            pos_sigma: 0.5,
            vel_sigma: 0.25,
            latency_rate: 0.0,
            latency_steps: 0,
            blackout_rate: 0.15,
            blackout_len: 4,
            nan_rate: 0.0,
            active_from: 0,
            active_until: 0,
        }
    }

    /// Looks up a named preset (CLI `--faults NAME`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "none" | "off" => Some(Self::none()),
            "light" => Some(Self::light()),
            "heavy" => Some(Self::heavy()),
            "blackout" | "blackout_heavy" => Some(Self::blackout_heavy()),
            _ => None,
        }
    }

    /// True when every fault class is disabled.
    pub fn is_noop(&self) -> bool {
        let rates = [
            self.dropout_rate,
            self.noise_rate,
            self.latency_rate,
            self.blackout_rate,
            self.nan_rate,
        ];
        // lint:allow(float-eq) rates are exact 0.0 sentinels written by the profile constructors
        rates.iter().all(|&r| r == 0.0)
    }

    /// Whether the activation window covers `frame`.
    pub fn active_at(&self, frame: u64) -> bool {
        frame >= self.active_from && (self.active_until == 0 || frame < self.active_until)
    }
}

/// Self-contained generator for the fault stream (MMIX linear congruential
/// core with an output mix). Deliberately independent of the `rand` crate so
/// fault traces are stable across dependency upgrades and stub harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seeds the generator; distinct seeds give unrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut rng = Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        // Decorrelate small seeds.
        let _ = rng.next_u64();
        let _ = rng.next_u64();
        rng
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let mut z = self.state;
        z ^= z >> 33;
        z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z ^= z >> 33;
        z = z.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        z ^ (z >> 33)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal draw (Box–Muller).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// The class of one injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A detection was removed from the sweep.
    Dropout,
    /// Detections were perturbed by Gaussian noise.
    Noise,
    /// The sweep's detections were replaced by a stale frame's.
    Latency,
    /// The whole sweep was swallowed.
    Blackout,
    /// One detection field was corrupted to NaN.
    NanCorruption,
}

impl FaultKind {
    /// Stable index into [`FaultInjector::counts`].
    pub fn index(self) -> usize {
        match self {
            FaultKind::Dropout => 0,
            FaultKind::Noise => 1,
            FaultKind::Latency => 2,
            FaultKind::Blackout => 3,
            FaultKind::NanCorruption => 4,
        }
    }

    /// Short name used in traces and telemetry counters.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Dropout => "dropout",
            FaultKind::Noise => "noise",
            FaultKind::Latency => "latency",
            FaultKind::Blackout => "blackout",
            FaultKind::NanCorruption => "nan",
        }
    }
}

/// One injected fault, recorded for reproducibility checks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRecord {
    /// Injector frame index (frames seen since construction).
    pub frame: u64,
    /// Simulation step stamped on the affected sweep.
    pub step: u64,
    /// Fault class.
    pub kind: FaultKind,
    /// Class-specific magnitude (detections dropped, staleness, …).
    pub value: f64,
}

/// Resumable generator state of a [`FaultInjector`] (the latency delay
/// buffer is deliberately excluded: it refills within `latency_steps`
/// frames, and checkpoints only need the random stream position).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectorState {
    /// Raw LCG state.
    pub rng_state: u64,
    /// Remaining frames in the active noise burst.
    pub noise_left: u32,
    /// Remaining frames in the active blackout.
    pub blackout_left: u32,
    /// Frames seen since construction.
    pub frames_seen: u64,
}

/// Applies a [`FaultProfile`] to successive sensor sweeps, deterministically
/// under its seed. `apply` returns `None` for blacked-out frames.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    profile: FaultProfile,
    rng: FaultRng,
    delay: VecDeque<SensorFrame>,
    noise_left: u32,
    blackout_left: u32,
    frames_seen: u64,
    trace: Vec<FaultRecord>,
    counts: [u64; 5],
    digest: u64,
}

impl FaultInjector {
    /// Builds an injector for `profile` seeded with `seed`.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        Self {
            profile,
            rng: FaultRng::new(seed),
            delay: VecDeque::new(),
            noise_left: 0,
            blackout_left: 0,
            frames_seen: 0,
            trace: Vec::new(),
            counts: [0; 5],
            digest: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// The profile this injector applies.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Runs one sweep through the fault pipeline. `None` means the frame
    /// was swallowed by a blackout; callers degrade instead of observing.
    pub fn apply(&mut self, frame: SensorFrame) -> Option<SensorFrame> {
        let frame_idx = self.frames_seen;
        self.frames_seen += 1;

        // Feed the latency buffer unconditionally so a stale frame is
        // available as soon as a latency fault first fires.
        if self.profile.latency_rate > 0.0 && self.profile.latency_steps > 0 {
            self.delay.push_back(frame.clone());
            let cap = self.profile.latency_steps as usize + 1;
            while self.delay.len() > cap {
                self.delay.pop_front();
            }
        }

        // Outside the activation window the injector is a pure pass-through
        // and draws nothing, keeping the stream aligned with the schedule.
        if !self.profile.active_at(frame_idx) {
            return Some(frame);
        }

        // Blackout continuation, then a fresh blackout draw.
        if self.blackout_left > 0 {
            self.blackout_left -= 1;
            self.record(frame_idx, frame.step, FaultKind::Blackout, 0.0);
            return None;
        }
        if self.profile.blackout_rate > 0.0 && self.rng.uniform() < self.profile.blackout_rate {
            self.blackout_left = self.profile.blackout_len.saturating_sub(1);
            self.record(frame_idx, frame.step, FaultKind::Blackout, 1.0);
            return None;
        }

        let mut out = frame;

        // Latency: replace the detections with a stale sweep's, re-stamped
        // to the current step so downstream history stays monotonic.
        if self.profile.latency_rate > 0.0 && self.rng.uniform() < self.profile.latency_rate {
            if let Some(stale) = self.delay.front() {
                if stale.step < out.step {
                    let staleness = (out.step - stale.step) as f64;
                    out.observed = stale.observed.clone();
                    self.record(frame_idx, out.step, FaultKind::Latency, staleness);
                }
            }
        }

        // Per-detection dropout.
        if self.profile.dropout_rate > 0.0 {
            let before = out.observed.len();
            let candidates = std::mem::take(&mut out.observed);
            for obs in candidates {
                if self.rng.uniform() >= self.profile.dropout_rate {
                    out.observed.push(obs);
                }
            }
            let dropped = before - out.observed.len();
            if dropped > 0 {
                self.record(frame_idx, out.step, FaultKind::Dropout, dropped as f64);
            }
        }

        // Noise bursts perturb every surviving detection; the ego state is
        // always exact (proprioception, as the paper assumes).
        if self.profile.noise_rate > 0.0 {
            if self.noise_left == 0 && self.rng.uniform() < self.profile.noise_rate {
                self.noise_left = self.profile.noise_burst.max(1);
            }
            if self.noise_left > 0 {
                self.noise_left -= 1;
                for obs in &mut out.observed {
                    obs.pos += self.profile.pos_sigma * self.rng.gaussian();
                    obs.vel += self.profile.vel_sigma * self.rng.gaussian();
                }
                self.record(
                    frame_idx,
                    out.step,
                    FaultKind::Noise,
                    out.observed.len() as f64,
                );
            }
        }

        // NaN corruption of a single detection field.
        if self.profile.nan_rate > 0.0
            && self.rng.uniform() < self.profile.nan_rate
            && !out.observed.is_empty()
        {
            let idx = (self.rng.next_u64() % out.observed.len() as u64) as usize;
            if self.rng.next_u64() & 1 == 0 {
                out.observed[idx].pos = f64::NAN;
            } else {
                out.observed[idx].vel = f64::NAN;
            }
            self.record(frame_idx, out.step, FaultKind::NanCorruption, idx as f64);
        }

        Some(out)
    }

    fn record(&mut self, frame: u64, step: u64, kind: FaultKind, value: f64) {
        self.counts[kind.index()] += 1;
        // Rolling FNV-1a over the record so full-run equality is checkable
        // even after the trace buffer saturates.
        for word in [frame, step, kind.index() as u64, value.to_bits()] {
            for byte in word.to_le_bytes() {
                self.digest ^= byte as u64;
                self.digest = self.digest.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        if self.trace.len() < MAX_TRACE {
            self.trace.push(FaultRecord {
                frame,
                step,
                kind,
                value,
            });
        }
    }

    /// Fault counts by [`FaultKind::index`].
    pub fn counts(&self) -> [u64; 5] {
        self.counts
    }

    /// Recorded faults (capped at an internal limit; see [`Self::digest`]).
    pub fn trace(&self) -> &[FaultRecord] {
        &self.trace
    }

    /// Rolling digest over every fault ever recorded.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Renders the trace one fault per line, for byte-comparison in tests
    /// and reproducibility audits.
    pub fn format_trace(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for r in &self.trace {
            let _ = writeln!(
                s,
                "frame={} step={} kind={} value={}",
                r.frame,
                r.step,
                r.kind.name(),
                r.value
            );
        }
        s
    }

    /// Snapshot of the resumable state (random stream + burst progress).
    pub fn state(&self) -> InjectorState {
        InjectorState {
            rng_state: self.rng.state,
            noise_left: self.noise_left,
            blackout_left: self.blackout_left,
            frames_seen: self.frames_seen,
        }
    }

    /// Restores a snapshot taken with [`Self::state`]. The latency delay
    /// buffer restarts empty and refills within `latency_steps` frames.
    pub fn restore(&mut self, state: InjectorState) {
        self.rng.state = state.rng_state;
        self.noise_left = state.noise_left;
        self.blackout_left = state.blackout_left;
        self.frames_seen = state.frames_seen;
        self.delay.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ObservedState;
    use proptest::prelude::*;
    use traffic_sim::VehicleId;

    fn mk_frame(step: u64, observed: Vec<ObservedState>) -> SensorFrame {
        let ego = ObservedState {
            id: VehicleId(0),
            lane: 2,
            pos: 100.0 + step as f64,
            vel: 20.0,
        };
        SensorFrame {
            step,
            ego,
            observed,
        }
    }

    fn mk_obs(id: u64, lane: usize, pos: f64, vel: f64) -> ObservedState {
        ObservedState {
            id: VehicleId(id),
            lane,
            pos,
            vel,
        }
    }

    fn synthetic_frames(n: u64) -> Vec<SensorFrame> {
        (0..n)
            .map(|step| {
                let obs = (1..4)
                    .map(|k| {
                        mk_obs(
                            k,
                            (k as usize) % 4,
                            120.0 + step as f64 + 8.0 * k as f64,
                            19.0,
                        )
                    })
                    .collect();
                mk_frame(step, obs)
            })
            .collect()
    }

    /// NaN-safe bit signature of a delivered frame.
    fn signature(frame: &Option<SensorFrame>) -> Vec<(u64, usize, u64, u64)> {
        match frame {
            None => vec![(u64::MAX, 0, 0, 0)],
            Some(f) => f
                .observed
                .iter()
                .map(|o| (o.id.0, o.lane, o.pos.to_bits(), o.vel.to_bits()))
                .collect(),
        }
    }

    #[test]
    fn same_seed_same_trace_and_output() {
        let frames = synthetic_frames(300);
        let mut a = FaultInjector::new(FaultProfile::heavy(), 42);
        let mut b = FaultInjector::new(FaultProfile::heavy(), 42);
        for f in &frames {
            let out_a = a.apply(f.clone());
            let out_b = b.apply(f.clone());
            assert_eq!(signature(&out_a), signature(&out_b));
        }
        assert_eq!(a.format_trace(), b.format_trace());
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.counts(), b.counts());
        assert!(
            a.counts().iter().sum::<u64>() > 0,
            "heavy profile must fire"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let frames = synthetic_frames(300);
        let mut a = FaultInjector::new(FaultProfile::heavy(), 1);
        let mut b = FaultInjector::new(FaultProfile::heavy(), 2);
        for f in &frames {
            let _ = a.apply(f.clone());
            let _ = b.apply(f.clone());
        }
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn schedule_window_gates_faults() {
        let profile = FaultProfile {
            blackout_rate: 1.0,
            blackout_len: 1,
            active_from: 10,
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 7);
        for f in synthetic_frames(20) {
            let idx = f.step;
            let out = inj.apply(f);
            if idx < 10 {
                assert!(out.is_some(), "inactive window must pass frames through");
            } else {
                assert!(out.is_none(), "active window with rate 1.0 must black out");
            }
        }
    }

    #[test]
    fn blackout_swallows_following_frames() {
        let profile = FaultProfile {
            blackout_rate: 1.0,
            blackout_len: 3,
            active_until: 1, // only the first frame can *start* one
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 3);
        let outs: Vec<bool> = synthetic_frames(6)
            .into_iter()
            .map(|f| inj.apply(f).is_none())
            .collect();
        // Frame 0 starts a 3-frame blackout; continuation frames fall outside
        // the window, so only the start frame is swallowed.
        assert_eq!(outs, vec![true, false, false, false, false, false]);

        let profile = FaultProfile {
            blackout_rate: 1.0,
            blackout_len: 3,
            active_until: 2, // frame 1 is a continuation inside the window
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 3);
        let outs: Vec<bool> = synthetic_frames(6)
            .into_iter()
            .map(|f| inj.apply(f).is_none())
            .collect();
        assert_eq!(outs, vec![true, true, false, false, false, false]);
    }

    #[test]
    fn full_dropout_empties_sweeps() {
        let profile = FaultProfile {
            dropout_rate: 1.0,
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 5);
        for f in synthetic_frames(10) {
            let out = inj.apply(f).expect("dropout never blacks out");
            assert!(out.observed.is_empty());
        }
        assert_eq!(inj.counts()[FaultKind::Dropout.index()], 10);
    }

    #[test]
    fn latency_delivers_stale_detections_restamped() {
        let profile = FaultProfile {
            latency_rate: 1.0,
            latency_steps: 2,
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 11);
        let frames = synthetic_frames(8);
        for (i, f) in frames.iter().enumerate() {
            let out = inj.apply(f.clone()).expect("latency never blacks out");
            assert_eq!(
                out.step, f.step,
                "delivered frame keeps the current step stamp"
            );
            if i >= 2 {
                assert_eq!(
                    out.observed,
                    frames[i - 2].observed,
                    "warm buffer delivers the sweep from latency_steps ago"
                );
            }
        }
        assert!(inj.counts()[FaultKind::Latency.index()] >= 6);
    }

    #[test]
    fn nan_corruption_poisons_one_field() {
        let profile = FaultProfile {
            nan_rate: 1.0,
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 13);
        let out = inj
            .apply(synthetic_frames(1).remove(0))
            .expect("nan never blacks out");
        let poisoned = out
            .observed
            .iter()
            .filter(|o| o.pos.is_nan() || o.vel.is_nan())
            .count();
        assert_eq!(poisoned, 1);
    }

    #[test]
    fn state_restore_replays_identical_faults() {
        // No latency in this profile: the delay buffer is intentionally not
        // part of the snapshot.
        let profile = FaultProfile {
            dropout_rate: 0.3,
            noise_rate: 0.2,
            noise_burst: 3,
            pos_sigma: 1.0,
            vel_sigma: 0.5,
            blackout_rate: 0.1,
            blackout_len: 2,
            ..FaultProfile::none()
        };
        let frames = synthetic_frames(200);
        let mut a = FaultInjector::new(profile, 99);
        for f in &frames[..100] {
            let _ = a.apply(f.clone());
        }
        let snap = a.state();
        let mark = a.trace().len();
        for f in &frames[100..] {
            let _ = a.apply(f.clone());
        }
        let tail_a: Vec<FaultRecord> = a.trace()[mark..].to_vec();

        let mut b = FaultInjector::new(profile, 0);
        b.restore(snap);
        for f in &frames[100..] {
            let _ = b.apply(f.clone());
        }
        assert_eq!(b.trace(), tail_a.as_slice());
    }

    #[test]
    fn preset_lookup() {
        assert!(FaultProfile::from_name("none").expect("preset").is_noop());
        assert!(!FaultProfile::from_name("heavy").expect("preset").is_noop());
        assert_eq!(
            FaultProfile::from_name("blackout"),
            Some(FaultProfile::blackout_heavy())
        );
        assert_eq!(FaultProfile::from_name("bogus"), None);
    }

    proptest! {
        #[test]
        fn zero_profile_is_bitwise_noop(
            raw in prop::collection::vec((0usize..6, 0.0f64..2000.0, 0.0f64..40.0), 1..20),
        ) {
            let observed: Vec<ObservedState> = raw
                .iter()
                .enumerate()
                .map(|(i, &(lane, pos, vel))| mk_obs(i as u64 + 1, lane, pos, vel))
                .collect();
            let frame = mk_frame(17, observed);
            let mut inj = FaultInjector::new(FaultProfile::none(), 1234);
            let before = inj.state();
            let out = inj.apply(frame.clone()).expect("noop profile never blacks out");
            prop_assert_eq!(out.step, frame.step);
            prop_assert_eq!(signature(&Some(out)), signature(&Some(frame)));
            // Zero rates draw nothing: the stream position is untouched.
            prop_assert_eq!(inj.state().rng_state, before.rng_state);
        }
    }
}
