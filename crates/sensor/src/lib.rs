//! # sensor — onboard perception front-end
//!
//! Models the sensor limitations the HEAD paper builds its enhanced
//! perception module around (§III-A):
//!
//! * **Limited detection range** — only vehicles within a Euclidean radius
//!   `R` of the ego (100 m in the paper) are returned.
//! * **Occlusion** — a vehicle is invisible when the straight line of sight
//!   from the ego's body centre to the vehicle's body centre passes through
//!   another vehicle's body rectangle (axis-aligned in road coordinates).
//!
//! The crate also provides [`SensorHistory`], the rolling `z`-step frame
//! buffer the state-prediction model consumes, including the constant-
//! velocity backfill used when a vehicle has been visible for fewer than
//! `z` steps.

//! For robustness experiments, [`FaultInjector`] wraps the sweep with
//! deterministic, seeded fault injection (dropout, noise bursts, latency,
//! blackouts, NaN corruption) configured by a [`FaultProfile`].

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod faults;
mod history;
mod model;

pub use faults::{FaultInjector, FaultKind, FaultProfile, FaultRecord, FaultRng, InjectorState};
pub use history::{SensorHistory, VehicleTrack};
pub use model::{sense, ObservedState, SensorConfig, SensorFrame};
