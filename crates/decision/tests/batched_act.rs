//! Batched greedy action selection must be **bit-identical** to the
//! per-state path for every learner.
//!
//! The serve batcher and the perf harness's batched-inference gate route
//! through [`PamdpAgent::act_batch_greedy`], which runs one wide
//! `(batch, features)` forward pass instead of `batch` skinny ones. That
//! substitution is only sound because every graph op treats rows
//! independently and the GEMM micro-kernel accumulates each output element
//! in a fixed ascending-k order — so row `i` of the wide pass carries the
//! same bits as a batch-1 pass over `states[i]`. This test pins that
//! contract across all five agents.

use decision::{
    Action, AgentConfig, AugmentedState, BpDqn, DiscreteDqn, LinearSchedule, PDdpg, PDqn, PQp,
    PamdpAgent, CURRENT_ROWS, FUTURE_ROWS, ROW_DIM,
};

/// Deterministic, varied, finite states (no RNG needed: any fixed inputs
/// exercise the bit-equality contract).
fn varied_states(n: usize) -> Vec<AugmentedState> {
    (0..n)
        .map(|i| {
            let mut s = AugmentedState::zeros();
            for (r, row) in s.current.iter_mut().enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = ((i * CURRENT_ROWS + r) as f64 * 0.7 + c as f64 * 1.3).sin() * 20.0;
                }
            }
            for (r, row) in s.future.iter_mut().enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = ((i * FUTURE_ROWS + r) as f64 * 1.1 - c as f64 * 0.9).cos() * 15.0;
                }
            }
            debug_assert_eq!(ROW_DIM, 4);
            s
        })
        .collect()
}

fn assert_actions_bit_equal(
    name: &str,
    single: &[(Action, [f32; 6])],
    batched: &[(Action, [f32; 6])],
) {
    assert_eq!(single.len(), batched.len(), "{name}: length mismatch");
    for (i, (s, b)) in single.iter().zip(batched).enumerate() {
        assert_eq!(
            s.0.behaviour, b.0.behaviour,
            "{name}: behaviour diverges at state {i}"
        );
        assert_eq!(
            s.0.accel.to_bits(),
            b.0.accel.to_bits(),
            "{name}: accel bits diverge at state {i}: {} vs {}",
            s.0.accel,
            b.0.accel
        );
        for (j, (sv, bv)) in s.1.iter().zip(&b.1).enumerate() {
            assert_eq!(
                sv.to_bits(),
                bv.to_bits(),
                "{name}: param[{j}] bits diverge at state {i}: {sv} vs {bv}"
            );
        }
    }
}

fn check_agent(agent: &mut dyn PamdpAgent) {
    let states = varied_states(7);
    let refs: Vec<&AugmentedState> = states.iter().collect();
    // Per-state greedy reference first: batching must not perturb it
    // (greedy passes advance no exploration counters).
    let single: Vec<(Action, [f32; 6])> = states.iter().map(|s| agent.act(s, false)).collect();
    let batched = agent.act_batch_greedy(&refs);
    assert_actions_bit_equal(agent.name(), &single, &batched);
    // And batch-of-1 must match too (degenerate batch path).
    let one = agent.act_batch_greedy(&refs[..1]);
    assert_actions_bit_equal(agent.name(), &single[..1], &one);
    assert!(agent.act_batch_greedy(&[]).is_empty());
}

fn quick_cfg(seed: u64) -> AgentConfig {
    AgentConfig {
        epsilon: LinearSchedule::new(1.0, 0.05, 600),
        noise: LinearSchedule::new(1.0, 0.1, 600),
        seed,
        ..AgentConfig::default()
    }
}

#[test]
fn batched_greedy_actions_bit_identical_across_all_agents() {
    check_agent(&mut BpDqn::new(quick_cfg(101)));
    check_agent(&mut PDqn::new(quick_cfg(102)));
    check_agent(&mut PDdpg::new(quick_cfg(103)));
    check_agent(&mut PQp::new(quick_cfg(104)));
    check_agent(&mut DiscreteDqn::new(quick_cfg(105)));
}
