//! Property tests for the hybrid reward: component bounds, weight
//! linearity and masking invariants must hold for arbitrary inputs.

use decision::{RewardConfig, RewardInput};
use proptest::prelude::*;

fn input_strategy() -> impl Strategy<Value = RewardInput> {
    (
        any::<bool>(),
        prop::option::of(0.0f64..200.0),
        prop::option::of(-30.0f64..30.0),
        any::<bool>(),
        0.0f64..25.0,
        -3.0f64..3.0,
        -3.0f64..3.0,
        prop::option::of(0.0f64..25.0),
        prop::option::of(0.0f64..25.0),
        any::<bool>(),
    )
        .prop_map(
            |(
                collision,
                front_gap,
                front_v_rel,
                front_is_phantom,
                ego_vel_next,
                accel,
                prev_accel,
                rear_vel_now,
                rear_vel_next,
                rear_is_phantom,
            )| {
                RewardInput {
                    collision,
                    front_gap,
                    front_v_rel,
                    front_is_phantom,
                    ego_vel_next,
                    accel,
                    prev_accel,
                    rear_vel_now,
                    rear_vel_next,
                    rear_is_phantom,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn components_stay_in_paper_bounds(input in input_strategy()) {
        let parts = RewardConfig::default().evaluate(&input);
        prop_assert!((-3.0..=0.0).contains(&parts.safety), "safety {}", parts.safety);
        prop_assert!((0.0..=1.0).contains(&parts.efficiency));
        prop_assert!((-1.0..=0.0).contains(&parts.comfort));
        prop_assert!((-1.0..=0.0).contains(&parts.impact));
        prop_assert!(parts.total.is_finite());
    }

    #[test]
    fn total_is_linear_in_weights(input in input_strategy(), s in 0.1f64..3.0) {
        let base = RewardConfig::default();
        let scaled = RewardConfig {
            w_safety: base.w_safety * s,
            w_efficiency: base.w_efficiency * s,
            w_comfort: base.w_comfort * s,
            w_impact: base.w_impact * s,
            ..base
        };
        let a = base.evaluate(&input);
        let b = scaled.evaluate(&input);
        prop_assert!((b.total - s * a.total).abs() < 1e-9);
        // Components themselves are weight-independent.
        prop_assert_eq!(a.safety, b.safety);
        prop_assert_eq!(a.impact, b.impact);
    }

    #[test]
    fn collision_dominates_safety(mut input in input_strategy()) {
        input.collision = true;
        let parts = RewardConfig::default().evaluate(&input);
        prop_assert_eq!(parts.safety, -3.0);
    }

    #[test]
    fn phantoms_mask_their_terms(mut input in input_strategy()) {
        input.collision = false;
        input.front_is_phantom = true;
        input.rear_is_phantom = true;
        let parts = RewardConfig::default().evaluate(&input);
        prop_assert_eq!(parts.safety, 0.0);
        prop_assert_eq!(parts.impact, 0.0);
    }

    #[test]
    fn impact_zero_weight_removes_impact_from_total(input in input_strategy()) {
        let base = RewardConfig::default();
        let no_imp = RewardConfig { w_impact: 0.0, ..base };
        let a = base.evaluate(&input);
        let b = no_imp.evaluate(&input);
        prop_assert!((a.total - b.total - base.w_impact * a.impact).abs() < 1e-9);
    }

    #[test]
    fn faster_is_never_less_efficient(input in input_strategy(), dv in 0.0f64..10.0) {
        let cfg = RewardConfig::default();
        let slow = cfg.evaluate(&input);
        let mut faster = input;
        faster.ego_vel_next += dv;
        let fast = cfg.evaluate(&faster);
        prop_assert!(fast.efficiency >= slow.efficiency - 1e-12);
    }
}
