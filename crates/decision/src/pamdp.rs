//! The Parameterized Action Markov Decision Process (paper §IV-A).
//!
//! * **Augmented state** `s⁺ = [hᵗ, f̂ᵗ⁺¹]` — the current states of the ego
//!   and its six targets plus the *predicted* next states of the targets
//!   (Eqs. 15–16).
//! * **Parameterized action** `ac = (b, a)` — a discrete lateral behaviour
//!   `b ∈ {ll, lr, lk}` paired with a continuous longitudinal acceleration
//!   `a ∈ [-a', a']` (Eq. 17).

use nn::{narrow, Matrix};
use serde::{Deserialize, Serialize};

/// Number of vehicles in the current-state block (ego + 6 targets).
pub const CURRENT_ROWS: usize = 7;
/// Number of vehicles in the future-state block (6 targets).
pub const FUTURE_ROWS: usize = 6;
/// Feature width per vehicle row.
pub const ROW_DIM: usize = 4;
/// Width of the flattened augmented state.
pub const STATE_DIM: usize = (CURRENT_ROWS + FUTURE_ROWS) * ROW_DIM;
/// Number of discrete lateral behaviours.
pub const NUM_BEHAVIOURS: usize = 3;

/// Discrete lateral lane-change behaviour, in the paper's `x_out` order
/// `[ll, lr, lk]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaneBehaviour {
    /// Change lane to the left (`ll`).
    Left,
    /// Change lane to the right (`lr`).
    Right,
    /// Keep lane (`lk`).
    Keep,
}

impl LaneBehaviour {
    /// Index in network outputs.
    pub fn index(self) -> usize {
        match self {
            LaneBehaviour::Left => 0,
            LaneBehaviour::Right => 1,
            LaneBehaviour::Keep => 2,
        }
    }

    /// Inverse of [`LaneBehaviour::index`].
    pub fn from_index(i: usize) -> Self {
        match i {
            0 => LaneBehaviour::Left,
            1 => LaneBehaviour::Right,
            2 => LaneBehaviour::Keep,
            // lint:allow(panic, serve-reachability) callers index with argmax over NUM_BEHAVIOURS network heads
            _ => panic!("behaviour index {i} out of range"),
        }
    }

    /// All behaviours in index order.
    pub const ALL: [LaneBehaviour; NUM_BEHAVIOURS] = [
        LaneBehaviour::Left,
        LaneBehaviour::Right,
        LaneBehaviour::Keep,
    ];
}

/// A parameterized action: discrete behaviour + continuous acceleration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Action {
    /// Lateral behaviour.
    pub behaviour: LaneBehaviour,
    /// Longitudinal acceleration, m/s².
    pub accel: f64,
}

/// The augmented state `s⁺` (raw physical units; scaling happens at the
/// network boundary via [`StateScale`]).
///
/// `current[0]` is the ego's raw `[lat, lon, v, 0]` (1-based lane number);
/// `current[1..7]` are the six targets' `[d_lat, d_lon, v_rel, IF]`;
/// `future[0..6]` are the predicted `[d̂_lat, d̂_lon, v̂_rel, IF]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AugmentedState {
    /// Current-state block `hᵗ`.
    pub current: [[f64; ROW_DIM]; CURRENT_ROWS],
    /// Future-state block `f̂ᵗ⁺¹`.
    pub future: [[f64; ROW_DIM]; FUTURE_ROWS],
}

impl AugmentedState {
    /// An all-zero state (used as the padding for terminal transitions).
    pub fn zeros() -> Self {
        Self {
            current: [[0.0; ROW_DIM]; CURRENT_ROWS],
            future: [[0.0; ROW_DIM]; FUTURE_ROWS],
        }
    }
}

/// Normalisation constants applied when states enter a network.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StateScale {
    /// Scale for raw lane numbers (κ + 1).
    pub lat: f64,
    /// Scale for raw longitudinal positions (road length), m.
    pub lon: f64,
    /// Scale for velocities (speed limit), m/s.
    pub vel: f64,
    /// Scale for relative lateral offsets, m.
    pub d_lat: f64,
    /// Scale for relative longitudinal offsets (sensor radius), m.
    pub d_lon: f64,
}

impl StateScale {
    /// The paper's environment: 6 lanes × 3.2 m, 3 km road, 25 m/s limit,
    /// 100 m sensor radius.
    pub fn paper_default() -> Self {
        Self {
            lat: 7.0,
            lon: 3000.0,
            vel: 25.0,
            d_lat: 7.0 * 3.2,
            d_lon: 100.0,
        }
    }

    fn scale_rel(&self, row: &[f64; ROW_DIM]) -> [f32; ROW_DIM] {
        [
            narrow(row[0] / self.d_lat),
            narrow(row[1] / self.d_lon),
            narrow(row[2] / self.vel),
            row[3] as f32,
        ]
    }

    fn scale_ego(&self, row: &[f64; ROW_DIM]) -> [f32; ROW_DIM] {
        [
            narrow(row[0] / self.lat),
            narrow(row[1] / self.lon),
            narrow(row[2] / self.vel),
            row[3] as f32,
        ]
    }

    /// The current block as a `CURRENT_ROWS x ROW_DIM` matrix.
    pub fn current_matrix(&self, s: &AugmentedState) -> Matrix {
        let mut data = Vec::with_capacity(CURRENT_ROWS * ROW_DIM);
        data.extend_from_slice(&self.scale_ego(&s.current[0]));
        for row in &s.current[1..] {
            data.extend_from_slice(&self.scale_rel(row));
        }
        Matrix::from_vec(CURRENT_ROWS, ROW_DIM, data)
    }

    /// The future block as a `FUTURE_ROWS x ROW_DIM` matrix.
    pub fn future_matrix(&self, s: &AugmentedState) -> Matrix {
        let mut data = Vec::with_capacity(FUTURE_ROWS * ROW_DIM);
        for row in &s.future {
            data.extend_from_slice(&self.scale_rel(row));
        }
        Matrix::from_vec(FUTURE_ROWS, ROW_DIM, data)
    }

    /// The whole state as one `1 x STATE_DIM` row (for flat-input nets).
    pub fn flat_row(&self, s: &AugmentedState) -> Vec<f32> {
        let mut data = Vec::with_capacity(STATE_DIM);
        data.extend_from_slice(self.current_matrix(s).data());
        data.extend_from_slice(self.future_matrix(s).data());
        data
    }

    /// Stacks many states into a `(batch * CURRENT_ROWS) x ROW_DIM` matrix
    /// (the layout the branched nets reshape from).
    pub fn current_batch(&self, states: &[&AugmentedState]) -> Matrix {
        let mut data = Vec::with_capacity(states.len() * CURRENT_ROWS * ROW_DIM);
        for s in states {
            data.extend_from_slice(self.current_matrix(s).data());
        }
        Matrix::from_vec(states.len() * CURRENT_ROWS, ROW_DIM, data)
    }

    /// Stacks many states into a `(batch * FUTURE_ROWS) x ROW_DIM` matrix.
    pub fn future_batch(&self, states: &[&AugmentedState]) -> Matrix {
        let mut data = Vec::with_capacity(states.len() * FUTURE_ROWS * ROW_DIM);
        for s in states {
            data.extend_from_slice(self.future_matrix(s).data());
        }
        Matrix::from_vec(states.len() * FUTURE_ROWS, ROW_DIM, data)
    }

    /// Stacks many states into a `batch x STATE_DIM` matrix.
    pub fn flat_batch(&self, states: &[&AugmentedState]) -> Matrix {
        let mut data = Vec::with_capacity(states.len() * STATE_DIM);
        for s in states {
            data.extend(self.flat_row(s));
        }
        Matrix::from_vec(states.len(), STATE_DIM, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_state() -> AugmentedState {
        let mut s = AugmentedState::zeros();
        s.current[0] = [3.0, 1500.0, 20.0, 0.0];
        s.current[1] = [-3.2, 40.0, -5.0, 0.0];
        s.future[0] = [-3.2, 37.5, -5.0, 0.0];
        s
    }

    #[test]
    fn behaviour_index_roundtrip() {
        for b in LaneBehaviour::ALL {
            assert_eq!(LaneBehaviour::from_index(b.index()), b);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_behaviour_index_panics() {
        let _ = LaneBehaviour::from_index(3);
    }

    #[test]
    fn matrices_have_paper_shapes() {
        let scale = StateScale::paper_default();
        let s = demo_state();
        assert_eq!(scale.current_matrix(&s).shape(), (7, 4));
        assert_eq!(scale.future_matrix(&s).shape(), (6, 4));
        assert_eq!(scale.flat_row(&s).len(), STATE_DIM);
        assert_eq!(STATE_DIM, 52);
    }

    #[test]
    fn scaling_keeps_magnitudes_order_one() {
        let scale = StateScale::paper_default();
        let s = demo_state();
        for &v in scale.current_matrix(&s).data() {
            assert!(v.abs() <= 1.0 + 1e-6, "{v}");
        }
    }

    #[test]
    fn ego_row_uses_raw_scaling() {
        let scale = StateScale::paper_default();
        let s = demo_state();
        let m = scale.current_matrix(&s);
        assert!((m.get(0, 0) - 3.0 / 7.0).abs() < 1e-6);
        assert!((m.get(0, 1) - 0.5).abs() < 1e-6);
        // Target row uses relative scaling.
        assert!((m.get(1, 1) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn batch_layout_is_row_blocked() {
        let scale = StateScale::paper_default();
        let a = demo_state();
        let mut b = demo_state();
        b.current[0][2] = 10.0;
        let batch = scale.current_batch(&[&a, &b]);
        assert_eq!(batch.shape(), (14, 4));
        assert_eq!(batch.get(0, 2), scale.current_matrix(&a).get(0, 2));
        assert_eq!(batch.get(7, 2), scale.current_matrix(&b).get(0, 2));
    }
}
