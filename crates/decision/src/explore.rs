//! Exploration schedules: linear ε-decay for the discrete behaviour and
//! decaying Gaussian noise for the continuous action-parameter.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Standard-normal sample via the Box–Muller transform (avoids pulling in
/// a distributions crate for one function).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A linearly decaying exploration value.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinearSchedule {
    /// Initial value.
    pub start: f64,
    /// Final value.
    pub end: f64,
    /// Steps over which the value decays from `start` to `end`.
    pub decay_steps: usize,
}

impl LinearSchedule {
    /// Creates a schedule.
    pub fn new(start: f64, end: f64, decay_steps: usize) -> Self {
        Self {
            start,
            end,
            decay_steps,
        }
    }

    /// Value at step `t`.
    pub fn value(&self, t: usize) -> f64 {
        if self.decay_steps == 0 || t >= self.decay_steps {
            return self.end;
        }
        let frac = t as f64 / self.decay_steps as f64;
        self.start + (self.end - self.start) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decays_linearly_then_clamps() {
        let s = LinearSchedule::new(1.0, 0.1, 100);
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(50) - 0.55).abs() < 1e-12);
        assert_eq!(s.value(100), 0.1);
        assert_eq!(s.value(10_000), 0.1);
    }

    #[test]
    fn zero_decay_steps_is_constant_end() {
        let s = LinearSchedule::new(1.0, 0.2, 0);
        assert_eq!(s.value(0), 0.2);
    }

    #[test]
    fn increasing_schedules_also_work() {
        let s = LinearSchedule::new(0.0, 1.0, 10);
        assert!((s.value(5) - 0.5).abs() < 1e-12);
    }
}
