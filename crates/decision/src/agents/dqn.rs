//! Discrete double-free DQN over a coarse 9-action grid (3 lane behaviours
//! × 3 acceleration levels). This is the decision core of the paper's
//! DRL-SC end-to-end baseline (Nageshrao et al. 2019): deep RL with
//! *discrete* actions; the safety-check wrapper lives in the `head` crate.

use crate::agents::bpdqn::argmax;
use crate::agents::{AgentConfig, AgentTapes, LearnStats, PamdpAgent};
use crate::pamdp::{Action, AugmentedState, LaneBehaviour, STATE_DIM};
use crate::replay::{ReplayBuffer, Transition};
use nn::{Adam, Matrix, Mlp, ParamStore};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// The discrete action grid: every lane behaviour paired with
/// brake / hold / full acceleration (scaled by `a'`).
pub const DISCRETE_ACTIONS: [(LaneBehaviour, f64); 9] = [
    (LaneBehaviour::Left, -1.0),
    (LaneBehaviour::Left, 0.0),
    (LaneBehaviour::Left, 1.0),
    (LaneBehaviour::Keep, -1.0),
    (LaneBehaviour::Keep, 0.0),
    (LaneBehaviour::Keep, 1.0),
    (LaneBehaviour::Right, -1.0),
    (LaneBehaviour::Right, 0.0),
    (LaneBehaviour::Right, 1.0),
];

/// A plain DQN over [`DISCRETE_ACTIONS`].
pub struct DiscreteDqn {
    cfg: AgentConfig,
    store: ParamStore,
    net: Mlp,
    target: ParamStore,
    adam: Adam,
    replay: ReplayBuffer,
    tapes: AgentTapes,
    rng: ChaCha12Rng,
    act_steps: usize,
    since_learn: usize,
}

impl DiscreteDqn {
    /// Builds a freshly initialised learner.
    pub fn new(cfg: AgentConfig) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let net = Mlp::new(
            &mut store,
            "dqn",
            &[STATE_DIM, cfg.hidden, cfg.hidden, DISCRETE_ACTIONS.len()],
            &mut rng,
        );
        let target = store.clone();
        Self {
            adam: Adam::new(cfg.lr),
            replay: ReplayBuffer::new(cfg.replay_capacity),
            tapes: AgentTapes::new(),
            rng,
            act_steps: 0,
            since_learn: 0,
            cfg,
            store,
            net,
            target,
        }
    }

    /// Q-values of every discrete action for one state.
    pub fn q_values(&mut self, state: &AugmentedState) -> Vec<f32> {
        let mut out = self.q_values_batch(std::slice::from_ref(&state));
        out.swap_remove(0)
    }

    /// Q-values of every discrete action for a whole batch of states in one
    /// wide frozen pass; row `i` is bit-identical to the batch-1 pass for
    /// `states[i]` (every trunk op is row-independent).
    pub fn q_values_batch(&mut self, states: &[&AugmentedState]) -> Vec<Vec<f32>> {
        let n = states.len();
        if n == 0 {
            return Vec::new();
        }
        let mut g = std::mem::take(&mut self.tapes.act);
        g.reset();
        let s = g.input(self.cfg.scale.flat_batch(states));
        let q = self.net.forward_frozen(&mut g, &self.store, s);
        let out = (0..n).map(|i| g.value(q).row_slice(i).to_vec()).collect();
        self.tapes.act = g;
        out
    }

    /// Action corresponding to a discrete index.
    pub fn action_of(&self, index: usize) -> Action {
        let (behaviour, level) = DISCRETE_ACTIONS[index];
        Action {
            behaviour,
            accel: level * self.cfg.a_max,
        }
    }

    /// Index of the executed action in [`DISCRETE_ACTIONS`].
    fn index_of(&self, action: &Action) -> usize {
        let level = (action.accel / self.cfg.a_max).round();
        DISCRETE_ACTIONS
            .iter()
            .position(|&(b, l)| b == action.behaviour && (l - level).abs() < 0.5)
            .unwrap_or(4) // Keep / hold
    }
}

impl PamdpAgent for DiscreteDqn {
    fn name(&self) -> &'static str {
        "DQN"
    }

    fn act(&mut self, state: &AugmentedState, explore: bool) -> (Action, [f32; 6]) {
        let q = self.q_values(state);
        let mut chosen = argmax(&q);
        if explore {
            let eps = self.cfg.epsilon.value(self.act_steps);
            if self.rng.random::<f64>() < eps {
                chosen = self.rng.random_range(0..DISCRETE_ACTIONS.len());
            }
            self.act_steps += 1;
        }
        let action = self.action_of(chosen);
        // Per-behaviour acceleration slots mirror the executed action.
        let mut params = [0.0f32; 6];
        params[action.behaviour.index()] = action.accel as f32;
        (action, params)
    }

    fn act_batch_greedy(&mut self, states: &[&AugmentedState]) -> Vec<(Action, [f32; 6])> {
        telemetry::counter_add(
            telemetry::keys::NN_KERNEL_BATCHED_STATES,
            states.len() as u64,
        );
        self.q_values_batch(states)
            .into_iter()
            .map(|q| {
                let action = self.action_of(argmax(&q));
                let mut params = [0.0f32; 6];
                params[action.behaviour.index()] = action.accel as f32;
                (action, params)
            })
            .collect()
    }

    fn observe(&mut self, transition: Transition) {
        self.replay.push(transition);
        self.since_learn += 1;
    }

    fn learn(&mut self) -> Option<LearnStats> {
        if self.replay.len() < self.cfg.warmup.max(self.cfg.batch_size)
            || self.since_learn < self.cfg.update_every
        {
            return None;
        }
        self.since_learn = 0;
        let batch = self
            .replay
            .sample_batch(self.cfg.batch_size, &mut self.rng, &self.cfg.scale);
        let n = batch.len();
        let s_m = batch.states;
        let sn_m = batch.next_states;
        let batch = batch.items;

        let targets: Vec<f32> = {
            let mut g = std::mem::take(&mut self.tapes.target);
            g.reset();
            let sn = g.input(sn_m);
            let qn = self.net.forward_frozen(&mut g, &self.target, sn);
            let qn = g.value(qn);
            let targets = batch
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let max_q = qn
                        .row_slice(i)
                        .iter()
                        .cloned()
                        .fold(f32::NEG_INFINITY, f32::max);
                    t.reward as f32
                        + if t.terminal {
                            0.0
                        } else {
                            self.cfg.gamma * max_q
                        }
                })
                .collect();
            self.tapes.target = g;
            targets
        };

        let mut g = std::mem::take(&mut self.tapes.learn);
        g.reset();
        let s = g.input(s_m);
        let q = self.net.forward(&mut g, &self.store, s);
        let mut onehot = Matrix::zeros(n, DISCRETE_ACTIONS.len());
        for (i, t) in batch.iter().enumerate() {
            onehot.set(i, self.index_of(&t.action), 1.0);
        }
        let onehot = g.input(onehot);
        let masked = g.mul_elem(q, onehot);
        let ones = g.input(Matrix::full(DISCRETE_ACTIONS.len(), 1, 1.0));
        let q_sel = g.matmul(masked, ones);
        let y = g.input(Matrix::from_vec(n, 1, targets));
        let loss = g.mse(q_sel, y);
        self.store.zero_grad();
        let lv = g.backward(loss, &mut self.store);
        self.tapes.learn = g;
        self.store.clip_grad_norm(10.0);
        self.adam.step(&mut self.store);
        self.target.soft_update_from(&self.store, self.cfg.tau);
        Some(LearnStats {
            q_loss: lv as f64,
            x_loss: 0.0,
        })
    }

    fn param_count(&self) -> usize {
        self.store.scalar_count()
    }

    fn save_json(&self) -> String {
        self.store.to_json()
    }

    fn load_json(&mut self, json: &str) -> Result<(), serde_json::Error> {
        let restored = ParamStore::from_json(json)?;
        self.store
            .shapes_match(&restored)
            .map_err(crate::agents::shape_error)?;
        self.store.copy_values_from(&restored);
        self.target.copy_values_from(&restored);
        Ok(())
    }

    fn weights_are_finite(&self) -> bool {
        self.store.values_are_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::test_support::toy_training_curve;
    use crate::explore::LinearSchedule;

    fn quick_cfg(seed: u64) -> AgentConfig {
        AgentConfig {
            warmup: 64,
            epsilon: LinearSchedule::new(1.0, 0.05, 600),
            noise: LinearSchedule::new(0.0, 0.0, 1),
            seed,
            ..AgentConfig::default()
        }
    }

    #[test]
    fn improves_on_toy_problem() {
        let mut agent = DiscreteDqn::new(quick_cfg(41));
        let (first, last) = toy_training_curve(&mut agent, 60, 41);
        assert!(last > first + 1.0, "DQN did not improve: {first} -> {last}");
    }

    #[test]
    fn action_grid_roundtrip() {
        let agent = DiscreteDqn::new(quick_cfg(42));
        for i in 0..DISCRETE_ACTIONS.len() {
            let a = agent.action_of(i);
            assert_eq!(agent.index_of(&a), i);
        }
    }

    #[test]
    fn actions_only_from_grid() {
        let mut agent = DiscreteDqn::new(quick_cfg(43));
        let s = AugmentedState::zeros();
        for _ in 0..40 {
            let (a, _) = agent.act(&s, true);
            assert!(
                [-3.0, 0.0, 3.0].contains(&a.accel),
                "discrete accel {} not on grid",
                a.accel
            );
        }
    }
}
