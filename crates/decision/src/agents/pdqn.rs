//! P-DQN — Parameterized Deep Q-Network (Xiong et al. 2018), the paper's
//! strongest comparison method and the optimisation paradigm BP-DQN builds
//! on. In contrast to BP-DQN, both networks are **single-trunk MLPs over
//! the flattened augmented state**, sharing weights between differently
//! scaled inputs — exactly the structural weakness (wrong weight sharing)
//! the paper's branched variant removes.

use crate::agents::bpdqn::argmax;
use crate::agents::{AgentConfig, AgentTapes, LearnStats, PamdpAgent};
use crate::pamdp::{Action, AugmentedState, LaneBehaviour, NUM_BEHAVIOURS, STATE_DIM};
use crate::replay::{ReplayBuffer, Transition};
use nn::{Adam, Matrix, Mlp, ParamStore};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use telemetry::keys;

/// The P-DQN learner.
pub struct PDqn {
    cfg: AgentConfig,
    x_store: ParamStore,
    x_net: Mlp,
    q_store: ParamStore,
    q_net: Mlp,
    x_target: ParamStore,
    q_target: ParamStore,
    adam_x: Adam,
    adam_q: Adam,
    replay: ReplayBuffer,
    tapes: AgentTapes,
    rng: ChaCha12Rng,
    act_steps: usize,
    since_learn: usize,
}

impl PDqn {
    /// Builds a freshly initialised learner.
    pub fn new(cfg: AgentConfig) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let mut x_store = ParamStore::new();
        let x_net = Mlp::new(
            &mut x_store,
            "x",
            &[STATE_DIM, cfg.hidden, cfg.hidden, NUM_BEHAVIOURS],
            &mut rng,
        );
        let mut q_store = ParamStore::new();
        let q_net = Mlp::new(
            &mut q_store,
            "q",
            &[
                STATE_DIM + NUM_BEHAVIOURS,
                cfg.hidden,
                cfg.hidden,
                NUM_BEHAVIOURS,
            ],
            &mut rng,
        );
        let x_target = x_store.clone();
        let q_target = q_store.clone();
        Self {
            adam_x: Adam::new(cfg.lr),
            adam_q: Adam::new(cfg.lr),
            replay: ReplayBuffer::new(cfg.replay_capacity),
            tapes: AgentTapes::new(),
            rng,
            act_steps: 0,
            since_learn: 0,
            cfg,
            x_store,
            x_net,
            q_store,
            q_net,
            x_target,
            q_target,
        }
    }

    fn evaluate_state(&mut self, state: &AugmentedState) -> ([f32; 3], [f32; 3]) {
        let mut out = self.evaluate_states(std::slice::from_ref(&state));
        out.swap_remove(0)
    }

    /// One wide frozen pass over a batch of states; row `i` is
    /// bit-identical to the batch-1 pass for `states[i]` (all trunk ops
    /// are row-independent).
    fn evaluate_states(&mut self, states: &[&AugmentedState]) -> Vec<([f32; 3], [f32; 3])> {
        let n = states.len();
        if n == 0 {
            return Vec::new();
        }
        let mut g = std::mem::take(&mut self.tapes.act);
        g.reset();
        let s = g.input(self.cfg.scale.flat_batch(states));
        let x = self.x_net.forward_frozen(&mut g, &self.x_store, s);
        let x = g.tanh(x);
        let x = g.scale(x, self.cfg.a_max as f32);
        let sq = g.concat_cols(s, x);
        let q = self.q_net.forward_frozen(&mut g, &self.q_store, sq);
        let out = (0..n)
            .map(|i| {
                let xr = g.value(x).row_slice(i);
                let qr = g.value(q).row_slice(i);
                ([xr[0], xr[1], xr[2]], [qr[0], qr[1], qr[2]])
            })
            .collect();
        self.tapes.act = g;
        out
    }
}

impl PamdpAgent for PDqn {
    fn name(&self) -> &'static str {
        "P-DQN"
    }

    fn act(&mut self, state: &AugmentedState, explore: bool) -> (Action, [f32; 6]) {
        let (mut params, q) = self.evaluate_state(state);
        let mut chosen = argmax(&q);
        if explore {
            let eps = self.cfg.epsilon.value(self.act_steps);
            if self.rng.random::<f64>() < eps {
                chosen = crate::agents::random_behaviour(&mut self.rng, self.cfg.explore_keep_bias);
            }
            let sigma = self.cfg.noise.value(self.act_steps);
            if sigma > 0.0 {
                let noise = sigma * crate::explore::standard_normal(&mut self.rng);
                params[chosen] =
                    (params[chosen] as f64 + noise).clamp(-self.cfg.a_max, self.cfg.a_max) as f32;
            }
            self.act_steps += 1;
        }
        let action = Action {
            behaviour: LaneBehaviour::from_index(chosen),
            accel: params[chosen] as f64,
        };
        (action, [params[0], params[1], params[2], 0.0, 0.0, 0.0])
    }

    fn act_batch_greedy(&mut self, states: &[&AugmentedState]) -> Vec<(Action, [f32; 6])> {
        telemetry::counter_add(keys::NN_KERNEL_BATCHED_STATES, states.len() as u64);
        self.evaluate_states(states)
            .into_iter()
            .map(|(params, q)| {
                let chosen = argmax(&q);
                let action = Action {
                    behaviour: LaneBehaviour::from_index(chosen),
                    accel: params[chosen] as f64,
                };
                (action, [params[0], params[1], params[2], 0.0, 0.0, 0.0])
            })
            .collect()
    }

    fn observe(&mut self, transition: Transition) {
        self.replay.push(transition);
        self.since_learn += 1;
    }

    fn learn(&mut self) -> Option<LearnStats> {
        if self.replay.len() < self.cfg.warmup.max(self.cfg.batch_size)
            || self.since_learn < self.cfg.update_every
        {
            return None;
        }
        let _learn_span = telemetry::span!(keys::SPAN_PDQN_LEARN);
        self.since_learn = 0;
        let batch = {
            let _sample_span = telemetry::span!(keys::SPAN_REPLAY_SAMPLE);
            self.replay
                .sample_batch(self.cfg.batch_size, &mut self.rng, &self.cfg.scale)
        };
        telemetry::gauge_set(keys::DECISION_REPLAY_OCCUPANCY, self.replay.len() as f64);
        let n = batch.len();
        let a_max = self.cfg.a_max as f32;

        let s_m = batch.states;
        let sn_m = batch.next_states;
        let batch = batch.items;

        let targets: Vec<f32> = {
            let mut g = std::mem::take(&mut self.tapes.target);
            g.reset();
            let sn = g.input(sn_m);
            let xp = self.x_net.forward_frozen(&mut g, &self.x_target, sn);
            let xp = g.tanh(xp);
            let xp = g.scale(xp, a_max);
            let snq = g.concat_cols(sn, xp);
            let qn = self.q_net.forward_frozen(&mut g, &self.q_target, snq);
            let qn = g.value(qn);
            let targets = batch
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let max_q = qn
                        .row_slice(i)
                        .iter()
                        .cloned()
                        .fold(f32::NEG_INFINITY, f32::max);
                    t.reward as f32
                        + if t.terminal {
                            0.0
                        } else {
                            self.cfg.gamma * max_q
                        }
                })
                .collect();
            self.tapes.target = g;
            targets
        };

        let q_loss = {
            let mut g = std::mem::take(&mut self.tapes.learn);
            g.reset();
            let s = g.input(s_m.clone());
            let mut params = Matrix::zeros(n, NUM_BEHAVIOURS);
            let mut onehot = Matrix::zeros(n, NUM_BEHAVIOURS);
            for (i, t) in batch.iter().enumerate() {
                for b in 0..NUM_BEHAVIOURS {
                    params.set(i, b, t.params[b]);
                }
                onehot.set(i, t.action.behaviour.index(), 1.0);
            }
            let params = g.input(params);
            let onehot = g.input(onehot);
            let sq = g.concat_cols(s, params);
            let q = self.q_net.forward(&mut g, &self.q_store, sq);
            let masked = g.mul_elem(q, onehot);
            let ones = g.input(Matrix::full(NUM_BEHAVIOURS, 1, 1.0));
            let q_sel = g.matmul(masked, ones);
            let y = g.input(Matrix::from_vec(n, 1, targets));
            let loss = g.mse(q_sel, y);
            self.q_store.zero_grad();
            let lv = g.backward(loss, &mut self.q_store);
            self.tapes.learn = g;
            self.q_store.clip_grad_norm(10.0);
            self.adam_q.step(&mut self.q_store);
            lv as f64
        };

        let x_loss = {
            let mut g = std::mem::take(&mut self.tapes.actor);
            g.reset();
            let s = g.input(s_m);
            let xo = self.x_net.forward(&mut g, &self.x_store, s);
            let xo = g.tanh(xo);
            let xo = g.scale(xo, a_max);
            let sq = g.concat_cols(s, xo);
            let qv = self.q_net.forward_frozen(&mut g, &self.q_store, sq);
            let total = g.sum_all(qv);
            let loss = g.scale(total, -1.0 / n as f32);
            self.x_store.zero_grad();
            let lv = g.backward(loss, &mut self.x_store);
            self.tapes.actor = g;
            self.x_store.clip_grad_norm(10.0);
            self.adam_x.step(&mut self.x_store);
            lv as f64
        };

        self.q_target.soft_update_from(&self.q_store, self.cfg.tau);
        self.x_target.soft_update_from(&self.x_store, self.cfg.tau);

        telemetry::histogram_record(keys::DECISION_Q_LOSS, q_loss);
        telemetry::histogram_record(keys::DECISION_X_LOSS, x_loss);
        Some(LearnStats { q_loss, x_loss })
    }

    fn param_count(&self) -> usize {
        self.x_store.scalar_count() + self.q_store.scalar_count()
    }

    fn save_json(&self) -> String {
        // lint:allow(panic, serve-reachability) serde_json::to_string on an in-memory store of names and floats cannot fail, even when reload snapshots it
        serde_json::to_string(&(&self.x_store, &self.q_store)).expect("serialisable")
    }

    fn load_json(&mut self, json: &str) -> Result<(), serde_json::Error> {
        let (x, q): (ParamStore, ParamStore) = serde_json::from_str(json)?;
        self.x_store
            .shapes_match(&x)
            .and_then(|()| self.q_store.shapes_match(&q))
            .map_err(crate::agents::shape_error)?;
        self.x_store.copy_values_from(&x);
        self.q_store.copy_values_from(&q);
        self.x_target.copy_values_from(&x);
        self.q_target.copy_values_from(&q);
        Ok(())
    }

    fn weights_are_finite(&self) -> bool {
        self.x_store.values_are_finite() && self.q_store.values_are_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::test_support::toy_training_curve;
    use crate::explore::LinearSchedule;

    fn quick_cfg(seed: u64) -> AgentConfig {
        AgentConfig {
            warmup: 64,
            epsilon: LinearSchedule::new(1.0, 0.05, 600),
            noise: LinearSchedule::new(1.0, 0.1, 600),
            seed,
            ..AgentConfig::default()
        }
    }

    #[test]
    fn improves_on_toy_problem() {
        let mut agent = PDqn::new(quick_cfg(11));
        let (first, last) = toy_training_curve(&mut agent, 60, 11);
        assert!(
            last > first + 1.0,
            "P-DQN did not improve: {first} -> {last}"
        );
    }

    #[test]
    fn accel_bounded_by_tanh_scaling() {
        let mut agent = PDqn::new(quick_cfg(12));
        let s = AugmentedState::zeros();
        for _ in 0..30 {
            let (a, _) = agent.act(&s, true);
            assert!(a.accel.abs() <= 3.0 + 1e-6);
        }
    }
}
