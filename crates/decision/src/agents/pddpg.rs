//! P-DDPG (Hausknecht & Stone 2015): collapses the parameterized action
//! space into one continuous vector. The actor emits three discrete-choice
//! activations plus three accelerations; the discrete behaviour is the
//! argmax activation. As the paper notes (§IV-B), this relaxation loses
//! which action-parameter belongs to which action, which is why it
//! underperforms P-DQN/BP-DQN in Table V.

use crate::agents::bpdqn::argmax;
use crate::agents::{AgentConfig, AgentTapes, LearnStats, PamdpAgent};
use crate::pamdp::{Action, AugmentedState, LaneBehaviour, NUM_BEHAVIOURS, STATE_DIM};
use crate::replay::{ReplayBuffer, Transition};
use nn::{Adam, Graph, Matrix, Mlp, ParamStore};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use telemetry::keys;

/// Width of the collapsed action vector: 3 activations + 3 accelerations.
const ACTION_DIM: usize = 2 * NUM_BEHAVIOURS;

/// The P-DDPG learner.
pub struct PDdpg {
    cfg: AgentConfig,
    actor_store: ParamStore,
    actor: Mlp,
    critic_store: ParamStore,
    critic: Mlp,
    actor_target: ParamStore,
    critic_target: ParamStore,
    adam_actor: Adam,
    adam_critic: Adam,
    replay: ReplayBuffer,
    tapes: AgentTapes,
    rng: ChaCha12Rng,
    act_steps: usize,
    since_learn: usize,
}

impl PDdpg {
    /// Builds a freshly initialised learner.
    pub fn new(cfg: AgentConfig) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let mut actor_store = ParamStore::new();
        let actor = Mlp::new(
            &mut actor_store,
            "actor",
            &[STATE_DIM, cfg.hidden, cfg.hidden, ACTION_DIM],
            &mut rng,
        );
        let mut critic_store = ParamStore::new();
        let critic = Mlp::new(
            &mut critic_store,
            "critic",
            &[STATE_DIM + ACTION_DIM, cfg.hidden, cfg.hidden, 1],
            &mut rng,
        );
        let actor_target = actor_store.clone();
        let critic_target = critic_store.clone();
        Self {
            adam_actor: Adam::new(cfg.lr),
            adam_critic: Adam::new(cfg.lr),
            replay: ReplayBuffer::new(cfg.replay_capacity),
            tapes: AgentTapes::new(),
            rng,
            act_steps: 0,
            since_learn: 0,
            cfg,
            actor_store,
            actor,
            critic_store,
            critic,
            actor_target,
            critic_target,
        }
    }

    /// Actor output for one state: `[act0, act1, act2, a0, a1, a2]` with
    /// activations in (-1, 1) and accelerations in (-a', a').
    fn actor_output(&mut self, state: &AugmentedState) -> [f32; ACTION_DIM] {
        let mut out = self.actor_outputs(std::slice::from_ref(&state));
        out.swap_remove(0)
    }

    /// One wide frozen actor pass over a batch of states; row `i` is
    /// bit-identical to the batch-1 pass for `states[i]`.
    fn actor_outputs(&mut self, states: &[&AugmentedState]) -> Vec<[f32; ACTION_DIM]> {
        let n = states.len();
        if n == 0 {
            return Vec::new();
        }
        let mut g = std::mem::take(&mut self.tapes.act);
        g.reset();
        let s = g.input(self.cfg.scale.flat_batch(states));
        let raw = self.actor.forward_frozen(&mut g, &self.actor_store, s);
        let out = g.tanh(raw);
        let a = self.cfg.a_max as f32;
        let outs = (0..n)
            .map(|i| {
                let row = g.value(out).row_slice(i);
                [row[0], row[1], row[2], row[3] * a, row[4] * a, row[5] * a]
            })
            .collect();
        self.tapes.act = g;
        outs
    }

    /// Scales a raw tanh actor output node into the collapsed action
    /// vector (activations untouched, accelerations × a').
    fn scale_action(&self, g: &mut Graph, raw: nn::Var) -> nn::Var {
        let t = g.tanh(raw);
        let a = self.cfg.a_max as f32;
        let scale_row = Matrix::row(&[1.0, 1.0, 1.0, a, a, a]);
        // Broadcast multiply: one row per batch sample.
        let rows = g.value(t).rows();
        let mut data = Vec::with_capacity(rows * ACTION_DIM);
        for _ in 0..rows {
            data.extend_from_slice(scale_row.data());
        }
        let scale = g.input(Matrix::from_vec(rows, ACTION_DIM, data));
        g.mul_elem(t, scale)
    }
}

impl PamdpAgent for PDdpg {
    fn name(&self) -> &'static str {
        "P-DDPG"
    }

    fn act(&mut self, state: &AugmentedState, explore: bool) -> (Action, [f32; 6]) {
        let mut out = self.actor_output(state);
        let mut chosen = argmax(&out[..NUM_BEHAVIOURS]);
        if explore {
            let eps = self.cfg.epsilon.value(self.act_steps);
            if self.rng.random::<f64>() < eps {
                chosen = crate::agents::random_behaviour(&mut self.rng, self.cfg.explore_keep_bias);
                // Make the stored activation consistent with the choice.
                out[chosen] = 1.0;
            }
            let sigma = self.cfg.noise.value(self.act_steps);
            if sigma > 0.0 {
                let noise = sigma * crate::explore::standard_normal(&mut self.rng);
                out[NUM_BEHAVIOURS + chosen] = (out[NUM_BEHAVIOURS + chosen] as f64 + noise)
                    .clamp(-self.cfg.a_max, self.cfg.a_max)
                    as f32;
            }
            self.act_steps += 1;
        }
        let accel = out[NUM_BEHAVIOURS + chosen] as f64;
        let action = Action {
            behaviour: LaneBehaviour::from_index(chosen),
            accel,
        };
        // Store accelerations in slots 0..3 and activations in 3..6.
        (action, [out[3], out[4], out[5], out[0], out[1], out[2]])
    }

    fn act_batch_greedy(&mut self, states: &[&AugmentedState]) -> Vec<(Action, [f32; 6])> {
        telemetry::counter_add(keys::NN_KERNEL_BATCHED_STATES, states.len() as u64);
        self.actor_outputs(states)
            .into_iter()
            .map(|out| {
                let chosen = argmax(&out[..NUM_BEHAVIOURS]);
                let action = Action {
                    behaviour: LaneBehaviour::from_index(chosen),
                    accel: out[NUM_BEHAVIOURS + chosen] as f64,
                };
                (action, [out[3], out[4], out[5], out[0], out[1], out[2]])
            })
            .collect()
    }

    fn observe(&mut self, transition: Transition) {
        self.replay.push(transition);
        self.since_learn += 1;
    }

    fn learn(&mut self) -> Option<LearnStats> {
        if self.replay.len() < self.cfg.warmup.max(self.cfg.batch_size)
            || self.since_learn < self.cfg.update_every
        {
            return None;
        }
        let _learn_span = telemetry::span!(keys::SPAN_PDDPG_LEARN);
        self.since_learn = 0;
        let batch = {
            let _sample_span = telemetry::span!(keys::SPAN_REPLAY_SAMPLE);
            self.replay
                .sample_batch(self.cfg.batch_size, &mut self.rng, &self.cfg.scale)
        };
        telemetry::gauge_set(keys::DECISION_REPLAY_OCCUPANCY, self.replay.len() as f64);
        let n = batch.len();

        let s_m = batch.states;
        let sn_m = batch.next_states;
        let batch = batch.items;

        // Critic targets.
        let targets: Vec<f32> = {
            let mut g = std::mem::take(&mut self.tapes.target);
            g.reset();
            let sn = g.input(sn_m);
            let raw = self.actor.forward_frozen(&mut g, &self.actor_target, sn);
            let an = self.scale_action(&mut g, raw);
            let sa = g.concat_cols(sn, an);
            let qn = self.critic.forward_frozen(&mut g, &self.critic_target, sa);
            let qn = g.value(qn);
            let targets = batch
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    t.reward as f32
                        + if t.terminal {
                            0.0
                        } else {
                            self.cfg.gamma * qn.get(i, 0)
                        }
                })
                .collect();
            self.tapes.target = g;
            targets
        };

        // Critic update against the executed action vector.
        let q_loss = {
            let mut g = std::mem::take(&mut self.tapes.learn);
            g.reset();
            let s = g.input(s_m.clone());
            let mut act = Matrix::zeros(n, ACTION_DIM);
            for (i, t) in batch.iter().enumerate() {
                // Stored layout: accelerations 0..3, activations 3..6.
                for b in 0..NUM_BEHAVIOURS {
                    act.set(i, b, t.params[NUM_BEHAVIOURS + b]);
                    act.set(i, NUM_BEHAVIOURS + b, t.params[b]);
                }
            }
            let act = g.input(act);
            let sa = g.concat_cols(s, act);
            let q = self.critic.forward(&mut g, &self.critic_store, sa);
            let y = g.input(Matrix::from_vec(n, 1, targets));
            let loss = g.mse(q, y);
            self.critic_store.zero_grad();
            let lv = g.backward(loss, &mut self.critic_store);
            self.tapes.learn = g;
            self.critic_store.clip_grad_norm(10.0);
            self.adam_critic.step(&mut self.critic_store);
            lv as f64
        };

        // Actor update: ascend Q(s, actor(s)) with the critic frozen.
        let x_loss = {
            let mut g = std::mem::take(&mut self.tapes.actor);
            g.reset();
            let s = g.input(s_m);
            let raw = self.actor.forward(&mut g, &self.actor_store, s);
            let a = self.scale_action(&mut g, raw);
            let sa = g.concat_cols(s, a);
            let q = self.critic.forward_frozen(&mut g, &self.critic_store, sa);
            let total = g.sum_all(q);
            let loss = g.scale(total, -1.0 / n as f32);
            self.actor_store.zero_grad();
            let lv = g.backward(loss, &mut self.actor_store);
            self.tapes.actor = g;
            self.actor_store.clip_grad_norm(10.0);
            self.adam_actor.step(&mut self.actor_store);
            lv as f64
        };

        self.critic_target
            .soft_update_from(&self.critic_store, self.cfg.tau);
        self.actor_target
            .soft_update_from(&self.actor_store, self.cfg.tau);

        telemetry::histogram_record(keys::DECISION_Q_LOSS, q_loss);
        telemetry::histogram_record(keys::DECISION_X_LOSS, x_loss);
        Some(LearnStats { q_loss, x_loss })
    }

    fn param_count(&self) -> usize {
        self.actor_store.scalar_count() + self.critic_store.scalar_count()
    }

    fn save_json(&self) -> String {
        // lint:allow(panic, serve-reachability) serde_json::to_string on an in-memory store of names and floats cannot fail, even when reload snapshots it
        serde_json::to_string(&(&self.actor_store, &self.critic_store)).expect("serialisable")
    }

    fn load_json(&mut self, json: &str) -> Result<(), serde_json::Error> {
        let (a, c): (ParamStore, ParamStore) = serde_json::from_str(json)?;
        self.actor_store
            .shapes_match(&a)
            .and_then(|()| self.critic_store.shapes_match(&c))
            .map_err(crate::agents::shape_error)?;
        self.actor_store.copy_values_from(&a);
        self.critic_store.copy_values_from(&c);
        self.actor_target.copy_values_from(&a);
        self.critic_target.copy_values_from(&c);
        Ok(())
    }

    fn weights_are_finite(&self) -> bool {
        self.actor_store.values_are_finite() && self.critic_store.values_are_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::test_support::toy_training_curve;
    use crate::explore::LinearSchedule;

    fn quick_cfg(seed: u64) -> AgentConfig {
        AgentConfig {
            warmup: 64,
            epsilon: LinearSchedule::new(1.0, 0.05, 600),
            noise: LinearSchedule::new(1.0, 0.1, 600),
            seed,
            ..AgentConfig::default()
        }
    }

    #[test]
    fn improves_on_toy_problem() {
        let mut agent = PDdpg::new(quick_cfg(21));
        let (first, last) = toy_training_curve(&mut agent, 60, 21);
        assert!(
            last > first + 0.5,
            "P-DDPG did not improve: {first} -> {last}"
        );
    }

    #[test]
    fn collapsed_action_vector_respects_bounds() {
        let mut agent = PDdpg::new(quick_cfg(22));
        let s = AugmentedState::zeros();
        for _ in 0..30 {
            let (a, params) = agent.act(&s, true);
            assert!(a.accel.abs() <= 3.0 + 1e-6);
            for &p in &params[..3] {
                assert!(p.abs() <= 3.0 + 1e-5, "acceleration slot {p}");
            }
        }
    }
}
