//! BP-DQN — Branched Parameterized Deep Q-Network (the paper's maneuver
//! decision model, §IV-B, Fig. 6, Eqs. 24–27).
//!
//! Both the deterministic parameter network `x` and the value network `Q`
//! process the current-state block `hᵗ` and the predicted-future block
//! `f̂ᵗ⁺¹` in **separate computational branches** before merging — avoiding
//! the erroneous weight sharing between differently-scaled inputs that the
//! vanilla P-DQN trunk suffers from. Optimisation follows the P-DQN
//! paradigm (Eqs. 21–23) with target networks and Polyak soft updates.

use crate::agents::{AgentConfig, AgentTapes, LearnStats, PamdpAgent};
use crate::pamdp::{
    Action, AugmentedState, LaneBehaviour, CURRENT_ROWS, FUTURE_ROWS, NUM_BEHAVIOURS,
};
use crate::replay::{ReplayBuffer, Transition};
use nn::{Adam, DivergenceGuard, Graph, Linear, Matrix, ParamStore, Var};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use telemetry::keys;

/// The branched x-network (Eqs. 24–25): per-vehicle branch encodings are
/// squeezed to one scalar per vehicle, concatenated (7 + 6 = 13) and mapped
/// to one acceleration per discrete behaviour, bounded by `a'·tanh`.
struct BranchedX {
    phi5: Linear,
    phi6: Linear,
    phi7: Linear,
    phi8: Linear,
    phi9: Linear,
}

impl BranchedX {
    fn new(store: &mut ParamStore, hidden: usize, rng: &mut impl Rng) -> Self {
        Self {
            phi5: Linear::new(store, "x.phi5", 4, hidden, rng),
            phi6: Linear::new(store, "x.phi6", hidden, 1, rng),
            phi7: Linear::new(store, "x.phi7", 4, hidden, rng),
            phi8: Linear::new(store, "x.phi8", hidden, 1, rng),
            phi9: Linear::new(
                store,
                "x.phi9",
                CURRENT_ROWS + FUTURE_ROWS,
                NUM_BEHAVIOURS,
                rng,
            ),
        }
    }

    /// `cur` is `(B*7) x 4`, `fut` is `(B*6) x 4`; returns `B x 3`.
    #[allow(clippy::too_many_arguments)]
    fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        cur: Var,
        fut: Var,
        batch: usize,
        a_max: f32,
        trainable: bool,
    ) -> Var {
        let branch = |g: &mut Graph, l1: &Linear, l2: &Linear, x: Var, rows: usize| {
            let h = if trainable {
                l1.forward(g, store, x)
            } else {
                l1.forward_frozen(g, store, x)
            };
            let h = g.relu(h);
            let h = if trainable {
                l2.forward(g, store, h)
            } else {
                l2.forward_frozen(g, store, h)
            };
            let h = g.relu(h);
            g.reshape(h, batch, rows)
        };
        let hc = branch(g, &self.phi5, &self.phi6, cur, CURRENT_ROWS);
        let hf = branch(g, &self.phi7, &self.phi8, fut, FUTURE_ROWS);
        let cat = g.concat_cols(hc, hf);
        let out = if trainable {
            self.phi9.forward(g, store, cat)
        } else {
            self.phi9.forward_frozen(g, store, cat)
        };
        let t = g.tanh(out);
        g.scale(t, a_max)
    }
}

/// The branched Q-network (Eqs. 26–27): three branches (current block,
/// future block, action-parameters) merged into three Q-values.
struct BranchedQ {
    phi10: Linear,
    phi11: Linear,
    phi12: Linear,
    phi13: Linear,
    phi14: Linear,
    phi15: Linear,
    phi16: Linear,
}

impl BranchedQ {
    fn new(store: &mut ParamStore, hidden: usize, rng: &mut impl Rng) -> Self {
        Self {
            phi10: Linear::new(store, "q.phi10", 4, hidden, rng),
            phi11: Linear::new(store, "q.phi11", hidden, 1, rng),
            phi12: Linear::new(store, "q.phi12", 4, hidden, rng),
            phi13: Linear::new(store, "q.phi13", hidden, 1, rng),
            phi14: Linear::new(store, "q.phi14", NUM_BEHAVIOURS, hidden, rng),
            phi15: Linear::new(store, "q.phi15", hidden, NUM_BEHAVIOURS, rng),
            phi16: Linear::new(
                store,
                "q.phi16",
                CURRENT_ROWS + FUTURE_ROWS + NUM_BEHAVIOURS,
                NUM_BEHAVIOURS,
                rng,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        cur: Var,
        fut: Var,
        x_out: Var,
        batch: usize,
        trainable: bool,
    ) -> Var {
        let branch = |g: &mut Graph, l1: &Linear, l2: &Linear, x: Var, rows: Option<usize>| {
            let h = if trainable {
                l1.forward(g, store, x)
            } else {
                l1.forward_frozen(g, store, x)
            };
            let h = g.relu(h);
            let h = if trainable {
                l2.forward(g, store, h)
            } else {
                l2.forward_frozen(g, store, h)
            };
            let h = g.relu(h);
            match rows {
                Some(r) => g.reshape(h, batch, r),
                None => h,
            }
        };
        let hc = branch(g, &self.phi10, &self.phi11, cur, Some(CURRENT_ROWS));
        let hf = branch(g, &self.phi12, &self.phi13, fut, Some(FUTURE_ROWS));
        let hx = branch(g, &self.phi14, &self.phi15, x_out, None);
        let cat = g.concat_cols(hc, hf);
        let cat = g.concat_cols(cat, hx);
        if trainable {
            self.phi16.forward(g, store, cat)
        } else {
            self.phi16.forward_frozen(g, store, cat)
        }
    }
}

/// The BP-DQN learner.
pub struct BpDqn {
    cfg: AgentConfig,
    x_store: ParamStore,
    x_net: BranchedX,
    q_store: ParamStore,
    q_net: BranchedQ,
    x_target: ParamStore,
    q_target: ParamStore,
    adam_x: Adam,
    adam_q: Adam,
    guard_x: DivergenceGuard,
    guard_q: DivergenceGuard,
    replay: ReplayBuffer,
    tapes: AgentTapes,
    rng: ChaCha12Rng,
    act_steps: usize,
    observed: usize,
    since_learn: usize,
}

/// Gradient-norm ceiling for both networks (pre-existing clip value).
const MAX_GRAD_NORM: f32 = 10.0;
/// Consecutive poisoned updates tolerated before rolling parameters back.
const DIVERGENCE_PATIENCE: u32 = 3;

impl BpDqn {
    /// Builds a freshly initialised learner.
    pub fn new(cfg: AgentConfig) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let mut x_store = ParamStore::new();
        let x_net = BranchedX::new(&mut x_store, cfg.hidden, &mut rng);
        let mut q_store = ParamStore::new();
        let q_net = BranchedQ::new(&mut q_store, cfg.hidden, &mut rng);
        let x_target = x_store.clone();
        let q_target = q_store.clone();
        Self {
            adam_x: Adam::new(cfg.lr),
            adam_q: Adam::new(cfg.lr),
            guard_x: DivergenceGuard::new(MAX_GRAD_NORM, DIVERGENCE_PATIENCE),
            guard_q: DivergenceGuard::new(MAX_GRAD_NORM, DIVERGENCE_PATIENCE),
            replay: ReplayBuffer::new(cfg.replay_capacity),
            tapes: AgentTapes::new(),
            rng,
            act_steps: 0,
            observed: 0,
            since_learn: 0,
            cfg,
            x_store,
            x_net,
            q_store,
            q_net,
            x_target,
            q_target,
        }
    }

    /// Greedy parameters and Q-values for one state.
    fn evaluate_state(&mut self, state: &AugmentedState) -> ([f32; 3], [f32; 3]) {
        let mut out = self.evaluate_states(std::slice::from_ref(&state));
        out.swap_remove(0)
    }

    /// Greedy parameters and Q-values for a whole batch of states: one
    /// wide frozen pass on the act tape, row `i` belonging to
    /// `states[i]`. Every op in the branched networks treats sample rows
    /// independently (the per-branch reshape maps sample `i`'s scalars to
    /// row `i`), so each row is bit-identical to the batch-1 pass.
    fn evaluate_states(&mut self, states: &[&AugmentedState]) -> Vec<([f32; 3], [f32; 3])> {
        let n = states.len();
        if n == 0 {
            return Vec::new();
        }
        let mut g = std::mem::take(&mut self.tapes.act);
        g.reset();
        let cur = g.input(self.cfg.scale.current_batch(states));
        let fut = g.input(self.cfg.scale.future_batch(states));
        let x = self.x_net.forward(
            &mut g,
            &self.x_store,
            cur,
            fut,
            n,
            self.cfg.a_max as f32,
            false,
        );
        let q = self
            .q_net
            .forward(&mut g, &self.q_store, cur, fut, x, n, false);
        let out = (0..n)
            .map(|i| {
                let xr = g.value(x).row_slice(i);
                let qr = g.value(q).row_slice(i);
                ([xr[0], xr[1], xr[2]], [qr[0], qr[1], qr[2]])
            })
            .collect();
        self.tapes.act = g;
        out
    }
}

impl PamdpAgent for BpDqn {
    fn name(&self) -> &'static str {
        "BP-DQN"
    }

    fn act(&mut self, state: &AugmentedState, explore: bool) -> (Action, [f32; 6]) {
        let (mut params, q) = self.evaluate_state(state);
        let mut chosen = argmax(&q);
        if explore {
            let eps = self.cfg.epsilon.value(self.act_steps);
            telemetry::gauge_set(keys::DECISION_EPSILON, eps);
            if self.rng.random::<f64>() < eps {
                chosen = crate::agents::random_behaviour(&mut self.rng, self.cfg.explore_keep_bias);
            }
            let sigma = self.cfg.noise.value(self.act_steps);
            if sigma > 0.0 {
                let noise = sigma * crate::explore::standard_normal(&mut self.rng);
                params[chosen] =
                    (params[chosen] as f64 + noise).clamp(-self.cfg.a_max, self.cfg.a_max) as f32;
            }
            self.act_steps += 1;
        }
        let action = Action {
            behaviour: LaneBehaviour::from_index(chosen),
            accel: params[chosen] as f64,
        };
        (action, [params[0], params[1], params[2], 0.0, 0.0, 0.0])
    }

    fn act_batch_greedy(&mut self, states: &[&AugmentedState]) -> Vec<(Action, [f32; 6])> {
        telemetry::counter_add(keys::NN_KERNEL_BATCHED_STATES, states.len() as u64);
        self.evaluate_states(states)
            .into_iter()
            .map(|(params, q)| {
                let chosen = argmax(&q);
                let action = Action {
                    behaviour: LaneBehaviour::from_index(chosen),
                    accel: params[chosen] as f64,
                };
                (action, [params[0], params[1], params[2], 0.0, 0.0, 0.0])
            })
            .collect()
    }

    fn observe(&mut self, transition: Transition) {
        self.replay.push(transition);
        self.observed += 1;
        self.since_learn += 1;
    }

    fn learn(&mut self) -> Option<LearnStats> {
        if self.replay.len() < self.cfg.warmup.max(self.cfg.batch_size)
            || self.since_learn < self.cfg.update_every
        {
            return None;
        }
        let _learn_span = telemetry::span!(keys::SPAN_BPDQN_LEARN);
        self.since_learn = 0;
        let batch = {
            let _sample_span = telemetry::span!(keys::SPAN_REPLAY_SAMPLE);
            self.replay.sample(self.cfg.batch_size, &mut self.rng)
        };
        telemetry::gauge_set(keys::DECISION_REPLAY_OCCUPANCY, self.replay.len() as f64);
        let n = batch.len();
        let a_max = self.cfg.a_max as f32;

        let states: Vec<&AugmentedState> = batch.iter().map(|t| &t.state).collect();
        let next_states: Vec<&AugmentedState> = batch.iter().map(|t| &t.next_state).collect();
        let cur_m = self.cfg.scale.current_batch(&states);
        let fut_m = self.cfg.scale.future_batch(&states);
        let cur_next_m = self.cfg.scale.current_batch(&next_states);
        let fut_next_m = self.cfg.scale.future_batch(&next_states);

        // --- Bellman targets via the target networks (Eq. 22) -----------
        let targets: Vec<f32> = {
            let mut g = std::mem::take(&mut self.tapes.target);
            g.reset();
            let cur_n = g.input(cur_next_m);
            let fut_n = g.input(fut_next_m);
            let xp = self
                .x_net
                .forward(&mut g, &self.x_target, cur_n, fut_n, n, a_max, false);
            let qn = self
                .q_net
                .forward(&mut g, &self.q_target, cur_n, fut_n, xp, n, false);
            let qn = g.value(qn);
            let targets = batch
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let max_q = qn
                        .row_slice(i)
                        .iter()
                        .cloned()
                        .fold(f32::NEG_INFINITY, f32::max);
                    t.reward as f32
                        + if t.terminal {
                            0.0
                        } else {
                            self.cfg.gamma * max_q
                        }
                })
                .collect();
            self.tapes.target = g;
            targets
        };

        // --- Q update (mean-squared Bellman error on the chosen action) ---
        let q_loss = {
            let mut g = std::mem::take(&mut self.tapes.learn);
            g.reset();
            let cur = g.input(cur_m.clone());
            let fut = g.input(fut_m.clone());
            let mut params = Matrix::zeros(n, NUM_BEHAVIOURS);
            let mut onehot = Matrix::zeros(n, NUM_BEHAVIOURS);
            for (i, t) in batch.iter().enumerate() {
                for b in 0..NUM_BEHAVIOURS {
                    params.set(i, b, t.params[b]);
                }
                onehot.set(i, t.action.behaviour.index(), 1.0);
            }
            let params = g.input(params);
            let onehot = g.input(onehot);
            let q = self
                .q_net
                .forward(&mut g, &self.q_store, cur, fut, params, n, true);
            let masked = g.mul_elem(q, onehot);
            let ones = g.input(Matrix::full(NUM_BEHAVIOURS, 1, 1.0));
            let q_sel = g.matmul(masked, ones);
            let y = g.input(Matrix::from_vec(n, 1, targets));
            let loss = g.mse(q_sel, y);
            self.q_store.zero_grad();
            let lv = g.backward(loss, &mut self.q_store);
            self.tapes.learn = g;
            // Poisoned transitions (NaN rewards / observations) surface as
            // non-finite losses here; the guard skips the update and rolls
            // back to the last good snapshot if the poisoning persists.
            if self.guard_q.admit(lv, &mut self.q_store) {
                self.adam_q.step(&mut self.q_store);
            }
            lv as f64
        };

        // --- x update: maximise Σ_b Q(s, x(s)) with θ_Q frozen (Eq. 23) ---
        let x_loss = {
            let mut g = std::mem::take(&mut self.tapes.actor);
            g.reset();
            let cur = g.input(cur_m);
            let fut = g.input(fut_m);
            let xo = self
                .x_net
                .forward(&mut g, &self.x_store, cur, fut, n, a_max, true);
            let qv = self
                .q_net
                .forward(&mut g, &self.q_store, cur, fut, xo, n, false);
            let total = g.sum_all(qv);
            let loss = g.scale(total, -1.0 / n as f32);
            self.x_store.zero_grad();
            let lv = g.backward(loss, &mut self.x_store);
            self.tapes.actor = g;
            if self.guard_x.admit(lv, &mut self.x_store) {
                self.adam_x.step(&mut self.x_store);
            }
            lv as f64
        };

        // --- target soft updates ------------------------------------------
        self.q_target.soft_update_from(&self.q_store, self.cfg.tau);
        self.x_target.soft_update_from(&self.x_store, self.cfg.tau);

        telemetry::histogram_record(keys::DECISION_Q_LOSS, q_loss);
        telemetry::histogram_record(keys::DECISION_X_LOSS, x_loss);
        // The loss trajectory is the most useful lead-up context in a
        // divergence post-mortem: keep the last window in the flight ring.
        telemetry::flight_record(keys::DECISION_Q_LOSS, q_loss);
        telemetry::flight_record(keys::DECISION_X_LOSS, x_loss);
        Some(LearnStats { q_loss, x_loss })
    }

    fn param_count(&self) -> usize {
        self.x_store.scalar_count() + self.q_store.scalar_count()
    }

    fn save_json(&self) -> String {
        // lint:allow(panic, serve-reachability) serde_json::to_string on an in-memory store of names and floats cannot fail, even when reload snapshots it
        serde_json::to_string(&(&self.x_store, &self.q_store)).expect("serialisable")
    }

    fn load_json(&mut self, json: &str) -> Result<(), serde_json::Error> {
        let (x, q): (ParamStore, ParamStore) = serde_json::from_str(json)?;
        // Validate both stores before mutating either, so a mismatched
        // payload leaves the serving weights fully intact.
        self.x_store
            .shapes_match(&x)
            .and_then(|()| self.q_store.shapes_match(&q))
            .map_err(crate::agents::shape_error)?;
        self.x_store.copy_values_from(&x);
        self.q_store.copy_values_from(&q);
        self.x_target.copy_values_from(&x);
        self.q_target.copy_values_from(&q);
        Ok(())
    }

    fn weights_are_finite(&self) -> bool {
        self.x_store.values_are_finite() && self.q_store.values_are_finite()
    }

    fn exploration_steps(&self) -> u64 {
        self.act_steps as u64
    }

    fn set_exploration_steps(&mut self, steps: u64) {
        self.act_steps = steps as usize;
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = ChaCha12Rng::seed_from_u64(seed);
    }
}

pub(crate) fn argmax(values: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::test_support::toy_training_curve;
    use crate::explore::LinearSchedule;

    fn quick_cfg(seed: u64) -> AgentConfig {
        AgentConfig {
            warmup: 64,
            epsilon: LinearSchedule::new(1.0, 0.05, 600),
            noise: LinearSchedule::new(1.0, 0.1, 600),
            seed,
            ..AgentConfig::default()
        }
    }

    #[test]
    fn action_accel_is_bounded() {
        let mut agent = BpDqn::new(quick_cfg(1));
        let s = AugmentedState::zeros();
        for _ in 0..50 {
            let (a, params) = agent.act(&s, true);
            assert!(a.accel.abs() <= 3.0 + 1e-6);
            for p in &params[..3] {
                assert!(p.abs() <= 3.0 + 1e-5);
            }
        }
    }

    #[test]
    fn greedy_action_is_deterministic() {
        let mut agent = BpDqn::new(quick_cfg(2));
        let s = AugmentedState::zeros();
        let (a1, _) = agent.act(&s, false);
        let (a2, _) = agent.act(&s, false);
        assert_eq!(a1, a2);
    }

    #[test]
    fn learn_requires_warmup() {
        let mut agent = BpDqn::new(quick_cfg(3));
        assert!(agent.learn().is_none());
    }

    #[test]
    fn improves_on_toy_problem() {
        let mut agent = BpDqn::new(quick_cfg(4));
        let (first, last) = toy_training_curve(&mut agent, 60, 4);
        assert!(
            last > first + 1.0,
            "BP-DQN did not improve: first-third return {first}, last-third {last}"
        );
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut agent = BpDqn::new(quick_cfg(5));
        toy_training_curve(&mut agent, 12, 5);
        let json = agent.save_json();
        let s = AugmentedState::zeros();
        let (before, _) = agent.act(&s, false);
        let mut fresh = BpDqn::new(quick_cfg(99));
        fresh.load_json(&json).unwrap();
        let (after, _) = fresh.act(&s, false);
        assert_eq!(before, after);
    }

    #[test]
    fn mismatched_checkpoint_is_rejected_not_panicked() {
        let mut agent = BpDqn::new(quick_cfg(8));
        let wide = BpDqn::new(AgentConfig {
            hidden: 96,
            ..quick_cfg(8)
        });
        let s = AugmentedState::zeros();
        let (before, _) = agent.act(&s, false);
        let err = agent.load_json(&wide.save_json()).unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
        let (after, _) = agent.act(&s, false);
        assert_eq!(before, after, "rejected load must not touch weights");
        assert!(agent.weights_are_finite());
    }

    #[test]
    fn nan_rewards_skip_updates_and_keep_weights_finite() {
        let mut agent = BpDqn::new(quick_cfg(6));
        let s = AugmentedState::zeros();
        let mk = |reward: f64| Transition {
            state: s,
            action: Action {
                behaviour: LaneBehaviour::Keep,
                accel: 0.5,
            },
            params: [0.5, 0.0, 0.0, 0.0, 0.0, 0.0],
            reward,
            next_state: s,
            terminal: false,
        };
        // Clean warmup so the guards hold a known-good snapshot.
        for _ in 0..64 {
            agent.observe(mk(0.5));
            agent.learn();
        }
        // Poison the stream: batches now contain NaN Bellman targets, which
        // surface as NaN losses. Every such update must be skipped, not
        // stepped on.
        for _ in 0..64 {
            agent.observe(mk(f64::NAN));
            agent.learn();
        }
        let (after, params) = agent.act(&s, false);
        assert!(after.accel.is_finite(), "weights poisoned by NaN rewards");
        assert!(params[..3].iter().all(|p| p.is_finite()));
        // Training remains functional on clean data afterwards.
        for _ in 0..8 {
            agent.observe(mk(0.5));
            agent.learn();
        }
        let (recovered, _) = agent.act(&s, false);
        assert!(recovered.accel.is_finite());
    }

    #[test]
    fn exploration_counter_roundtrips() {
        let mut agent = BpDqn::new(quick_cfg(7));
        let s = AugmentedState::zeros();
        for _ in 0..5 {
            let _ = agent.act(&s, true);
        }
        assert_eq!(agent.exploration_steps(), 5);
        agent.set_exploration_steps(123);
        assert_eq!(agent.exploration_steps(), 123);
        agent.reseed(42); // must not panic; stream becomes seed-derived
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 0.5, 0.3]), 1);
        assert_eq!(argmax(&[1.0, 1.0, 1.0]), 0, "first wins ties");
    }
}
