//! P-QP (Masson, Ranchod & Konidaris 2016 — "Q-PAMDP"): alternates
//! between (1) Q-learning over the discrete behaviours with the parameter
//! policy held fixed and (2) policy search over the continuous parameters
//! with the Q-function held fixed. As in the original, the two phases do
//! not share information within a phase — the structural weakness the
//! paper cites (§IV-B) for why it trails P-DQN/BP-DQN in Table V.
//!
//! The parameter-policy search uses advantage-weighted regression towards
//! the executed (noise-perturbed) accelerations — a deterministic-policy
//! form of the stochastic policy search used in the original.

use crate::agents::bpdqn::argmax;
use crate::agents::{AgentConfig, AgentTapes, LearnStats, PamdpAgent};
use crate::pamdp::{Action, AugmentedState, LaneBehaviour, NUM_BEHAVIOURS, STATE_DIM};
use crate::replay::{ReplayBuffer, Transition};
use nn::{Adam, Matrix, Mlp, ParamStore};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Learning steps per alternation phase.
const PHASE_LEN: usize = 200;

/// The P-QP learner.
pub struct PQp {
    cfg: AgentConfig,
    q_store: ParamStore,
    q_net: Mlp,
    q_target: ParamStore,
    param_store: ParamStore,
    param_net: Mlp,
    adam_q: Adam,
    adam_param: Adam,
    replay: ReplayBuffer,
    tapes: AgentTapes,
    rng: ChaCha12Rng,
    act_steps: usize,
    learn_steps: usize,
    since_learn: usize,
}

impl PQp {
    /// Builds a freshly initialised learner.
    pub fn new(cfg: AgentConfig) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let mut q_store = ParamStore::new();
        let q_net = Mlp::new(
            &mut q_store,
            "q",
            &[STATE_DIM, cfg.hidden, cfg.hidden, NUM_BEHAVIOURS],
            &mut rng,
        );
        let mut param_store = ParamStore::new();
        let param_net = Mlp::new(
            &mut param_store,
            "param",
            &[STATE_DIM, cfg.hidden, cfg.hidden, NUM_BEHAVIOURS],
            &mut rng,
        );
        let q_target = q_store.clone();
        Self {
            adam_q: Adam::new(cfg.lr),
            adam_param: Adam::new(cfg.lr),
            replay: ReplayBuffer::new(cfg.replay_capacity),
            tapes: AgentTapes::new(),
            rng,
            act_steps: 0,
            learn_steps: 0,
            since_learn: 0,
            cfg,
            q_store,
            q_net,
            q_target,
            param_store,
            param_net,
        }
    }

    fn params_of(&mut self, state: &AugmentedState) -> [f32; 3] {
        let mut g = std::mem::take(&mut self.tapes.act);
        g.reset();
        let s = g.input(self.cfg.scale.flat_batch(&[state]));
        let raw = self.param_net.forward_frozen(&mut g, &self.param_store, s);
        let t = g.tanh(raw);
        let out = g.scale(t, self.cfg.a_max as f32);
        let row = g.value(out).row_slice(0);
        let out = [row[0], row[1], row[2]];
        self.tapes.act = g;
        out
    }

    fn q_of(&mut self, state: &AugmentedState) -> [f32; 3] {
        let mut g = std::mem::take(&mut self.tapes.act);
        g.reset();
        let s = g.input(self.cfg.scale.flat_batch(&[state]));
        let q = self.q_net.forward_frozen(&mut g, &self.q_store, s);
        let row = g.value(q).row_slice(0);
        let out = [row[0], row[1], row[2]];
        self.tapes.act = g;
        out
    }

    /// Greedy parameters and Q-values for a whole batch of states: both
    /// frozen passes share one tape and one wide input. Row `i` is
    /// bit-identical to `params_of`/`q_of` on `states[i]` (both nets read
    /// the same input rows, and every op is row-independent).
    fn greedy_eval(&mut self, states: &[&AugmentedState]) -> Vec<([f32; 3], [f32; 3])> {
        let n = states.len();
        if n == 0 {
            return Vec::new();
        }
        let mut g = std::mem::take(&mut self.tapes.act);
        g.reset();
        let s = g.input(self.cfg.scale.flat_batch(states));
        let raw = self.param_net.forward_frozen(&mut g, &self.param_store, s);
        let t = g.tanh(raw);
        let p = g.scale(t, self.cfg.a_max as f32);
        let q = self.q_net.forward_frozen(&mut g, &self.q_store, s);
        let out = (0..n)
            .map(|i| {
                let pr = g.value(p).row_slice(i);
                let qr = g.value(q).row_slice(i);
                ([pr[0], pr[1], pr[2]], [qr[0], qr[1], qr[2]])
            })
            .collect();
        self.tapes.act = g;
        out
    }
}

impl PamdpAgent for PQp {
    fn name(&self) -> &'static str {
        "P-QP"
    }

    fn act(&mut self, state: &AugmentedState, explore: bool) -> (Action, [f32; 6]) {
        let mut params = self.params_of(state);
        let q = self.q_of(state);
        let mut chosen = argmax(&q);
        if explore {
            let eps = self.cfg.epsilon.value(self.act_steps);
            if self.rng.random::<f64>() < eps {
                chosen = crate::agents::random_behaviour(&mut self.rng, self.cfg.explore_keep_bias);
            }
            let sigma = self.cfg.noise.value(self.act_steps);
            if sigma > 0.0 {
                let noise = sigma * crate::explore::standard_normal(&mut self.rng);
                params[chosen] =
                    (params[chosen] as f64 + noise).clamp(-self.cfg.a_max, self.cfg.a_max) as f32;
            }
            self.act_steps += 1;
        }
        let action = Action {
            behaviour: LaneBehaviour::from_index(chosen),
            accel: params[chosen] as f64,
        };
        (action, [params[0], params[1], params[2], 0.0, 0.0, 0.0])
    }

    fn act_batch_greedy(&mut self, states: &[&AugmentedState]) -> Vec<(Action, [f32; 6])> {
        telemetry::counter_add(
            telemetry::keys::NN_KERNEL_BATCHED_STATES,
            states.len() as u64,
        );
        self.greedy_eval(states)
            .into_iter()
            .map(|(params, q)| {
                let chosen = argmax(&q);
                let action = Action {
                    behaviour: LaneBehaviour::from_index(chosen),
                    accel: params[chosen] as f64,
                };
                (action, [params[0], params[1], params[2], 0.0, 0.0, 0.0])
            })
            .collect()
    }

    fn observe(&mut self, transition: Transition) {
        self.replay.push(transition);
        self.since_learn += 1;
    }

    fn learn(&mut self) -> Option<LearnStats> {
        if self.replay.len() < self.cfg.warmup.max(self.cfg.batch_size)
            || self.since_learn < self.cfg.update_every
        {
            return None;
        }
        self.since_learn = 0;
        self.learn_steps += 1;
        let q_phase = (self.learn_steps / PHASE_LEN) % 2 == 0;
        let batch = self
            .replay
            .sample_batch(self.cfg.batch_size, &mut self.rng, &self.cfg.scale);
        let n = batch.len();

        let s_m = batch.states;
        let sn_m = batch.next_states;
        let batch = batch.items;

        // Bellman targets (Q has no parameter input in Q-PAMDP: it values
        // the discrete behaviours under the *current* parameter policy).
        let targets: Vec<f32> = {
            let mut g = std::mem::take(&mut self.tapes.target);
            g.reset();
            let sn = g.input(sn_m);
            let qn = self.q_net.forward_frozen(&mut g, &self.q_target, sn);
            let qn = g.value(qn);
            let targets = batch
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let max_q = qn
                        .row_slice(i)
                        .iter()
                        .cloned()
                        .fold(f32::NEG_INFINITY, f32::max);
                    t.reward as f32
                        + if t.terminal {
                            0.0
                        } else {
                            self.cfg.gamma * max_q
                        }
                })
                .collect();
            self.tapes.target = g;
            targets
        };

        let mut onehot = Matrix::zeros(n, NUM_BEHAVIOURS);
        for (i, t) in batch.iter().enumerate() {
            onehot.set(i, t.action.behaviour.index(), 1.0);
        }

        if q_phase {
            // --- Q phase: standard TD regression on the chosen behaviour ---
            let mut g = std::mem::take(&mut self.tapes.learn);
            g.reset();
            let s = g.input(s_m);
            let onehot_v = g.input(onehot);
            let q = self.q_net.forward(&mut g, &self.q_store, s);
            let masked = g.mul_elem(q, onehot_v);
            let ones = g.input(Matrix::full(NUM_BEHAVIOURS, 1, 1.0));
            let q_sel = g.matmul(masked, ones);
            let y = g.input(Matrix::from_vec(n, 1, targets));
            let loss = g.mse(q_sel, y);
            self.q_store.zero_grad();
            let lv = g.backward(loss, &mut self.q_store);
            self.tapes.learn = g;
            self.q_store.clip_grad_norm(10.0);
            self.adam_q.step(&mut self.q_store);
            self.q_target.soft_update_from(&self.q_store, self.cfg.tau);
            Some(LearnStats {
                q_loss: lv as f64,
                x_loss: 0.0,
            })
        } else {
            // --- parameter phase: advantage-weighted regression ------------
            // advantage_i = y_i - Q(s_i)[b_i]  (Q frozen)
            let advantages: Vec<f32> = {
                let mut g = std::mem::take(&mut self.tapes.target);
                g.reset();
                let s = g.input(s_m.clone());
                let q = self.q_net.forward_frozen(&mut g, &self.q_store, s);
                let q = g.value(q);
                let advantages = batch
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        (targets[i] - q.get(i, t.action.behaviour.index())).clamp(-1.0, 1.0)
                    })
                    .collect();
                self.tapes.target = g;
                advantages
            };
            let mut g = std::mem::take(&mut self.tapes.actor);
            g.reset();
            let s = g.input(s_m);
            let raw = self.param_net.forward(&mut g, &self.param_store, s);
            let t = g.tanh(raw);
            let mu = g.scale(t, self.cfg.a_max as f32);
            let mut exec = Matrix::zeros(n, NUM_BEHAVIOURS);
            let mut weight = Matrix::zeros(n, NUM_BEHAVIOURS);
            for (i, tr) in batch.iter().enumerate() {
                let b = tr.action.behaviour.index();
                exec.set(i, b, tr.action.accel as f32);
                // Positive advantage pulls μ towards the executed accel,
                // negative pushes it away.
                weight.set(i, b, advantages[i]);
            }
            let exec = g.input(exec);
            let weight = g.input(weight);
            let d = g.sub(mu, exec);
            let sq = g.mul_elem(d, d);
            let weighted = g.mul_elem(sq, weight);
            let total = g.sum_all(weighted);
            let loss = g.scale(total, 1.0 / n as f32);
            self.param_store.zero_grad();
            let lv = g.backward(loss, &mut self.param_store);
            self.tapes.actor = g;
            self.param_store.clip_grad_norm(10.0);
            self.adam_param.step(&mut self.param_store);
            Some(LearnStats {
                q_loss: 0.0,
                x_loss: lv as f64,
            })
        }
    }

    fn param_count(&self) -> usize {
        self.q_store.scalar_count() + self.param_store.scalar_count()
    }

    fn save_json(&self) -> String {
        // lint:allow(panic, serve-reachability) serde_json::to_string on an in-memory store of names and floats cannot fail, even when reload snapshots it
        serde_json::to_string(&(&self.param_store, &self.q_store)).expect("serialisable")
    }

    fn load_json(&mut self, json: &str) -> Result<(), serde_json::Error> {
        let (p, q): (ParamStore, ParamStore) = serde_json::from_str(json)?;
        self.param_store
            .shapes_match(&p)
            .and_then(|()| self.q_store.shapes_match(&q))
            .map_err(crate::agents::shape_error)?;
        self.param_store.copy_values_from(&p);
        self.q_store.copy_values_from(&q);
        self.q_target.copy_values_from(&q);
        Ok(())
    }

    fn weights_are_finite(&self) -> bool {
        self.param_store.values_are_finite() && self.q_store.values_are_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::test_support::toy_training_curve;
    use crate::explore::LinearSchedule;

    fn quick_cfg(seed: u64) -> AgentConfig {
        AgentConfig {
            warmup: 64,
            epsilon: LinearSchedule::new(1.0, 0.05, 600),
            noise: LinearSchedule::new(1.0, 0.1, 600),
            seed,
            ..AgentConfig::default()
        }
    }

    #[test]
    fn improves_on_toy_problem() {
        let mut agent = PQp::new(quick_cfg(31));
        let (first, last) = toy_training_curve(&mut agent, 60, 31);
        assert!(
            last > first,
            "P-QP did not improve at all: {first} -> {last}"
        );
    }

    #[test]
    fn alternation_touches_both_networks() {
        let mut agent = PQp::new(quick_cfg(32));
        let mut saw_q = false;
        let mut saw_param = false;
        // Drive enough learning steps to cross a phase boundary.
        let _ = toy_training_curve(&mut agent, 30, 32);
        let dummy = crate::replay::Transition {
            state: AugmentedState::zeros(),
            action: Action {
                behaviour: LaneBehaviour::Keep,
                accel: 0.0,
            },
            params: [0.0; 6],
            reward: 0.0,
            next_state: AugmentedState::zeros(),
            terminal: false,
        };
        for _ in 0..(PHASE_LEN * 2 + 10) {
            agent.observe(dummy.clone());
            if let Some(stats) = agent.learn() {
                // lint:allow(float-eq) exact zero means this phase's loss was never written
                if stats.q_loss != 0.0 {
                    saw_q = true;
                }
                // lint:allow(float-eq) exact zero means this phase's loss was never written
                if stats.x_loss != 0.0 {
                    saw_param = true;
                }
            }
        }
        assert!(saw_q && saw_param, "alternation must exercise both phases");
    }
}
