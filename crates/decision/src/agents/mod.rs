//! Reinforcement learners for the PAMDP: **BP-DQN** (the paper's
//! contribution, §IV-B) and the three comparison methods of Tables V–VI
//! (**P-DQN**, **P-DDPG**, **P-QP**), plus the discrete **DQN** that powers
//! the DRL-SC end-to-end baseline.

mod bpdqn;
mod dqn;
mod pddpg;
mod pdqn;
mod pqp;

pub use bpdqn::BpDqn;
pub use dqn::{DiscreteDqn, DISCRETE_ACTIONS};
pub use pddpg::PDdpg;
pub use pdqn::PDqn;
pub use pqp::PQp;

use crate::explore::LinearSchedule;
use crate::pamdp::{Action, AugmentedState, StateScale};
use crate::replay::Transition;
use nn::Graph;
use serde::{Deserialize, Serialize};

/// Persistent autodiff tapes a learner reuses across steps.
///
/// Constructing a fresh [`Graph`] per forward pass was the decision layer's
/// dominant allocation source: every act / target / learn pass re-allocated
/// each node value and gradient buffer from the heap. Each agent instead
/// checks a tape out of this set (`std::mem::take`), calls [`Graph::reset`]
/// — which recycles every buffer through the tape's arena — runs the pass,
/// and puts the tape back. At steady state the passes allocate nothing.
///
/// The headlint `graph-churn` pass keeps `Graph::new()` confined to
/// constructors, so [`AgentTapes::new`] is the one sanctioned construction
/// site of decision-layer graphs.
pub(crate) struct AgentTapes {
    /// Batch-1 inference pass(es) during action selection.
    pub act: Graph,
    /// Frozen-target forward passes (TD targets, advantages).
    pub target: Graph,
    /// Critic / Q training pass.
    pub learn: Graph,
    /// Actor / parameter-policy training pass.
    pub actor: Graph,
}

impl AgentTapes {
    /// Builds the tape set for one learner.
    pub fn new() -> Self {
        Self {
            act: Graph::new(),
            target: Graph::new(),
            learn: Graph::new(),
            actor: Graph::new(),
        }
    }
}

/// Hyper-parameters shared by every learner. Defaults follow the paper
/// (§V-A): γ = 0.9, Adam lr = 0.001, batch 64, replay 20 000, soft-update
/// ratio 0.01.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AgentConfig {
    /// State normalisation constants.
    pub scale: StateScale,
    /// Discount factor γ.
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Polyak soft-update ratio τ.
    pub tau: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Replay buffer capacity.
    pub replay_capacity: usize,
    /// Transitions collected before learning starts.
    pub warmup: usize,
    /// Learn every `update_every` observed transitions.
    pub update_every: usize,
    /// Hidden width of all network layers.
    pub hidden: usize,
    /// Acceleration bound a', m/s².
    pub a_max: f64,
    /// ε-greedy schedule over the discrete behaviour.
    pub epsilon: LinearSchedule,
    /// Gaussian noise schedule over the chosen acceleration, m/s².
    pub noise: LinearSchedule,
    /// Probability that a *random* (ε) discrete pick is lane-keep; the
    /// remainder splits evenly between left and right. 1/3 = uniform.
    /// Random lane changes in dense traffic are near-certain collisions,
    /// so biasing exploration towards keeping lane stabilises early
    /// training without restricting the learned policy.
    pub explore_keep_bias: f64,
    /// Weight-init / exploration seed.
    pub seed: u64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        Self {
            scale: StateScale::paper_default(),
            gamma: 0.9,
            lr: 1e-3,
            tau: 0.01,
            batch_size: 64,
            replay_capacity: 20_000,
            warmup: 500,
            update_every: 1,
            hidden: 64,
            a_max: 3.0,
            epsilon: LinearSchedule::new(1.0, 0.05, 10_000),
            noise: LinearSchedule::new(1.0, 0.1, 10_000),
            explore_keep_bias: 0.6,
            seed: 0,
        }
    }
}

/// Converts a [`nn::ParamStore`] shape-mismatch description into the
/// `serde_json::Error` every `load_json` implementation returns, so a
/// checkpoint written under a different architecture is a recoverable
/// load error rather than a panic.
pub(crate) fn shape_error(detail: String) -> serde_json::Error {
    serde::de::Error::custom(detail)
}

/// Samples a random discrete behaviour index with the given keep bias.
pub(crate) fn random_behaviour(rng: &mut impl rand::Rng, keep_bias: f64) -> usize {
    let u: f64 = rng.random();
    if u < keep_bias {
        crate::pamdp::LaneBehaviour::Keep.index()
    } else if u < keep_bias + (1.0 - keep_bias) / 2.0 {
        crate::pamdp::LaneBehaviour::Left.index()
    } else {
        crate::pamdp::LaneBehaviour::Right.index()
    }
}

/// Statistics from one learning step.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LearnStats {
    /// Critic / Q loss.
    pub q_loss: f64,
    /// Actor / parameter-policy loss (0 for purely value-based learners).
    pub x_loss: f64,
}

/// Common interface of all maneuver-decision learners.
pub trait PamdpAgent {
    /// Short method name (used in reports).
    fn name(&self) -> &'static str;

    /// Chooses an action for `state`. When `explore` is set, ε-greedy /
    /// Gaussian exploration applies and the internal step counter advances.
    /// Also returns the full per-behaviour acceleration vector (stored in
    /// the replay buffer so learning can condition on the parameters that
    /// were actually in force).
    fn act(&mut self, state: &AugmentedState, explore: bool) -> (Action, [f32; 6]);

    /// Greedy (no-exploration) action selection for a whole batch of
    /// states at once.
    ///
    /// The default falls back to looping [`PamdpAgent::act`] with
    /// `explore = false`. Network-backed learners override it with one
    /// wide `(batch, features)` forward pass, which is bit-identical per
    /// row to the batch-1 pass (every graph op treats rows independently)
    /// but amortises tape dispatch and turns `batch` skinny matmuls into
    /// one wide one — the `serve` batcher and the perf harness's
    /// batched-inference gate run through this path.
    fn act_batch_greedy(&mut self, states: &[&AugmentedState]) -> Vec<(Action, [f32; 6])> {
        states.iter().map(|s| self.act(s, false)).collect()
    }

    /// Stores a transition in the replay buffer.
    fn observe(&mut self, transition: Transition);

    /// Runs one optimisation step if enough data is available.
    fn learn(&mut self) -> Option<LearnStats>;

    /// Number of scalar parameters across all live networks.
    fn param_count(&self) -> usize;

    /// Serialises the policy weights to JSON.
    fn save_json(&self) -> String;

    /// Restores policy weights saved by [`PamdpAgent::save_json`]. A
    /// payload whose parameter count or shapes do not match this learner's
    /// architecture must be rejected with an error, leaving the live
    /// weights untouched (the serving hot-reload path relies on this).
    fn load_json(&mut self, json: &str) -> Result<(), serde_json::Error>;

    /// True when every live network weight is finite. The serving layer
    /// probes this after a hot-reload before committing the new weights.
    /// Learners without networks keep the default.
    fn weights_are_finite(&self) -> bool {
        true
    }

    /// Number of exploration (training) action selections taken so far.
    /// Drives ε / noise schedules; checkpointed so a resumed run continues
    /// its annealing instead of restarting it. Learners without schedules
    /// keep the default.
    fn exploration_steps(&self) -> u64 {
        0
    }

    /// Restores the exploration step counter from a checkpoint.
    fn set_exploration_steps(&mut self, _steps: u64) {}

    /// Deterministically reseeds the learner's exploration / sampling
    /// stream (used on resume: generator internals are not serialisable,
    /// so a resumed run continues on a fresh, seed-derived stream).
    fn reseed(&mut self, _seed: u64) {}
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::pamdp::LaneBehaviour;
    use crate::replay::Transition;
    use rand::Rng;

    /// A trivial 1-D "keep to the speed limit without hitting the leader"
    /// toy problem expressed through augmented states: reward is high when
    /// the agent accelerates while far from the leader and brakes when
    /// close. Used to smoke-test that each learner improves its return.
    pub struct ToyEnv {
        pub gap: f64,
        pub vel: f64,
    }

    impl ToyEnv {
        pub fn reset(&mut self, rng: &mut impl Rng) {
            self.gap = rng.random_range(20.0..80.0);
            self.vel = rng.random_range(5.0..20.0);
        }

        pub fn state(&self) -> AugmentedState {
            let mut s = AugmentedState::zeros();
            s.current[0] = [3.0, 100.0, self.vel, 0.0];
            s.current[2] = [0.0, self.gap, -self.vel * 0.2, 0.0]; // front target
            s.future[1] = [0.0, self.gap - self.vel * 0.1, -self.vel * 0.2, 0.0];
            s
        }

        /// Applies an acceleration, returns (reward, done).
        pub fn step(&mut self, action: &Action) -> (f64, bool) {
            let lane_penalty = if matches!(action.behaviour, LaneBehaviour::Keep) {
                0.0
            } else {
                -0.5
            };
            self.vel = (self.vel + action.accel * 0.5).clamp(0.0, 25.0);
            self.gap -= self.vel * 0.5 * 0.2; // leader slowly pulls away less
            let crash = self.gap < 2.0;
            let reward = if crash {
                -3.0
            } else {
                self.vel / 25.0 + lane_penalty - if self.gap < 10.0 { 1.0 } else { 0.0 }
            };
            (reward, crash || self.gap > 120.0)
        }
    }

    /// Mean greedy episode return over fixed evaluation seeds.
    fn greedy_return(agent: &mut dyn PamdpAgent, seed: u64, episodes: usize) -> f64 {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        let mut env = ToyEnv {
            gap: 50.0,
            vel: 10.0,
        };
        let mut total = 0.0;
        for _ in 0..episodes {
            env.reset(&mut rng);
            for _ in 0..40 {
                let (action, _) = agent.act(&env.state(), false);
                let (reward, done) = env.step(&action);
                total += reward;
                if done {
                    break;
                }
            }
        }
        total / episodes as f64
    }

    /// Trains for `episodes` episodes; returns the mean *greedy* episode
    /// return (fixed seeds) before and after training.
    pub fn toy_training_curve(
        agent: &mut dyn PamdpAgent,
        episodes: usize,
        seed: u64,
    ) -> (f64, f64) {
        use rand::SeedableRng;
        let before = greedy_return(agent, 999, 10);
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        let mut env = ToyEnv {
            gap: 50.0,
            vel: 10.0,
        };
        for _ in 0..episodes {
            env.reset(&mut rng);
            for _ in 0..40 {
                let state = env.state();
                let (action, params) = agent.act(&state, true);
                let (reward, done) = env.step(&action);
                agent.observe(Transition {
                    state,
                    action,
                    params,
                    reward,
                    next_state: env.state(),
                    terminal: done,
                });
                agent.learn();
                if done {
                    break;
                }
            }
        }
        let after = greedy_return(agent, 999, 10);
        (before, after)
    }
}
