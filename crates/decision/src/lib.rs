//! # decision — the HEAD maneuver decision module
//!
//! Reproduces §IV of *"Impact-aware Maneuver Decision with Enhanced
//! Perception for Autonomous Vehicle"* (ICDE 2023):
//!
//! * **PAMDP formulation** ([`AugmentedState`], [`Action`]) — the
//!   discrete-continuous hybrid action space of lane-change behaviour ×
//!   bounded acceleration, over states augmented with the perception
//!   module's one-step predictions (Eqs. 15–18).
//! * **Hybrid reward** ([`RewardConfig`]) — safety (TTC), efficiency
//!   (speed), comfort (jerk) and the paper's headline contribution,
//!   the **impact** term penalising forced deceleration of the rear
//!   vehicle (Eqs. 28–30).
//! * **BP-DQN** ([`BpDqn`]) — the branched parameterized deep Q-network
//!   (Fig. 6), plus the Table V/VI comparison learners [`PDqn`],
//!   [`PDdpg`], [`PQp`] and the discrete [`DiscreteDqn`] that powers the
//!   DRL-SC end-to-end baseline.

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod agents;
mod explore;
mod pamdp;
mod replay;
mod reward;

pub use agents::{
    AgentConfig, BpDqn, DiscreteDqn, LearnStats, PDdpg, PDqn, PQp, PamdpAgent, DISCRETE_ACTIONS,
};
pub use explore::{standard_normal, LinearSchedule};
pub use pamdp::{
    Action, AugmentedState, LaneBehaviour, StateScale, CURRENT_ROWS, FUTURE_ROWS, NUM_BEHAVIOURS,
    ROW_DIM, STATE_DIM,
};
pub use replay::{Batch, ReplayBuffer, Transition};
pub use reward::{RewardConfig, RewardInput, RewardParts};
