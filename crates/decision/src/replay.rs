//! Experience replay buffer (fixed-capacity ring, uniform sampling) — the
//! replay memory `B` of the paper's P-DQN-style optimisation (Eq. 22).

use crate::pamdp::{Action, AugmentedState, StateScale};
use nn::Matrix;
use rand::Rng;

/// One stored experience.
#[derive(Clone, Debug)]
pub struct Transition {
    /// State the action was taken in.
    pub state: AugmentedState,
    /// The executed parameterized action.
    pub action: Action,
    /// The full action vector in force when the action was chosen
    /// (including exploration noise). Slots 0..3 hold one acceleration per
    /// discrete behaviour; slots 3..6 hold discrete activations (used only
    /// by P-DDPG's collapsed action space). Learners that do not condition
    /// on parameters ignore it.
    pub params: [f32; 6],
    /// Observed reward.
    pub reward: f64,
    /// Successor state (ignored when `terminal`).
    pub next_state: AugmentedState,
    /// Whether the episode ended after this transition.
    pub terminal: bool,
}

/// Fixed-capacity FIFO replay buffer with uniform random sampling.
#[derive(Clone, Debug)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Transition>,
    head: usize,
}

impl ReplayBuffer {
    /// Creates a buffer that keeps the last `capacity` transitions
    /// (the paper uses 20 000).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            items: Vec::with_capacity(capacity.min(4096)),
            head: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of transitions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stores a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Samples `n` transitions uniformly with replacement. An empty buffer
    /// yields an empty sample (callers gate learning on warmup anyway, but
    /// an early call must not panic).
    pub fn sample<'a>(&'a self, n: usize, rng: &mut impl Rng) -> Vec<&'a Transition> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|_| &self.items[rng.random_range(0..self.items.len())])
            .collect()
    }

    /// Samples `n` transitions and assembles their flat state matrices in
    /// one pass — the batched forward input every flat-state learner
    /// needs, built once here instead of re-collected in each `learn`.
    pub fn sample_batch<'a>(
        &'a self,
        n: usize,
        rng: &mut impl Rng,
        scale: &StateScale,
    ) -> Batch<'a> {
        let items = self.sample(n, rng);
        let states: Vec<&AugmentedState> = items.iter().map(|t| &t.state).collect();
        let next_states: Vec<&AugmentedState> = items.iter().map(|t| &t.next_state).collect();
        Batch {
            states: scale.flat_batch(&states),
            next_states: scale.flat_batch(&next_states),
            items,
        }
    }

    /// Clears all stored transitions.
    pub fn clear(&mut self) {
        self.items.clear();
        self.head = 0;
    }
}

/// A sampled minibatch with its batched forward inputs pre-assembled:
/// one `n x STATE_DIM`-flavoured matrix per side of the Bellman update.
/// Row `i` of [`Batch::states`] / [`Batch::next_states`] corresponds to
/// [`Batch::items`]`[i]`.
pub struct Batch<'a> {
    /// The sampled transitions (rewards, actions, terminals, params).
    pub items: Vec<&'a Transition>,
    /// Scaled flat encoding of every sampled state, one row each.
    pub states: Matrix,
    /// Scaled flat encoding of every successor state, one row each.
    pub next_states: Matrix,
}

impl Batch<'_> {
    /// Number of transitions in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the buffer was empty at sampling time.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pamdp::LaneBehaviour;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn transition(reward: f64) -> Transition {
        Transition {
            state: AugmentedState::zeros(),
            action: Action {
                behaviour: LaneBehaviour::Keep,
                accel: 0.0,
            },
            params: [0.0; 6],
            reward,
            next_state: AugmentedState::zeros(),
            terminal: false,
        }
    }

    #[test]
    fn eviction_is_fifo() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(transition(i as f64));
        }
        assert_eq!(buf.len(), 3);
        let rewards: Vec<f64> = buf.items.iter().map(|t| t.reward).collect();
        // Ring overwrote 0 and 1.
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0) && rewards.contains(&4.0));
    }

    #[test]
    fn sampling_covers_buffer() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..10 {
            buf.push(transition(i as f64));
        }
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let sample = buf.sample(200, &mut rng);
        let mut seen = [false; 10];
        for t in sample {
            seen[t.reward as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform sampling should cover all slots"
        );
    }

    #[test]
    fn sample_batch_assembles_matching_rows() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(transition(i as f64));
        }
        let scale = StateScale::paper_default();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let batch = buf.sample_batch(16, &mut rng, &scale);
        assert_eq!(batch.len(), 16);
        assert_eq!(batch.states.rows(), 16);
        assert_eq!(batch.next_states.rows(), 16);
        // Row i of the matrices is the flat encoding of item i.
        for (i, t) in batch.items.iter().enumerate() {
            let expect = scale.flat_batch(&[&t.state]);
            assert_eq!(batch.states.row_slice(i), expect.row_slice(0));
        }
        // Sampling draws the same items as the unbatched path under the
        // same RNG stream.
        let mut rng2 = ChaCha12Rng::seed_from_u64(3);
        let plain = buf.sample(16, &mut rng2);
        for (a, b) in batch.items.iter().zip(plain) {
            assert_eq!(a.reward, b.reward);
        }
    }

    #[test]
    fn clear_empties() {
        let mut buf = ReplayBuffer::new(4);
        buf.push(transition(1.0));
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }

    #[test]
    fn sampling_empty_buffer_is_empty_not_panic() {
        let buf = ReplayBuffer::new(4);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        assert!(buf.sample(8, &mut rng).is_empty());
    }
}
