//! Experience replay buffer (fixed-capacity ring, uniform sampling) — the
//! replay memory `B` of the paper's P-DQN-style optimisation (Eq. 22).

use crate::pamdp::{Action, AugmentedState};
use rand::Rng;

/// One stored experience.
#[derive(Clone, Debug)]
pub struct Transition {
    /// State the action was taken in.
    pub state: AugmentedState,
    /// The executed parameterized action.
    pub action: Action,
    /// The full action vector in force when the action was chosen
    /// (including exploration noise). Slots 0..3 hold one acceleration per
    /// discrete behaviour; slots 3..6 hold discrete activations (used only
    /// by P-DDPG's collapsed action space). Learners that do not condition
    /// on parameters ignore it.
    pub params: [f32; 6],
    /// Observed reward.
    pub reward: f64,
    /// Successor state (ignored when `terminal`).
    pub next_state: AugmentedState,
    /// Whether the episode ended after this transition.
    pub terminal: bool,
}

/// Fixed-capacity FIFO replay buffer with uniform random sampling.
#[derive(Clone, Debug)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Transition>,
    head: usize,
}

impl ReplayBuffer {
    /// Creates a buffer that keeps the last `capacity` transitions
    /// (the paper uses 20 000).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            items: Vec::with_capacity(capacity.min(4096)),
            head: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of transitions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stores a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Samples `n` transitions uniformly with replacement. An empty buffer
    /// yields an empty sample (callers gate learning on warmup anyway, but
    /// an early call must not panic).
    pub fn sample<'a>(&'a self, n: usize, rng: &mut impl Rng) -> Vec<&'a Transition> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|_| &self.items[rng.random_range(0..self.items.len())])
            .collect()
    }

    /// Clears all stored transitions.
    pub fn clear(&mut self) {
        self.items.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pamdp::LaneBehaviour;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn transition(reward: f64) -> Transition {
        Transition {
            state: AugmentedState::zeros(),
            action: Action {
                behaviour: LaneBehaviour::Keep,
                accel: 0.0,
            },
            params: [0.0; 6],
            reward,
            next_state: AugmentedState::zeros(),
            terminal: false,
        }
    }

    #[test]
    fn eviction_is_fifo() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(transition(i as f64));
        }
        assert_eq!(buf.len(), 3);
        let rewards: Vec<f64> = buf.items.iter().map(|t| t.reward).collect();
        // Ring overwrote 0 and 1.
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0) && rewards.contains(&4.0));
    }

    #[test]
    fn sampling_covers_buffer() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..10 {
            buf.push(transition(i as f64));
        }
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let sample = buf.sample(200, &mut rng);
        let mut seen = [false; 10];
        for t in sample {
            seen[t.reward as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform sampling should cover all slots"
        );
    }

    #[test]
    fn clear_empties() {
        let mut buf = ReplayBuffer::new(4);
        buf.push(transition(1.0));
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }

    #[test]
    fn sampling_empty_buffer_is_empty_not_panic() {
        let buf = ReplayBuffer::new(4);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        assert!(buf.sample(8, &mut rng).is_empty());
    }
}
