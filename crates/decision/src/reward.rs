//! The hybrid reward function (paper §IV-C, Eqs. 28–30): a weighted sum of
//! safety (time-to-collision), efficiency (speed), comfort (jerk) and
//! impact (deceleration forced onto the rear vehicle).

use serde::{Deserialize, Serialize};

/// Reward coefficients and thresholds. Defaults are the paper's grid-search
/// winners (Table VII): `w = (0.9, 0.8, 0.6, 0.2)`, `G = 4 s`,
/// `v_thr = 0.5 m/s`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Safety weight `w1`.
    pub w_safety: f64,
    /// Efficiency weight `w2`.
    pub w_efficiency: f64,
    /// Comfort weight `w3`.
    pub w_comfort: f64,
    /// Impact weight `w4` (0 disables the paper's contribution — the
    /// HEAD-w/o-IMP ablation).
    pub w_impact: f64,
    /// TTC scaling threshold `G`, s.
    pub ttc_threshold: f64,
    /// Rear-deceleration threshold `v_thr`, m/s.
    pub v_thr: f64,
    /// Acceleration bound `a'`, m/s².
    pub a_max: f64,
    /// Speed limits, m/s.
    pub v_min: f64,
    /// Speed limit, m/s.
    pub v_max: f64,
    /// Step length Δt, s.
    pub dt: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        Self {
            w_safety: 0.9,
            w_efficiency: 0.8,
            w_comfort: 0.6,
            w_impact: 0.2,
            ttc_threshold: 4.0,
            v_thr: 0.5,
            a_max: 3.0,
            v_min: 5.0 / 3.6,
            v_max: 25.0,
            dt: 0.5,
        }
    }
}

/// Everything the reward needs to know about one transition.
#[derive(Clone, Copy, Debug, Default)]
pub struct RewardInput {
    /// The ego collided (vehicle crash or road-boundary hit) this step.
    pub collision: bool,
    /// Longitudinal distance to the front vehicle at `t+1`, m (`d_lon`).
    pub front_gap: Option<f64>,
    /// Relative velocity of the front vehicle at `t+1`
    /// (`v(C2, A)`; negative = closing).
    pub front_v_rel: Option<f64>,
    /// The front slot is a constructed phantom (TTC masked per the paper).
    pub front_is_phantom: bool,
    /// Ego velocity at `t+1`, m/s.
    pub ego_vel_next: f64,
    /// Acceleration commanded at `t`.
    pub accel: f64,
    /// Acceleration commanded at `t-1`.
    pub prev_accel: f64,
    /// Rear vehicle's velocity at `t`, m/s.
    pub rear_vel_now: Option<f64>,
    /// Rear vehicle's velocity at `t+1`, m/s.
    pub rear_vel_next: Option<f64>,
    /// The rear slot is a constructed phantom (impact masked).
    pub rear_is_phantom: bool,
}

/// The four reward components plus their weighted sum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RewardParts {
    /// `r1 ∈ [-3, 0]`.
    pub safety: f64,
    /// `r2 ∈ [0, 1]`.
    pub efficiency: f64,
    /// `r3 ∈ [-1, 0]`.
    pub comfort: f64,
    /// `r4 ∈ [-1, 0]`.
    pub impact: f64,
    /// `w1 r1 + w2 r2 + w3 r3 + w4 r4`.
    pub total: f64,
}

impl RewardConfig {
    /// Evaluates the hybrid reward for one transition.
    pub fn evaluate(&self, input: &RewardInput) -> RewardParts {
        let safety = self.safety(input);
        let efficiency =
            ((input.ego_vel_next - self.v_min) / (self.v_max - self.v_min)).clamp(0.0, 1.0);
        let comfort = -((input.accel - input.prev_accel).abs() / (2.0 * self.a_max)).min(1.0);
        let impact = self.impact(input);
        let total = self.w_safety * safety
            + self.w_efficiency * efficiency
            + self.w_comfort * comfort
            + self.w_impact * impact;
        RewardParts {
            safety,
            efficiency,
            comfort,
            impact,
            total,
        }
    }

    /// Eq. 29. TTC is only defined while closing on the front vehicle
    /// (`v_rel < 0`); phantoms contribute only through collisions.
    fn safety(&self, input: &RewardInput) -> f64 {
        if input.collision {
            return -3.0;
        }
        if input.front_is_phantom {
            return 0.0;
        }
        match (input.front_gap, input.front_v_rel) {
            (Some(gap), Some(v_rel)) if v_rel < 0.0 => {
                let ttc = gap / (-v_rel);
                if ttc >= 0.0 && ttc < self.ttc_threshold {
                    (ttc / self.ttc_threshold).ln().max(-3.0)
                } else {
                    0.0
                }
            }
            _ => 0.0,
        }
    }

    /// Eq. 30: penalise forcing the rear vehicle to decelerate by more
    /// than `v_thr` within one step.
    fn impact(&self, input: &RewardInput) -> f64 {
        if input.rear_is_phantom {
            return 0.0;
        }
        match (input.rear_vel_now, input.rear_vel_next) {
            (Some(now), Some(next)) if now - next > self.v_thr => {
                ((next - now) / (2.0 * self.a_max * self.dt)).max(-1.0)
            }
            _ => 0.0,
        }
    }

    /// Returns the weights as the `(w1, w2, w3, w4)` tuple (Table VII).
    pub fn weights(&self) -> (f64, f64, f64, f64) {
        (
            self.w_safety,
            self.w_efficiency,
            self.w_comfort,
            self.w_impact,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_input() -> RewardInput {
        RewardInput {
            ego_vel_next: 20.0,
            ..Default::default()
        }
    }

    #[test]
    fn collision_gives_minimum_safety() {
        let cfg = RewardConfig::default();
        let parts = cfg.evaluate(&RewardInput {
            collision: true,
            ..base_input()
        });
        assert_eq!(parts.safety, -3.0);
    }

    #[test]
    fn ttc_below_threshold_is_log_penalised() {
        let cfg = RewardConfig::default();
        // gap 20 m, closing at 10 m/s -> TTC = 2 s < G = 4 s.
        let parts = cfg.evaluate(&RewardInput {
            front_gap: Some(20.0),
            front_v_rel: Some(-10.0),
            ..base_input()
        });
        assert!((parts.safety - (2.0f64 / 4.0).ln()).abs() < 1e-12);
        assert!(parts.safety < 0.0 && parts.safety > -3.0);
    }

    #[test]
    fn ttc_penalty_clipped_at_minus_three() {
        let cfg = RewardConfig::default();
        let parts = cfg.evaluate(&RewardInput {
            front_gap: Some(0.01),
            front_v_rel: Some(-25.0),
            ..base_input()
        });
        assert_eq!(parts.safety, -3.0);
    }

    #[test]
    fn receding_front_vehicle_is_safe() {
        let cfg = RewardConfig::default();
        let parts = cfg.evaluate(&RewardInput {
            front_gap: Some(5.0),
            front_v_rel: Some(2.0),
            ..base_input()
        });
        assert_eq!(parts.safety, 0.0);
    }

    #[test]
    fn phantom_front_masks_ttc() {
        let cfg = RewardConfig::default();
        let parts = cfg.evaluate(&RewardInput {
            front_gap: Some(1.0),
            front_v_rel: Some(-20.0),
            front_is_phantom: true,
            ..base_input()
        });
        assert_eq!(parts.safety, 0.0);
    }

    #[test]
    fn efficiency_spans_unit_interval() {
        let cfg = RewardConfig::default();
        let at = |v: f64| {
            cfg.evaluate(&RewardInput {
                ego_vel_next: v,
                ..base_input()
            })
            .efficiency
        };
        assert_eq!(at(cfg.v_min), 0.0);
        assert_eq!(at(cfg.v_max), 1.0);
        assert!(at(13.2) > 0.0 && at(13.2) < 1.0);
        assert_eq!(at(99.0), 1.0, "clamped above v_max");
    }

    #[test]
    fn comfort_penalises_jerk() {
        let cfg = RewardConfig::default();
        let parts = cfg.evaluate(&RewardInput {
            accel: 3.0,
            prev_accel: -3.0,
            ..base_input()
        });
        assert_eq!(parts.comfort, -1.0);
        let smooth = cfg.evaluate(&RewardInput {
            accel: 1.0,
            prev_accel: 1.0,
            ..base_input()
        });
        assert_eq!(smooth.comfort, 0.0);
    }

    #[test]
    fn impact_fires_only_above_threshold() {
        let cfg = RewardConfig::default();
        let big = cfg.evaluate(&RewardInput {
            rear_vel_now: Some(20.0),
            rear_vel_next: Some(18.0),
            ..base_input()
        });
        assert!((big.impact - (-2.0 / 3.0)).abs() < 1e-12);
        let small = cfg.evaluate(&RewardInput {
            rear_vel_now: Some(20.0),
            rear_vel_next: Some(19.8),
            ..base_input()
        });
        assert_eq!(small.impact, 0.0, "0.2 m/s is below v_thr");
        let accelerating = cfg.evaluate(&RewardInput {
            rear_vel_now: Some(20.0),
            rear_vel_next: Some(21.0),
            ..base_input()
        });
        assert_eq!(accelerating.impact, 0.0);
    }

    #[test]
    fn phantom_rear_masks_impact() {
        let cfg = RewardConfig::default();
        let parts = cfg.evaluate(&RewardInput {
            rear_vel_now: Some(20.0),
            rear_vel_next: Some(10.0),
            rear_is_phantom: true,
            ..base_input()
        });
        assert_eq!(parts.impact, 0.0);
    }

    #[test]
    fn total_is_weighted_sum() {
        let cfg = RewardConfig::default();
        let input = RewardInput {
            front_gap: Some(20.0),
            front_v_rel: Some(-10.0),
            accel: 2.0,
            prev_accel: 0.0,
            rear_vel_now: Some(20.0),
            rear_vel_next: Some(18.0),
            ..base_input()
        };
        let p = cfg.evaluate(&input);
        let expected = 0.9 * p.safety + 0.8 * p.efficiency + 0.6 * p.comfort + 0.2 * p.impact;
        assert!((p.total - expected).abs() < 1e-12);
    }

    #[test]
    fn component_bounds_hold_over_sweep() {
        let cfg = RewardConfig::default();
        for gap in [0.1, 1.0, 10.0, 100.0] {
            for v_rel in [-30.0, -5.0, 0.0, 5.0] {
                for vel in [0.0, 10.0, 25.0] {
                    let p = cfg.evaluate(&RewardInput {
                        front_gap: Some(gap),
                        front_v_rel: Some(v_rel),
                        ego_vel_next: vel,
                        accel: 3.0,
                        prev_accel: -1.0,
                        rear_vel_now: Some(20.0),
                        rear_vel_next: Some(12.0),
                        ..Default::default()
                    });
                    assert!((-3.0..=0.0).contains(&p.safety));
                    assert!((0.0..=1.0).contains(&p.efficiency));
                    assert!((-1.0..=0.0).contains(&p.comfort));
                    assert!((-1.0..=0.0).contains(&p.impact));
                }
            }
        }
    }
}
