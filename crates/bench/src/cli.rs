//! Shared command-line parsing for the bench binaries.
//!
//! Every binary accepts the same flag vocabulary ([`COMMON_FLAGS`]), plus
//! an optional per-binary extension list. Each flag takes exactly one
//! value. Anything outside the vocabulary — an unknown flag, a positional
//! argument, a flag without its value — exits with status 2 *before* any
//! work starts, so scripts and CI fail fast on typos instead of silently
//! running a default configuration.

use head::experiments::Scale;

/// Flags every bench binary accepts (each takes one value):
///
/// * `--scale smoke|bench|paper` — experiment sizing (default `bench`)
/// * `--episodes N` / `--eval N` / `--seed N` — sizing overrides
/// * `--faults none|light|heavy|blackout` — fault-injection profile
/// * `--json PATH` — write the report JSON to `PATH`
/// * `--telemetry DIR` — record a JSONL telemetry run into `DIR`
/// * `--threads N` — worker count for the deterministic pool
/// * `--trends PATH` — append this run's metrics to the trend database
/// * `--shards N` — segment-shard count for the fleet world
/// * `--avs N` — concurrent HEAD agents in the fleet world
pub const COMMON_FLAGS: &[&str] = &[
    "--scale",
    "--episodes",
    "--eval",
    "--seed",
    "--faults",
    "--json",
    "--telemetry",
    "--threads",
    "--trends",
    "--shards",
    "--avs",
];

/// Capacity of the per-run flight-recorder ring installed by
/// [`Cli::init_telemetry`]: enough to hold the event window of several
/// episodes leading up to a fault without measurable recording cost.
pub const FLIGHT_CAPACITY: usize = 256;

/// The parsed command line of a bench binary.
#[derive(Debug)]
pub struct Cli {
    bin: String,
    pairs: Vec<(String, String)>,
}

impl Cli {
    /// Parses the process arguments against [`COMMON_FLAGS`] plus `extra`;
    /// any violation prints the accepted vocabulary and exits 2.
    pub fn parse(bin: &str, extra: &[&str]) -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        match Self::try_parse(bin, extra, raw) {
            Ok(cli) => cli,
            Err(e) => {
                eprintln!("{bin}: {e}");
                let mut vocab: Vec<&str> = COMMON_FLAGS.to_vec();
                vocab.extend_from_slice(extra);
                eprintln!("accepted flags (each takes one value): {}", vocab.join(" "));
                std::process::exit(2);
            }
        }
    }

    /// The fallible core of [`Cli::parse`], separated for unit testing.
    pub fn try_parse(bin: &str, extra: &[&str], raw: Vec<String>) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let flag = &raw[i];
            if !flag.starts_with("--") {
                return Err(format!(
                    "unexpected argument '{flag}' (flags start with --)"
                ));
            }
            if !COMMON_FLAGS.contains(&flag.as_str()) && !extra.contains(&flag.as_str()) {
                return Err(format!("unknown flag '{flag}'"));
            }
            match raw.get(i + 1) {
                Some(value) if !value.starts_with("--") => {
                    pairs.push((flag.clone(), value.clone()));
                }
                _ => return Err(format!("flag '{flag}' needs a value")),
            }
            i += 2;
        }
        Ok(Self {
            bin: bin.to_string(),
            pairs,
        })
    }

    /// The raw value of a flag, when it was given.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    /// A parsed flag value. A present-but-malformed value exits 2 — a typo
    /// must not silently run the default.
    pub fn parsed<T: std::str::FromStr>(&self, flag: &str) -> Option<T> {
        self.value(flag).map(|v| match v.parse() {
            Ok(x) => x,
            Err(_) => {
                eprintln!("{}: flag '{flag}' has malformed value '{v}'", self.bin);
                std::process::exit(2);
            }
        })
    }

    /// Resolves the experiment sizing from `--scale` and the override
    /// flags. An unknown scale or fault-profile name exits 2.
    pub fn scale(&self) -> Scale {
        let mut scale = match self.value("--scale") {
            None | Some("bench") => Scale::bench(),
            Some("smoke") => Scale::smoke(),
            Some("paper") => Scale::paper(),
            Some(other) => {
                eprintln!(
                    "{}: unknown scale '{other}' (expected smoke|bench|paper)",
                    self.bin
                );
                std::process::exit(2);
            }
        };
        if let Some(n) = self.parsed("--episodes") {
            scale.train_episodes = n;
        }
        if let Some(n) = self.parsed("--eval") {
            scale.eval_episodes = n;
        }
        if let Some(n) = self.parsed("--seed") {
            scale.env.seed = n;
        }
        if let Some(name) = self.value("--faults") {
            match sensor::FaultProfile::from_name(name) {
                Some(profile) => scale.env.faults = Some(profile),
                None => {
                    eprintln!(
                        "{}: unknown fault profile '{name}' (expected none|light|heavy|blackout)",
                        self.bin
                    );
                    std::process::exit(2);
                }
            }
        }
        scale
    }

    /// Applies `--threads N` to the process-wide deterministic worker pool
    /// and returns the resulting worker count (1 when the flag is absent
    /// and no earlier call changed it).
    pub fn apply_threads(&self) -> usize {
        if let Some(n) = self.parsed::<usize>("--threads") {
            par::set_threads(n);
        }
        par::threads()
    }

    /// Writes the report JSON when `--json PATH` was given, and appends
    /// the report's numeric metrics to the trend database when `--trends`
    /// was also given.
    pub fn write_json<T: serde::Serialize>(&self, report: &T) {
        // lint:allow(panic) report structs are plain data; serialisation cannot fail
        let json = serde_json::to_string_pretty(report).expect("serialisable report");
        if let Some(path) = self.value("--json") {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {path}");
        }
        if let Ok(doc) = telemetry::Json::parse(&json) {
            self.append_trend_json(&[("", &doc)]);
        }
    }

    /// Appends one [`telemetry::TrendEntry`] for this run to the database
    /// named by `--trends PATH` (a no-op without the flag). Each `(prefix,
    /// doc)` pair contributes its flattened numeric metrics, prefixed so
    /// multiple report documents (e.g. perf's parallel + core JSONs) can
    /// share one entry without name collisions.
    pub fn append_trend_json(&self, docs: &[(&str, &telemetry::Json)]) {
        let Some(path) = self.value("--trends") else {
            return;
        };
        let mut metrics: Vec<(String, f64)> = Vec::new();
        for (prefix, doc) in docs {
            for (name, value) in crate::diff::flatten(doc) {
                if let crate::diff::Value::Num(n) = value {
                    let full = if prefix.is_empty() {
                        name
                    } else {
                        format!("{prefix}.{name}")
                    };
                    metrics.push((full, n));
                }
            }
        }
        let context = vec![
            (
                "scale".to_string(),
                telemetry::Json::from(self.value("--scale").unwrap_or("bench")),
            ),
            (
                "threads".to_string(),
                telemetry::Json::from(self.resolved_threads()),
            ),
            (
                "faults".to_string(),
                telemetry::Json::from(self.value("--faults").unwrap_or("none")),
            ),
        ];
        let entry = telemetry::TrendEntry::now(&self.bin, context, metrics);
        match telemetry::append_trend(path, &entry) {
            Ok(()) => eprintln!("trend: appended {} entry to {path}", self.bin),
            Err(e) => eprintln!("trend: cannot append to {path}: {e}"),
        }
    }

    /// The worker count this run uses: the `--threads` flag when given
    /// (whether or not [`Cli::apply_threads`] has run yet), else the
    /// pool's current setting.
    fn resolved_threads(&self) -> usize {
        self.parsed::<usize>("--threads")
            .unwrap_or_else(par::threads)
    }

    /// Enables telemetry and installs a JSONL run recorder when requested
    /// via `--telemetry DIR` or the `TELEMETRY_DIR` environment variable.
    /// The sink is `DIR/<table>.telemetry.jsonl`; its first line is a run
    /// manifest embedding the resolved environment config, seed, episode
    /// budgets, worker count and fault profile (git revision is stamped by
    /// the manifest writer itself), so trend entries and flight dumps can
    /// be traced back to exactly what produced them. A flight recorder
    /// dumping into `DIR/flight/` and a panic hook that flushes it are
    /// installed alongside. Spans/metrics alone (no sink) can be switched
    /// on with `TELEMETRY=1`. Returns `true` when a recorder was
    /// installed.
    pub fn init_telemetry(&self, table: &str, scale: &Scale) -> bool {
        telemetry::init_from_env();
        let dir = self
            .value("--telemetry")
            .map(str::to_string)
            .or_else(|| std::env::var("TELEMETRY_DIR").ok());
        let Some(dir) = dir else { return false };
        telemetry::set_enabled(true);
        let threads = self.resolved_threads();
        // The profile name only exists at the CLI boundary; a profile set
        // programmatically (no flag) is recorded as "custom".
        let faults = self
            .value("--faults")
            .unwrap_or(if scale.env.faults.is_some() {
                "custom"
            } else {
                "none"
            });
        let path = std::path::Path::new(&dir).join(format!("{table}.telemetry.jsonl"));
        match telemetry::RunRecorder::create(&path) {
            Ok(rec) => {
                // Re-encode the serde config through the telemetry Json type
                // so the manifest embeds it structurally, not as a string.
                let config = serde_json::to_string(&scale.env)
                    .ok()
                    .and_then(|s| telemetry::Json::parse(&s).ok())
                    .unwrap_or(telemetry::Json::Null);
                rec.write_manifest(vec![
                    ("table", telemetry::Json::from(table)),
                    ("seed", telemetry::Json::from(scale.env.seed)),
                    (
                        "train_episodes",
                        telemetry::Json::from(scale.train_episodes),
                    ),
                    ("eval_episodes", telemetry::Json::from(scale.eval_episodes)),
                    ("threads", telemetry::Json::from(threads)),
                    ("faults", telemetry::Json::from(faults)),
                    ("config", config),
                ]);
                telemetry::install_recorder(rec);
                eprintln!("telemetry: recording to {}", path.display());
            }
            Err(e) => {
                eprintln!("telemetry: cannot create {}: {e}", path.display());
                return false;
            }
        }
        let mut flight = telemetry::FlightRecorder::new(FLIGHT_CAPACITY);
        flight.configure_dumps(
            std::path::Path::new(&dir).join("flight"),
            table,
            vec![
                ("bin".to_string(), telemetry::Json::from(table)),
                ("seed".to_string(), telemetry::Json::from(scale.env.seed)),
                ("threads".to_string(), telemetry::Json::from(threads)),
                ("faults".to_string(), telemetry::Json::from(faults)),
            ],
        );
        telemetry::flight_install(flight);
        telemetry::flight_install_panic_hook();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn common_flags_parse() {
        let cli = Cli::try_parse("t", &[], args(&["--scale", "smoke", "--eval", "7"]))
            .expect("valid args");
        assert_eq!(cli.value("--scale"), Some("smoke"));
        assert_eq!(cli.parsed::<usize>("--eval"), Some(7));
        assert_eq!(cli.value("--seed"), None);
        let scale = cli.scale();
        assert_eq!(scale.eval_episodes, 7);
        assert!(scale.train_episodes <= 20, "smoke sizing");
    }

    #[test]
    fn fleet_flags_are_common_vocabulary() {
        let cli =
            Cli::try_parse("t", &[], args(&["--shards", "4", "--avs", "8"])).expect("valid args");
        assert_eq!(cli.parsed::<usize>("--shards"), Some(4));
        assert_eq!(cli.parsed::<usize>("--avs"), Some(8));
    }

    #[test]
    fn extra_flags_are_per_binary() {
        assert!(Cli::try_parse("t", &["--reps"], args(&["--reps", "3"])).is_ok());
        let err = Cli::try_parse("t", &[], args(&["--reps", "3"])).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn unknown_flag_rejected() {
        let err = Cli::try_parse("t", &[], args(&["--bogus", "1"])).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn positional_argument_rejected() {
        let err = Cli::try_parse("t", &[], args(&["smoke"])).unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
    }

    #[test]
    fn missing_value_rejected() {
        let err = Cli::try_parse("t", &[], args(&["--scale"])).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err = Cli::try_parse("t", &[], args(&["--scale", "--eval"])).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }
}
