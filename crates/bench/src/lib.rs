//! Shared helpers for the table-regeneration binaries.

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cli;

pub use cli::{Cli, COMMON_FLAGS};

/// Prints the hierarchical timing tree and the metrics report when
/// telemetry is enabled, then drops the recorder so its file is flushed
/// and closed before the process exits.
pub fn finish_telemetry() {
    if telemetry::enabled() {
        println!("{}", telemetry::timing_report());
        println!("{}", telemetry::metrics_report());
    }
    drop(telemetry::take_recorder());
}
