//! Shared helpers for the table-regeneration binaries.

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use head::experiments::Scale;

/// Parses the common CLI flags of the table binaries:
/// `--scale smoke|bench|paper` (default `bench`),
/// `--episodes N` / `--eval N` / `--seed N` overrides, and
/// `--faults none|light|heavy|blackout` for fault-injection runs
/// (an unknown profile name exits with status 2).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = match flag_value(&args, "--scale").as_deref() {
        Some("smoke") => Scale::smoke(),
        Some("paper") => Scale::paper(),
        _ => Scale::bench(),
    };
    if let Some(n) = flag_value(&args, "--episodes").and_then(|v| v.parse().ok()) {
        scale.train_episodes = n;
    }
    if let Some(n) = flag_value(&args, "--eval").and_then(|v| v.parse().ok()) {
        scale.eval_episodes = n;
    }
    if let Some(n) = flag_value(&args, "--seed").and_then(|v| v.parse().ok()) {
        scale.env.seed = n;
    }
    if let Some(name) = flag_value(&args, "--faults") {
        match sensor::FaultProfile::from_name(&name) {
            Some(profile) => scale.env.faults = Some(profile),
            None => {
                eprintln!("unknown fault profile '{name}' (expected none|light|heavy|blackout)");
                std::process::exit(2);
            }
        }
    }
    scale
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Writes a report JSON next to stdout output when `--json PATH` is given.
pub fn maybe_write_json<T: serde::Serialize>(report: &T) {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = flag_value(&args, "--json") {
        // lint:allow(panic) report structs are plain data; serialisation cannot fail
        let json = serde_json::to_string_pretty(report).expect("serialisable report");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path}");
    }
}

/// Enables telemetry and installs a JSONL run recorder when requested via
/// `--telemetry DIR` or the `TELEMETRY_DIR` environment variable. The sink
/// is `DIR/<table>.telemetry.jsonl`; its first line is a run manifest
/// embedding the resolved environment config, seed and episode budgets.
/// Spans/metrics alone (no sink) can be switched on with `TELEMETRY=1`.
/// Returns `true` when a recorder was installed.
pub fn init_telemetry(table: &str, scale: &Scale) -> bool {
    telemetry::init_from_env();
    let args: Vec<String> = std::env::args().collect();
    let dir = flag_value(&args, "--telemetry").or_else(|| std::env::var("TELEMETRY_DIR").ok());
    let Some(dir) = dir else { return false };
    telemetry::set_enabled(true);
    let path = std::path::Path::new(&dir).join(format!("{table}.telemetry.jsonl"));
    match telemetry::RunRecorder::create(&path) {
        Ok(rec) => {
            // Re-encode the serde config through the telemetry Json type so
            // the manifest embeds it structurally rather than as a string.
            let config = serde_json::to_string(&scale.env)
                .ok()
                .and_then(|s| telemetry::Json::parse(&s).ok())
                .unwrap_or(telemetry::Json::Null);
            rec.write_manifest(vec![
                ("table", telemetry::Json::from(table)),
                ("seed", telemetry::Json::from(scale.env.seed)),
                (
                    "train_episodes",
                    telemetry::Json::from(scale.train_episodes),
                ),
                ("eval_episodes", telemetry::Json::from(scale.eval_episodes)),
                ("config", config),
            ]);
            telemetry::install_recorder(rec);
            eprintln!("telemetry: recording to {}", path.display());
            true
        }
        Err(e) => {
            eprintln!("telemetry: cannot create {}: {e}", path.display());
            false
        }
    }
}

/// Prints the hierarchical timing tree and the metrics report when
/// telemetry is enabled, then drops the recorder so its file is flushed
/// and closed before the process exits.
pub fn finish_telemetry() {
    if telemetry::enabled() {
        println!("{}", telemetry::timing_report());
        println!("{}", telemetry::metrics_report());
    }
    drop(telemetry::take_recorder());
}
