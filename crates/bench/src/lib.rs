//! Shared helpers for the table-regeneration binaries.

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cli;
pub mod diff;

pub use cli::{Cli, COMMON_FLAGS};

/// Number of hot paths shown in every bin's self-time profile table.
pub const PROFILE_TOP_N: usize = 12;

/// Prints the hierarchical timing tree, the self-time profile table and
/// the metrics report when telemetry is enabled, exports the span tree as
/// folded stacks next to the JSONL sink, then drops the run and flight
/// recorders so their files are flushed and closed before the process
/// exits.
pub fn finish_telemetry() {
    let snapshot = telemetry::span_snapshot();
    if telemetry::enabled() {
        println!("{}", telemetry::timing_report());
        println!("{}", telemetry::profile_report(&snapshot, PROFILE_TOP_N));
        println!("{}", telemetry::metrics_report());
    }
    // Folded-stack export (`flamegraph.pl < x.folded > x.svg`) lands next
    // to the telemetry sink: results/<table>.telemetry.jsonl -> <table>.folded.
    if let Some(path) = telemetry::recorder_path() {
        let folded = telemetry::folded_stacks(&snapshot);
        if !folded.is_empty() {
            let folded_path = folded_sibling(&path);
            match std::fs::write(&folded_path, folded) {
                Ok(()) => eprintln!("telemetry: folded stacks at {}", folded_path.display()),
                Err(e) => eprintln!("telemetry: cannot write {}: {e}", folded_path.display()),
            }
        }
    }
    if let Some((_, recorded, dumps, suppressed)) = telemetry::flight_status() {
        if dumps > 0 || suppressed > 0 {
            eprintln!(
                "flight recorder: {recorded} events, {dumps} dumps written, {suppressed} suppressed"
            );
        }
    }
    drop(telemetry::take_recorder());
    drop(telemetry::flight_take());
}

/// `results/table1.telemetry.jsonl` → `results/table1.folded`.
fn folded_sibling(sink: &std::path::Path) -> std::path::PathBuf {
    let stem = sink
        .file_name()
        .and_then(|n| n.to_str())
        .map(|n| n.trim_end_matches(".telemetry.jsonl"))
        .unwrap_or("run");
    sink.with_file_name(format!("{stem}.folded"))
}

#[cfg(test)]
mod tests {
    use super::folded_sibling;
    use std::path::Path;

    #[test]
    fn folded_path_replaces_sink_suffix() {
        assert_eq!(
            folded_sibling(Path::new("results/table1.telemetry.jsonl")),
            Path::new("results/table1.folded")
        );
        assert_eq!(
            folded_sibling(Path::new("other.jsonl")),
            Path::new("other.jsonl.folded")
        );
    }
}
