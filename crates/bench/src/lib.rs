//! Shared helpers for the table-regeneration binaries.

use head::experiments::Scale;

/// Parses the common CLI flags of the table binaries:
/// `--scale smoke|bench|paper` (default `bench`) and
/// `--episodes N` / `--eval N` overrides.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = match flag_value(&args, "--scale").as_deref() {
        Some("smoke") => Scale::smoke(),
        Some("paper") => Scale::paper(),
        _ => Scale::bench(),
    };
    if let Some(n) = flag_value(&args, "--episodes").and_then(|v| v.parse().ok()) {
        scale.train_episodes = n;
    }
    if let Some(n) = flag_value(&args, "--eval").and_then(|v| v.parse().ok()) {
        scale.eval_episodes = n;
    }
    if let Some(n) = flag_value(&args, "--seed").and_then(|v| v.parse().ok()) {
        scale.env.seed = n;
    }
    scale
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Writes a report JSON next to stdout output when `--json PATH` is given.
pub fn maybe_write_json<T: serde::Serialize>(report: &T) {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = flag_value(&args, "--json") {
        let json = serde_json::to_string_pretty(report).expect("serialisable report");
        std::fs::write(&path, json).expect("writable json path");
        eprintln!("wrote {path}");
    }
}
