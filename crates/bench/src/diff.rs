//! Metric diffing with per-metric tolerance bands — the core of the
//! `benchdiff` regression gate.
//!
//! A BENCH/table JSON is flattened into dotted metric names
//! (`ops.matmul.serial_wall_ms`, `profile.learn_step.alloc_reduction`,
//! ...), each name is classified into a direction-aware tolerance class,
//! and a candidate run is compared against a baseline metric-by-metric:
//!
//! * **time metrics** (`*_ms*`, `*wall*`, `*_ns`, `*_s`) — lower is
//!   better, generous relative band (wall clocks vary across hosts);
//! * **throughput metrics** (`*per_sec*`, `*speedup*`, `*reduction*`) —
//!   higher is better, same band;
//! * **bools and strings** (checksums, `checksums_equal`, op names) —
//!   exact match, no band: the determinism contract makes them stable, so
//!   any drift is a real regression;
//! * **everything else numeric** (counts, losses, rates) — symmetric
//!   relative band.
//!
//! A metric present in the baseline but missing from the candidate is a
//! regression (a silently dropped measurement must not pass the gate);
//! a metric new in the candidate is reported but never fails. A zero
//! baseline makes relative bands meaningless, so those fall back to an
//! absolute floor.

use std::fmt::Write as _;

use telemetry::Json;

/// How a metric's delta maps to better/worse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Time-like: regression when the candidate is *higher*.
    LowerBetter,
    /// Throughput-like: regression when the candidate is *lower*.
    HigherBetter,
    /// Counts/losses: regression when the candidate *moves* either way.
    Symmetric,
    /// Checksums, flags, labels: regression on any mismatch.
    Exact,
}

/// Relative tolerance bands, as fractions of the baseline value.
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// Band for symmetric numeric metrics.
    pub rel: f64,
    /// Band for direction-aware perf metrics (times, throughputs) —
    /// wider by default because wall clocks vary across hosts.
    pub time_rel: f64,
    /// Absolute band used when the baseline is exactly zero, where a
    /// relative band would either always or never trip.
    pub abs_floor: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            rel: 0.10,
            time_rel: 0.35,
            abs_floor: 1e-9,
        }
    }
}

/// A flattened metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Num(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::Num(n) => format!("{n:.6}"),
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => s.clone(),
        }
    }
}

/// Classifies a dotted metric name by its leaf segment.
pub fn classify(name: &str) -> Direction {
    let leaf = name.rsplit('.').next().unwrap_or(name);
    if leaf.contains("per_sec") || leaf.contains("speedup") || leaf.contains("reduction") {
        Direction::HigherBetter
    } else if leaf.contains("_ms")
        || leaf.contains("wall")
        || leaf.ends_with("_ns")
        || leaf.ends_with("_s")
    {
        Direction::LowerBetter
    } else {
        Direction::Symmetric
    }
}

/// Flattens a parsed BENCH/table JSON into dotted `(name, value)` pairs.
///
/// Objects contribute their key as a path segment; array elements use
/// their `op` or `name` field when present (so `ops.matmul.speedup`
/// instead of `ops.0.speedup`), falling back to the index. Non-finite
/// numbers are dropped — a NaN cannot be banded and must not poison the
/// diff. Null values are skipped.
pub fn flatten(doc: &Json) -> Vec<(String, Value)> {
    let mut out = Vec::new();
    walk(doc, String::new(), &mut out);
    out
}

fn join(prefix: &str, key: &str) -> String {
    if prefix.is_empty() {
        key.to_string()
    } else {
        format!("{prefix}.{key}")
    }
}

fn walk(v: &Json, prefix: String, out: &mut Vec<(String, Value)>) {
    match v {
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                walk(v, join(&prefix, k), out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = item
                    .get("op")
                    .or_else(|| item.get("name"))
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .unwrap_or_else(|| i.to_string());
                walk(item, join(&prefix, &label), out);
            }
        }
        Json::Num(n) => {
            if n.is_finite() {
                out.push((prefix, Value::Num(*n)));
            }
        }
        Json::Bool(b) => out.push((prefix, Value::Bool(*b))),
        Json::Str(s) => out.push((prefix, Value::Str(s.clone()))),
        Json::Null => {}
    }
}

/// Verdict for one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Within tolerance.
    Ok,
    /// Beyond tolerance in the good direction (reported, never fails).
    Improved,
    /// Beyond tolerance in the bad direction, or an exact-class mismatch.
    Regressed,
    /// Present in the baseline, absent from the candidate — fails.
    Missing,
    /// Absent from the baseline — informational only.
    New,
}

impl Status {
    fn label(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Improved => "improved",
            Status::Regressed => "REGRESSED",
            Status::Missing => "MISSING",
            Status::New => "new",
        }
    }

    /// True for the statuses that make `benchdiff` exit 1.
    pub fn fails(self) -> bool {
        matches!(self, Status::Regressed | Status::Missing)
    }
}

/// One metric's comparison.
#[derive(Clone, Debug)]
pub struct DiffLine {
    pub name: String,
    pub base: Option<Value>,
    pub cand: Option<Value>,
    pub status: Status,
    /// Human-readable delta (relative change, mismatch note, ...).
    pub detail: String,
}

/// The full metric-by-metric comparison of two runs.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    pub lines: Vec<DiffLine>,
}

impl DiffReport {
    /// Number of failing metrics (regressed or missing).
    pub fn failures(&self) -> usize {
        self.lines.iter().filter(|l| l.status.fails()).count()
    }

    /// Renders the comparison table; `verbose` includes in-band metrics,
    /// otherwise only deviations (and a summary line) are shown.
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<46} {:>14} {:>14}  {:<9} note",
            "metric", "baseline", "candidate", "status"
        );
        for l in &self.lines {
            if !verbose && l.status == Status::Ok {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<46} {:>14} {:>14}  {:<9} {}",
                l.name,
                l.base.as_ref().map(Value::render).unwrap_or_default(),
                l.cand.as_ref().map(Value::render).unwrap_or_default(),
                l.status.label(),
                l.detail,
            );
        }
        let fails = self.failures();
        let _ = writeln!(
            out,
            "benchdiff: {} metrics, {} failing{}",
            self.lines.len(),
            fails,
            if fails == 0 {
                " (within tolerance)"
            } else {
                ""
            },
        );
        out
    }

    /// JSON form of the comparison, for archiving alongside the run.
    pub fn to_json(&self) -> Json {
        let lines: Vec<Json> = self
            .lines
            .iter()
            .map(|l| {
                let val = |v: &Option<Value>| match v {
                    Some(Value::Num(n)) => Json::Num(*n),
                    Some(Value::Bool(b)) => Json::Bool(*b),
                    Some(Value::Str(s)) => Json::from(s.as_str()),
                    None => Json::Null,
                };
                Json::obj(vec![
                    ("metric", Json::from(l.name.as_str())),
                    ("base", val(&l.base)),
                    ("cand", val(&l.cand)),
                    ("status", Json::from(l.status.label())),
                    ("note", Json::from(l.detail.as_str())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("kind", Json::from("benchdiff")),
            ("failing", Json::from(self.failures())),
            ("lines", Json::Arr(lines)),
        ])
    }
}

fn compare_numeric(name: &str, base: f64, cand: f64, tol: &Tolerances) -> (Status, String) {
    let dir = classify(name);
    let band = match dir {
        Direction::LowerBetter | Direction::HigherBetter => tol.time_rel,
        _ => tol.rel,
    };
    // lint:allow(float-eq) exact-zero baseline is the sentinel for "relative
    // band undefined"; any nonzero baseline takes the relative path
    if base == 0.0 {
        // Relative bands are meaningless at a zero baseline: fall back to
        // an absolute floor (direction-aware, like the relative path).
        let delta = cand - base;
        let beyond = delta.abs() > tol.abs_floor;
        let status = match dir {
            _ if !beyond => Status::Ok,
            Direction::LowerBetter => {
                if delta > 0.0 {
                    Status::Regressed
                } else {
                    Status::Improved
                }
            }
            Direction::HigherBetter => {
                if delta < 0.0 {
                    Status::Regressed
                } else {
                    Status::Improved
                }
            }
            _ => Status::Regressed,
        };
        return (
            status,
            format!("zero baseline, |Δ| vs floor {:e}", tol.abs_floor),
        );
    }
    let rel = (cand - base) / base.abs();
    let detail = format!("{:+.1}% (band ±{:.0}%)", rel * 100.0, band * 100.0);
    let status = match dir {
        Direction::LowerBetter => {
            if rel > band {
                Status::Regressed
            } else if rel < -band {
                Status::Improved
            } else {
                Status::Ok
            }
        }
        Direction::HigherBetter => {
            if rel < -band {
                Status::Regressed
            } else if rel > band {
                Status::Improved
            } else {
                Status::Ok
            }
        }
        Direction::Symmetric | Direction::Exact => {
            if rel.abs() > band {
                Status::Regressed
            } else {
                Status::Ok
            }
        }
    };
    (status, detail)
}

/// Compares candidate metrics against a baseline. Every baseline metric
/// must appear in the candidate (else [`Status::Missing`]); candidate
/// metrics without a baseline counterpart are [`Status::New`].
pub fn diff(base: &[(String, Value)], cand: &[(String, Value)], tol: &Tolerances) -> DiffReport {
    let mut lines = Vec::new();
    for (name, bval) in base {
        let Some((_, cval)) = cand.iter().find(|(n, _)| n == name) else {
            lines.push(DiffLine {
                name: name.clone(),
                base: Some(bval.clone()),
                cand: None,
                status: Status::Missing,
                detail: "metric absent from candidate".to_string(),
            });
            continue;
        };
        let (status, detail) = match (bval, cval) {
            (Value::Num(b), Value::Num(c)) => compare_numeric(name, *b, *c, tol),
            (b, c) if b == c => (Status::Ok, "exact match".to_string()),
            _ => (Status::Regressed, "exact-class mismatch".to_string()),
        };
        lines.push(DiffLine {
            name: name.clone(),
            base: Some(bval.clone()),
            cand: Some(cval.clone()),
            status,
            detail,
        });
    }
    for (name, cval) in cand {
        if !base.iter().any(|(n, _)| n == name) {
            lines.push(DiffLine {
                name: name.clone(),
                base: None,
                cand: Some(cval.clone()),
                status: Status::New,
                detail: "no baseline".to_string(),
            });
        }
    }
    DiffReport { lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nums(pairs: &[(&str, f64)]) -> Vec<(String, Value)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Num(*v)))
            .collect()
    }

    #[test]
    fn classification_by_leaf_segment() {
        assert_eq!(
            classify("ops.matmul.serial_wall_ms"),
            Direction::LowerBetter
        );
        assert_eq!(classify("mean_ms_per_call"), Direction::LowerBetter);
        assert_eq!(
            classify("ops.episodes.parallel_eps_per_sec"),
            Direction::HigherBetter
        );
        assert_eq!(
            classify("profile.learn_step.latency_speedup"),
            Direction::HigherBetter
        );
        assert_eq!(
            classify("profile.learn_step.alloc_reduction"),
            Direction::HigherBetter
        );
        assert_eq!(classify("ops.episodes.episodes"), Direction::Symmetric);
        assert_eq!(
            classify("profile.learn_step.tape_fresh"),
            Direction::Symmetric
        );
    }

    #[test]
    fn identical_runs_pass_clean() {
        let base = nums(&[("a.wall_ms", 10.0), ("b.count", 5.0)]);
        let report = diff(&base, &base, &Tolerances::default());
        assert_eq!(report.failures(), 0);
        assert!(report.lines.iter().all(|l| l.status == Status::Ok));
    }

    #[test]
    fn time_regression_beyond_band_fails() {
        let tol = Tolerances::default();
        let base = nums(&[("op.wall_ms", 100.0)]);
        // +30% is inside the ±35% band; +50% is out.
        let ok = diff(&base, &nums(&[("op.wall_ms", 130.0)]), &tol);
        assert_eq!(ok.failures(), 0);
        let bad = diff(&base, &nums(&[("op.wall_ms", 150.0)]), &tol);
        assert_eq!(bad.failures(), 1);
        assert_eq!(bad.lines[0].status, Status::Regressed);
        // Faster is an improvement, never a failure.
        let fast = diff(&base, &nums(&[("op.wall_ms", 20.0)]), &tol);
        assert_eq!(fast.failures(), 0);
        assert_eq!(fast.lines[0].status, Status::Improved);
    }

    #[test]
    fn throughput_direction_is_inverted() {
        let tol = Tolerances::default();
        let base = nums(&[("op.eps_per_sec", 100.0)]);
        let slow = diff(&base, &nums(&[("op.eps_per_sec", 50.0)]), &tol);
        assert_eq!(slow.lines[0].status, Status::Regressed);
        let fast = diff(&base, &nums(&[("op.eps_per_sec", 200.0)]), &tol);
        assert_eq!(fast.lines[0].status, Status::Improved);
        assert_eq!(fast.failures(), 0);
    }

    #[test]
    fn symmetric_band_flags_both_directions() {
        let tol = Tolerances::default();
        let base = nums(&[("run.success_rate", 0.90)]);
        assert_eq!(
            diff(&base, &nums(&[("run.success_rate", 0.88)]), &tol).failures(),
            0
        );
        assert_eq!(
            diff(&base, &nums(&[("run.success_rate", 0.70)]), &tol).failures(),
            1
        );
        assert_eq!(
            diff(&base, &nums(&[("run.success_rate", 1.20)]), &tol).failures(),
            1
        );
    }

    #[test]
    fn missing_metric_fails_and_new_metric_does_not() {
        let tol = Tolerances::default();
        let base = nums(&[("a.wall_ms", 1.0), ("b.wall_ms", 2.0)]);
        let cand = nums(&[("a.wall_ms", 1.0), ("c.wall_ms", 3.0)]);
        let report = diff(&base, &cand, &tol);
        assert_eq!(report.failures(), 1, "only the dropped metric fails");
        let missing = report.lines.iter().find(|l| l.name == "b.wall_ms").unwrap();
        assert_eq!(missing.status, Status::Missing);
        let fresh = report.lines.iter().find(|l| l.name == "c.wall_ms").unwrap();
        assert_eq!(fresh.status, Status::New);
    }

    #[test]
    fn zero_baseline_uses_absolute_floor() {
        let tol = Tolerances::default();
        let base = nums(&[("op.wall_ms", 0.0), ("run.count", 0.0)]);
        // Exact zero candidate passes both.
        assert_eq!(diff(&base, &base, &tol).failures(), 0);
        // Any real movement off a zero time baseline is a regression, not
        // a division-by-zero artifact.
        let worse = diff(
            &base,
            &nums(&[("op.wall_ms", 0.5), ("run.count", 0.0)]),
            &tol,
        );
        assert_eq!(worse.failures(), 1);
        assert_eq!(worse.lines[0].status, Status::Regressed);
        let moved = diff(
            &base,
            &nums(&[("op.wall_ms", 0.0), ("run.count", 3.0)]),
            &tol,
        );
        assert_eq!(
            moved.failures(),
            1,
            "symmetric zero baseline flags movement"
        );
    }

    #[test]
    fn exact_class_requires_equality() {
        let tol = Tolerances::default();
        let base = vec![
            ("checksum".to_string(), Value::Str("abcd".to_string())),
            ("checksums_equal".to_string(), Value::Bool(true)),
        ];
        assert_eq!(diff(&base, &base, &tol).failures(), 0);
        let cand = vec![
            ("checksum".to_string(), Value::Str("ffff".to_string())),
            ("checksums_equal".to_string(), Value::Bool(false)),
        ];
        let report = diff(&base, &cand, &tol);
        assert_eq!(report.failures(), 2);
    }

    #[test]
    fn flatten_uses_op_labels_and_drops_nan() {
        let doc = Json::parse(
            r#"{"bench":"parallel","ops":[{"op":"matmul","speedup":2.5},{"op":"episodes","bad":null}],"nested":{"x":1.5},"plain":[7,8]}"#,
        )
        .unwrap();
        let mut flat = flatten(&doc);
        flat.sort_by(|a, b| a.0.cmp(&b.0));
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "bench",
                "nested.x",
                "ops.episodes.op",
                "ops.matmul.op",
                "ops.matmul.speedup",
                "plain.0",
                "plain.1",
            ]
        );
        let nan_doc = Json::Obj(vec![("speedup".to_string(), Json::Num(f64::NAN))]);
        assert!(flatten(&nan_doc).is_empty(), "non-finite values dropped");
    }

    #[test]
    fn report_renders_summary_and_failures() {
        let tol = Tolerances::default();
        let base = nums(&[("a.wall_ms", 100.0), ("b.wall_ms", 1.0)]);
        let cand = nums(&[("a.wall_ms", 300.0), ("b.wall_ms", 1.0)]);
        let report = diff(&base, &cand, &tol);
        let text = report.render(false);
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("1 failing"), "{text}");
        assert!(!text.contains("b.wall_ms"), "in-band rows hidden:\n{text}");
        let verbose = report.render(true);
        assert!(verbose.contains("b.wall_ms"));
        let json = report.to_json();
        assert_eq!(json.get("failing").and_then(Json::as_f64), Some(1.0));
    }
}
