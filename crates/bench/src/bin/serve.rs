//! Chaos soak for the `headd` serving daemon.
//!
//! Drives a deterministic observation stream — corrupted by the selected
//! fault profile — through a real `headd` child process over the framed
//! stdio transport, and asserts the three robustness properties the serve
//! crate promises:
//!
//! 1. **Every request is answered** (degraded tiers allowed and counted),
//!    even under heavy faults, admission bursts and zero deadlines.
//! 2. **Crash-only restart is byte-identical**: the run performs a mid-run
//!    hot-reload, SIGKILLs the daemon mid-stream, restarts it from the
//!    last reloaded checkpoint, and requires the remaining responses to
//!    match an uninterrupted reference run byte for byte.
//! 3. **Zero panics**: both daemons must exit cleanly on `shutdown`.
//!
//! Client-side latencies (p50/p99 over the reference run) and the
//! deterministic degradation counters land in `BENCH_serve.json` for the
//! benchdiff gate; timing-dependent daemon counters (`serve.deadline_miss`)
//! are printed but deliberately kept out of the gated report.

use decision::{AgentConfig, AugmentedState, BpDqn, PamdpAgent};
use head::Checkpoint;
use sensor::{FaultProfile, FaultRng};
use serve::Request;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use telemetry::Json;

/// Exits the soak with a diagnostic; any violated property lands here.
fn fail(msg: &str) -> ! {
    eprintln!("serve soak FAILED: {msg}");
    std::process::exit(1);
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn write_checkpoint(dir: &Path, seed: u64) {
    let agent = BpDqn::new(AgentConfig {
        seed,
        ..AgentConfig::default()
    });
    let ckpt = Checkpoint {
        episode: 0,
        episodes: vec![],
        agent_json: Some(agent.save_json()),
        exploration_steps: 0,
        injector: None,
    };
    if let Err(e) = ckpt.save(dir) {
        fail(&format!(
            "cannot write checkpoint to {}: {e}",
            dir.display()
        ));
    }
}

/// The daemon binary lives next to this one in the cargo target directory.
fn headd_path() -> PathBuf {
    let me = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => fail(&format!("cannot locate current executable: {e}")),
    };
    let Some(dir) = me.parent() else {
        fail("current executable has no parent directory");
    };
    let headd = dir.join("headd");
    if !headd.exists() {
        fail(&format!(
            "{} not found — build it first: cargo build -p serve --bin headd",
            headd.display()
        ));
    }
    headd
}

fn spawn_headd(args: &[String]) -> Child {
    match Command::new(headd_path())
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => fail(&format!("cannot spawn headd: {e}")),
    }
}

/// Lockstep request/response over the child's stdio.
fn roundtrip(child: &mut Child, req: &Request) -> String {
    let Some(stdin) = child.stdin.as_mut() else {
        fail("child stdin not piped");
    };
    if let Err(e) = serve::write_frame(stdin, &req.encode()) {
        fail(&format!("write to daemon failed (crash?): {e}"));
    }
    let Some(stdout) = child.stdout.as_mut() else {
        fail("child stdout not piped");
    };
    read_one(stdout)
}

fn read_one(r: &mut impl Read) -> String {
    match serve::read_frame(r) {
        Ok(Some(text)) => text,
        Ok(None) => fail("daemon closed the stream instead of answering"),
        Err(e) => fail(&format!("read from daemon failed: {e}")),
    }
}

fn shutdown(mut child: Child, id: u64) {
    let resp = roundtrip(&mut child, &Request::Shutdown { id });
    if !resp.contains("\"bye\":true") {
        fail(&format!("shutdown not acknowledged: {resp}"));
    }
    match child.wait() {
        Ok(status) if status.success() => {}
        Ok(status) => fail(&format!("daemon exited uncleanly (panic?): {status:?}")),
        Err(e) => fail(&format!("wait for daemon failed: {e}")),
    }
}

/// Deterministic base observation for request `k` (no RNG: same bytes on
/// every run and host).
fn base_state(k: usize) -> AugmentedState {
    let mut s = AugmentedState::zeros();
    for (i, row) in s.current.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = ((k * 31 + i * 7 + j * 3) % 97) as f64 / 9.7 - 5.0;
        }
    }
    for (i, row) in s.future.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = ((k * 17 + i * 11 + j * 5) % 89) as f64 / 8.9 - 5.0;
        }
    }
    s
}

/// One soak observation: the base state pushed through the fault profile.
struct SoakState {
    state: AugmentedState,
    finite: bool,
}

/// Corrupts the deterministic base stream with the fault profile's rates,
/// using the sensor crate's own [`FaultRng`] so the schedule is seeded and
/// reproducible: blackouts wipe the whole sweep to NaN, NaN faults corrupt
/// one slot, dropouts zero a row, noise bursts perturb every slot.
fn build_stream(n: usize, seed: u64, profile: &FaultProfile) -> Vec<SoakState> {
    let mut rng = FaultRng::new(seed ^ 0x5EEDED);
    let mut stream = Vec::with_capacity(n);
    for k in 0..n {
        let mut state = base_state(k);
        let mut finite = true;
        if profile.active_at(k as u64) {
            if rng.uniform() < profile.blackout_rate {
                for row in state.current.iter_mut().chain(state.future.iter_mut()) {
                    row.fill(f64::NAN);
                }
                finite = false;
            } else if rng.uniform() < profile.nan_rate * 4.0 {
                let slot = (rng.next_u64() % 4) as usize;
                state.current[k % decision::CURRENT_ROWS][slot] = f64::NAN;
                finite = false;
            } else if rng.uniform() < profile.dropout_rate {
                state.current[k % decision::CURRENT_ROWS].fill(0.0);
            } else if rng.uniform() < profile.noise_rate {
                for row in state.current.iter_mut() {
                    for v in row.iter_mut() {
                        *v += profile.pos_sigma * rng.gaussian();
                    }
                }
            }
        }
        stream.push(SoakState { state, finite });
    }
    stream
}

fn decide_req(k: usize, state: &AugmentedState) -> Request {
    Request::Decide {
        id: k as u64,
        deadline_ms: f64::INFINITY,
        state: Box::new(*state),
    }
}

fn tier_of(resp: &str) -> String {
    Json::parse(resp)
        .ok()
        .and_then(|v| v.get("tier").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| fail(&format!("response without tier: {resp}")))
}

/// Nearest-rank percentile of a sorted sample.
fn percentile(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[derive(serde::Serialize)]
struct ServeReport {
    /// Byte-compared soak requests per daemon run.
    soak_requests: u64,
    /// Additional chaos-phase requests (bursts, NaNs, zero deadlines).
    chaos_requests: u64,
    /// Client-side round-trip latency over the reference run, ms.
    p50_ms: f64,
    p99_ms: f64,
    /// Every request (soak + chaos) got exactly one framed answer.
    all_responded: bool,
    /// Post-restart responses matched the uninterrupted run byte-for-byte.
    restart_byte_identical: bool,
    /// Both daemons exited cleanly on shutdown.
    zero_panics: bool,
    /// Deterministic degradation accounting, derived from typed responses.
    nonfinite_inputs: u64,
    tier_full: u64,
    tier_replay: u64,
    tier_safe: u64,
    shed: u64,
    reload_ok: u64,
    reload_rejected: u64,
}

fn main() {
    let cli = bench::Cli::parse("serve", &["--requests", "--capacity"]);
    let scale = cli.scale();
    cli.init_telemetry("serve", &scale);
    telemetry::set_enabled(true);

    let n: usize = cli.parsed("--requests").unwrap_or(1000);
    let capacity: usize = cli.parsed("--capacity").unwrap_or(8);
    let profile = scale.env.faults.unwrap_or_else(FaultProfile::heavy);
    let stream = build_stream(n, scale.env.seed, &profile);
    let nonfinite_inputs = stream.iter().filter(|s| !s.finite).count() as u64;

    // Boot weights and the hot-reload target (a differently seeded agent,
    // so the reload observably changes the decision function). The restart
    // resumes from the *reloaded* checkpoint — the daemon's last good set.
    let ckpt_boot = temp_dir("boot");
    let ckpt_next = temp_dir("next");
    write_checkpoint(&ckpt_boot, scale.env.seed);
    write_checkpoint(&ckpt_next, scale.env.seed + 1);
    let reload_at = n / 4;
    // The first post-restart request must be a finite observation so the
    // restarted ladder re-syncs on a full-tier answer before any fault.
    let mut cut = n / 2;
    while cut < n && !stream[cut].finite {
        cut += 1;
    }
    if !(reload_at < cut && cut < n) {
        fail("stream too short or too faulty to place reload/cut points");
    }

    let boot_args = vec![
        "--checkpoint".to_string(),
        ckpt_boot.display().to_string(),
        "--capacity".to_string(),
        capacity.to_string(),
    ];
    let resume_args = vec![
        "--checkpoint".to_string(),
        ckpt_next.display().to_string(),
        "--capacity".to_string(),
        capacity.to_string(),
    ];
    let reload_req = Request::Reload {
        id: 900_000,
        dir: ckpt_next.clone(),
    };

    // Phase A — reference: one daemon answers the whole stream, with the
    // hot reload applied mid-run. Round-trip latency is measured here.
    eprintln!("serve soak: {n} requests, reload at {reload_at}, kill at {cut}");
    let mut reference: Vec<String> = Vec::with_capacity(n);
    let mut reload_reference = String::new();
    let mut latencies: Vec<f64> = Vec::with_capacity(n);
    let mut reload_ok = 0u64;
    let mut child = spawn_headd(&boot_args);
    for (k, s) in stream.iter().enumerate() {
        if k == reload_at {
            reload_reference = roundtrip(&mut child, &reload_req);
            if !reload_reference.contains("\"reloaded\":true") {
                fail(&format!("mid-run reload rejected: {reload_reference}"));
            }
            reload_ok += 1;
        }
        let sw = telemetry::Stopwatch::start();
        reference.push(roundtrip(&mut child, &decide_req(k, &s.state)));
        latencies.push(sw.elapsed().as_secs_f64() * 1e3);
    }
    let stats = roundtrip(&mut child, &Request::Stats { id: 900_001 });
    eprintln!("reference daemon counters: {stats}");
    shutdown(child, 900_002);

    let mut tier_full = 0u64;
    let mut tier_replay = 0u64;
    let mut tier_safe = 0u64;
    for resp in &reference {
        match tier_of(resp).as_str() {
            "full" => tier_full += 1,
            "replay" => tier_replay += 1,
            "safe" => tier_safe += 1,
            other => fail(&format!("unknown tier '{other}'")),
        }
    }
    if tier_replay + tier_safe != nonfinite_inputs {
        fail(&format!(
            "degraded responses ({}) != non-finite inputs ({nonfinite_inputs})",
            tier_replay + tier_safe
        ));
    }

    // Phase B — chaos: same stream, same reload, but the daemon is
    // SIGKILLed mid-stream and a restart from the reloaded checkpoint must
    // finish the stream byte-identically.
    let mut restart_byte_identical = true;
    let mut child = spawn_headd(&boot_args);
    for (k, s) in stream.iter().enumerate().take(cut) {
        if k == reload_at {
            let got = roundtrip(&mut child, &reload_req);
            if got != reload_reference {
                fail(&format!("reload response diverged: {got}"));
            }
            reload_ok += 1;
        }
        let got = roundtrip(&mut child, &decide_req(k, &s.state));
        if got != reference[k] {
            eprintln!(
                "pre-kill divergence at {k}:\n  ref {}\n  got {got}",
                reference[k]
            );
            restart_byte_identical = false;
        }
    }
    if let Err(e) = child.kill() {
        fail(&format!("SIGKILL failed: {e}"));
    }
    let _ = child.wait();

    let mut child = spawn_headd(&resume_args);
    for (k, s) in stream.iter().enumerate().skip(cut) {
        let got = roundtrip(&mut child, &decide_req(k, &s.state));
        if got != reference[k] {
            eprintln!(
                "post-restart divergence at {k}:\n  ref {}\n  got {got}",
                reference[k]
            );
            restart_byte_identical = false;
        }
    }

    // Phase C — chaos ops on the restarted daemon (excluded from the
    // byte comparison; their outcomes are deterministic and counted from
    // the typed responses).
    let mut chaos_requests = 0u64;
    let mut shed = 0u64;
    let mut reload_rejected = 0u64;

    // Admission burst at twice the capacity: the tail must be typed shed.
    let burst = capacity * 2;
    let resp = roundtrip(
        &mut child,
        &Request::Batch {
            id: 910_000,
            deadline_ms: f64::INFINITY,
            states: vec![AugmentedState::zeros(); burst],
        },
    );
    chaos_requests += burst as u64;
    let parsed = Json::parse(&resp).unwrap_or(Json::Null);
    let Some(Json::Arr(results)) = parsed.get("results") else {
        fail(&format!("burst answer without results: {resp}"));
    };
    if results.len() != burst {
        fail(&format!("burst answered {}/{burst} slots", results.len()));
    }
    shed += results
        .iter()
        .filter(|r| r.get("shed") == Some(&Json::Bool(true)))
        .count() as u64;
    if shed != (burst - capacity) as u64 {
        fail(&format!(
            "expected {} shed responses, got {shed}",
            burst - capacity
        ));
    }

    // A NaN streak must walk replay → safe, then recover to full.
    let mut nan = AugmentedState::zeros();
    nan.current[0][0] = f64::NAN;
    for i in 0..(serve::REPLAY_LIMIT + 2) {
        let resp = roundtrip(
            &mut child,
            &Request::Decide {
                id: 920_000 + i,
                deadline_ms: f64::INFINITY,
                state: Box::new(nan),
            },
        );
        chaos_requests += 1;
        let tier = tier_of(&resp);
        let expect = if i < serve::REPLAY_LIMIT {
            "replay"
        } else {
            "safe"
        };
        if tier != expect {
            fail(&format!(
                "NaN streak step {i}: tier {tier}, expected {expect}"
            ));
        }
        match tier.as_str() {
            "replay" => tier_replay += 1,
            _ => tier_safe += 1,
        }
    }

    // Recovery: the next healthy request is full-tier again.
    let resp = roundtrip(&mut child, &decide_req(940_000, &base_state(1)));
    chaos_requests += 1;
    if tier_of(&resp) != "full" {
        fail(&format!("no recovery after chaos: {resp}"));
    }
    tier_full += 1;

    // A zero budget must degrade deterministically, never stall. With a
    // full-tier answer just banked, one stale step lands on replay.
    let resp = roundtrip(
        &mut child,
        &Request::Decide {
            id: 930_000,
            deadline_ms: 0.0,
            state: Box::new(base_state(0)),
        },
    );
    chaos_requests += 1;
    if tier_of(&resp) != "replay" {
        fail(&format!("zero-deadline request not replayed: {resp}"));
    }
    tier_replay += 1;

    // A corrupt checkpoint directory must be rejected without dropping the
    // running weights.
    let corrupt = temp_dir("corrupt");
    if let Err(e) = std::fs::create_dir_all(&corrupt) {
        fail(&format!("mkdir corrupt: {e}"));
    }
    if let Err(e) = std::fs::write(corrupt.join(head::CHECKPOINT_FILE), "{trunc") {
        fail(&format!("write corrupt checkpoint: {e}"));
    }
    let resp = roundtrip(
        &mut child,
        &Request::Reload {
            id: 950_000,
            dir: corrupt.clone(),
        },
    );
    if !resp.contains("\"ok\":false") {
        fail(&format!("corrupt reload not rejected: {resp}"));
    }
    reload_rejected += 1;
    let resp = roundtrip(&mut child, &decide_req(960_000, &base_state(1)));
    chaos_requests += 1;
    if tier_of(&resp) != "full" {
        fail("rejected reload degraded the running weights");
    }
    tier_full += 1;

    let stats = roundtrip(&mut child, &Request::Stats { id: 970_000 });
    eprintln!("restarted daemon counters: {stats}");
    shutdown(child, 970_001);

    for dir in [&ckpt_boot, &ckpt_next, &corrupt] {
        let _ = std::fs::remove_dir_all(dir);
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let report = ServeReport {
        soak_requests: n as u64,
        chaos_requests,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        // Reaching this point means every frame got an answer — any
        // missing or malformed response aborts through fail() above.
        all_responded: true,
        restart_byte_identical,
        zero_panics: true,
        nonfinite_inputs,
        tier_full,
        tier_replay,
        tier_safe,
        shed,
        reload_ok,
        reload_rejected,
    };

    println!(
        "serve soak: {} soak + {} chaos requests, p50 {:.3} ms, p99 {:.3} ms",
        report.soak_requests, report.chaos_requests, report.p50_ms, report.p99_ms
    );
    println!(
        "degradation: {} full / {} replay / {} safe, {} shed, reloads {} ok / {} rejected",
        report.tier_full,
        report.tier_replay,
        report.tier_safe,
        report.shed,
        report.reload_ok,
        report.reload_rejected
    );
    println!("all requests answered: {}", report.all_responded);
    println!("restart byte-identical: {}", report.restart_byte_identical);
    cli.write_json(&report);
    bench::finish_telemetry();
    if !report.restart_byte_identical {
        fail("post-restart responses diverged from the uninterrupted run");
    }
}
