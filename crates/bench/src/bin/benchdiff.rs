//! Regression gate over BENCH/table JSONs and the trend database.
//!
//! Two modes:
//!
//! * `benchdiff --base OLD.json --cand NEW.json` — flattens both report
//!   files into dotted metrics and compares them with per-metric
//!   tolerance bands (see `bench::diff` for the classification rules);
//! * `benchdiff --trend results/trends.jsonl --bin-name perf` — compares
//!   the latest trend entry for a binary against the previous one, i.e.
//!   this run against the measured baseline.
//!
//! Exits 0 when every metric is within tolerance (improvements and new
//! metrics are reported but never fail), 1 when any metric regressed
//! beyond its band or vanished from the candidate, 2 on usage errors.
//! `--tol F` / `--time-tol F` override the symmetric and time bands;
//! `--json PATH` archives the comparison as JSON.

use bench::diff::{diff, flatten, DiffReport, Tolerances, Value};
use telemetry::Json;

fn load_flat(path: &str) -> Result<Vec<(String, Value)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    Ok(flatten(&doc))
}

fn trend_metrics(entry: &telemetry::TrendEntry) -> Vec<(String, Value)> {
    entry
        .metrics
        .iter()
        .map(|(k, v)| (k.clone(), Value::Num(*v)))
        .collect()
}

fn run() -> Result<DiffReport, String> {
    let cli = bench::Cli::parse(
        "benchdiff",
        &[
            "--base",
            "--cand",
            "--trend",
            "--bin-name",
            "--tol",
            "--time-tol",
        ],
    );
    let mut tol = Tolerances::default();
    if let Some(t) = cli.parsed::<f64>("--tol") {
        tol.rel = t;
    }
    if let Some(t) = cli.parsed::<f64>("--time-tol") {
        tol.time_rel = t;
    }

    let report = match (
        cli.value("--base"),
        cli.value("--cand"),
        cli.value("--trend"),
    ) {
        (Some(base), Some(cand), None) => {
            eprintln!("benchdiff: {base} (baseline) vs {cand} (candidate)");
            diff(&load_flat(base)?, &load_flat(cand)?, &tol)
        }
        (None, None, Some(trend)) => {
            let bin = cli
                .value("--bin-name")
                .ok_or("--trend mode needs --bin-name")?;
            let entries: Vec<telemetry::TrendEntry> = telemetry::read_trends(trend)
                .into_iter()
                .filter(|e| e.bin == bin)
                .collect();
            if entries.len() < 2 {
                return Err(format!(
                    "trend database {trend} has {} '{bin}' entries (need 2 to compare)",
                    entries.len()
                ));
            }
            let cand = &entries[entries.len() - 1];
            let base = &entries[entries.len() - 2];
            eprintln!(
                "benchdiff: {bin} trend {} (baseline) vs {} (candidate)",
                base.git_rev, cand.git_rev
            );
            diff(&trend_metrics(base), &trend_metrics(cand), &tol)
        }
        _ => {
            return Err(
                "expected either --base OLD --cand NEW, or --trend PATH --bin-name BIN".to_string(),
            )
        }
    };

    if let Some(path) = cli.value("--json") {
        std::fs::write(path, format!("{}\n", report.to_json()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(report)
}

fn main() {
    match run() {
        Ok(report) => {
            print!("{}", report.render(false));
            if report.failures() > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("benchdiff: {e}");
            std::process::exit(2);
        }
    }
}
