//! Regenerates Table 2 of the paper. Usage:
//! `cargo run -p bench --bin table2 --release -- [--scale smoke|bench|paper] [--threads N]`

fn main() {
    let cli = bench::Cli::parse("table2", &[]);
    let scale = cli.scale();
    cli.init_telemetry("table2", &scale);
    cli.apply_threads();
    let report = head::experiments::run_table2(&scale);
    println!("{report}");
    cli.write_json(&report);
    bench::finish_telemetry();
}
