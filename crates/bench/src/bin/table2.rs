//! Regenerates Table 2 of the paper. Usage:
//! `cargo run -p bench --bin table2 --release -- [--scale smoke|bench|paper]`

fn main() {
    let scale = bench::scale_from_args();
    bench::init_telemetry("table2", &scale);
    let report = head::experiments::run_table2(&scale);
    println!("{report}");
    bench::maybe_write_json(&report);
    bench::finish_telemetry();
}
