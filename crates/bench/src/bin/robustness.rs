//! Fault-injection robustness run: trains HEAD under a seeded fault
//! profile with crash-safe checkpointing, then reports how often each
//! degradation and recovery path fired. Usage:
//!
//! ```text
//! cargo run -p bench --bin robustness -- \
//!     [--scale smoke|bench|paper] [--episodes N] [--seed N] \
//!     [--faults none|light|heavy|blackout] \
//!     [--checkpoint DIR] [--resume DIR] [--every K] [--halt-after N]
//! ```
//!
//! `--checkpoint DIR` and `--resume DIR` are synonyms: both run through the
//! checkpoint in `DIR`, continuing it when one exists. `--halt-after N`
//! stops after `N` episodes this invocation (simulating a kill mid-run; a
//! later invocation against the same directory resumes).

use decision::BpDqn;
use head::{
    train_agent, train_agent_resumable, HighwayEnv, PerceptionMode, PolicyAgent, ResumableOptions,
    TrainingReport, Watchdog,
};
use telemetry::keys;

const COUNTERS: [&str; 16] = [
    keys::SENSOR_FAULT_DROPOUT,
    keys::SENSOR_FAULT_NOISE,
    keys::SENSOR_FAULT_LATENCY,
    keys::SENSOR_FAULT_BLACKOUT,
    keys::SENSOR_FAULT_NAN,
    keys::PERCEPTION_FALLBACK_LAST_PREDICTION,
    keys::PERCEPTION_FALLBACK_LAST_OBSERVATION,
    keys::PERCEPTION_FALLBACK_EXTRAPOLATION,
    keys::NN_NONFINITE_LOSS,
    keys::NN_NONFINITE_GRAD,
    keys::NN_NONFINITE_SKIPPED,
    keys::NN_NONFINITE_RESTORED,
    keys::ROBUSTNESS_NONFINITE_VEHICLE,
    keys::ROBUSTNESS_NONFINITE_REWARD,
    keys::ROBUSTNESS_NONFINITE_ACTION,
    keys::ROBUSTNESS_WATCHDOG_ABORT,
];

fn main() {
    let cli = bench::Cli::parse(
        "robustness",
        &["--checkpoint", "--resume", "--every", "--halt-after"],
    );
    let scale = cli.scale();
    cli.init_telemetry("robustness", &scale);
    cli.apply_threads();
    // The whole point of this run is the robustness counters — record them
    // even without a `--telemetry` sink.
    telemetry::set_enabled(true);

    let dir = cli
        .value("--checkpoint")
        .or_else(|| cli.value("--resume"))
        .map(str::to_string);
    let every = cli.parsed("--every").unwrap_or(5);
    let halt_after = cli.parsed("--halt-after");

    let mut env = HighwayEnv::new(scale.env.clone(), PerceptionMode::Persistence);
    let mut agent = PolicyAgent::new("HEAD", Box::new(BpDqn::new(scale.agent)));
    let episodes = scale.train_episodes;

    let report: TrainingReport = match dir {
        Some(dir) => {
            let opts = ResumableOptions {
                dir: dir.into(),
                every,
                watchdog: Some(Watchdog::generous(scale.env.max_steps)),
                halt_after,
            };
            match train_agent_resumable(&mut env, &mut agent, episodes, &opts) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("checkpointed run failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => train_agent(&mut env, &mut agent, episodes),
    };

    let faults = scale
        .env
        .faults
        .map_or_else(|| "none".to_string(), |p| format!("{p:?}"));
    println!(
        "robustness run: {} episodes, faults = {faults}",
        report.episodes.len()
    );
    println!(
        "mean reward (last 20 episodes): {:.4}",
        report.recent_mean_reward(20)
    );
    let fault_episodes = report
        .episodes
        .iter()
        .filter(|e| e.terminal == head::Terminal::Fault)
        .count();
    println!("fault-terminated episodes: {fault_episodes}");
    println!("counters:");
    for name in COUNTERS {
        println!("  {name} = {}", telemetry::counter_value(name));
    }
    cli.write_json(&report);
    bench::finish_telemetry();
}
