//! Regenerates Tables III & IV (state-predictor accuracy and efficiency).
//! Usage: `cargo run -p bench --bin table3_4 --release -- [--scale ...]`

fn main() {
    let scale = bench::scale_from_args();
    bench::init_telemetry("table3_4", &scale);
    let report = head::experiments::run_tables_3_4(&scale);
    println!("{report}");
    bench::maybe_write_json(&report);
    bench::finish_telemetry();
}
