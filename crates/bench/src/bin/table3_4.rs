//! Regenerates Tables III & IV (state-predictor accuracy and efficiency).
//! Usage: `cargo run -p bench --bin table3_4 --release -- [--scale ...]`

fn main() {
    let cli = bench::Cli::parse("table3_4", &[]);
    let scale = cli.scale();
    cli.init_telemetry("table3_4", &scale);
    cli.apply_threads();
    let report = head::experiments::run_tables_3_4(&scale);
    println!("{report}");
    cli.write_json(&report);
    bench::finish_telemetry();
}
