//! Regenerates Tables V & VI (PAMDP learner effectiveness and efficiency).
//! Usage: `cargo run -p bench --bin table5_6 --release -- [--scale ...]`

fn main() {
    let cli = bench::Cli::parse("table5_6", &[]);
    let scale = cli.scale();
    cli.init_telemetry("table5_6", &scale);
    cli.apply_threads();
    let report = head::experiments::run_tables_5_6(&scale);
    println!("{report}");
    cli.write_json(&report);
    bench::finish_telemetry();
}
