//! Regenerates Tables V & VI (PAMDP learner effectiveness and efficiency).
//! Usage: `cargo run -p bench --bin table5_6 --release -- [--scale ...]`

fn main() {
    let scale = bench::scale_from_args();
    bench::init_telemetry("table5_6", &scale);
    let report = head::experiments::run_tables_5_6(&scale);
    println!("{report}");
    bench::maybe_write_json(&report);
    bench::finish_telemetry();
}
