//! Fleet bench: many concurrent HEAD agents on the sharded multi-segment
//! world, swept across shard counts, writing `BENCH_fleet.json`.
//!
//! Each shard count runs the *same* fleet — same seed, same road network
//! (the four-segment ramp corridor of `FleetConfig::bench_scale`), same
//! shared policy — so every row must land on the same FNV world checksum
//! as the 1-shard serial row. That is the space-sharding contract: the
//! shard schedule may change *when* a segment is stepped, never *what*
//! the step computes. The run exits 1 on any divergence, so CI catches a
//! sharding determinism regression as a hard failure.
//!
//! Reported rates (min-of-reps wall time, so a host hiccup cannot fake a
//! regression):
//! * `vehicles_per_sec` — conventional vehicle-steps through the world
//!   per second (the simulation throughput axis);
//! * `av_decisions_per_sec` — HEAD policy decisions per second through
//!   the one wide `act_batch_greedy` pass (the decision throughput axis).
//!
//! Usage: `cargo run -p bench --bin fleet --release -- \
//!     [--scale smoke|bench|paper] [--shards N] [--avs N] [--reps N] \
//!     [--json PATH] [--trends PATH]`
//!
//! `--shards N` sweeps `[1, N]` instead of the default `[1, 2, 4]`; the
//! serial row is always present because it anchors the checksum gate.

use decision::{AgentConfig, BpDqn};
use head::{Fleet, FleetConfig, PerceptionMode};
use std::time::Instant;
use telemetry::Json;

/// One shard count's measured run.
struct ShardResult {
    shards: usize,
    avs: usize,
    steps: usize,
    /// Min-of-reps wall time for the full stepped run.
    wall_ms: f64,
    /// Conventional-vehicle steps per second at the min-wall rep.
    vehicles_per_sec: f64,
    /// HEAD decisions per second at the min-wall rep.
    av_decisions_per_sec: f64,
    /// Fleet world checksum (identical across reps by construction).
    checksum: u64,
}

impl ShardResult {
    fn to_json(&self, serial_checksum: u64) -> Json {
        Json::obj(vec![
            ("name", Json::from(format!("shards_{}", self.shards))),
            ("shards", Json::from(self.shards)),
            ("avs", Json::from(self.avs)),
            ("steps", Json::from(self.steps)),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("vehicles_per_sec", Json::Num(self.vehicles_per_sec)),
            ("av_decisions_per_sec", Json::Num(self.av_decisions_per_sec)),
            ("checksum", Json::from(format!("{:016x}", self.checksum))),
            (
                "checksums_equal",
                Json::Bool(self.checksum == serial_checksum),
            ),
        ])
    }
}

/// Steps a fresh fleet to completion and returns (wall_ms, vehicle_steps,
/// decisions, checksum).
fn run_once(seed: u64, avs: usize, shards: usize, steps: usize) -> (f64, u64, u64, u64) {
    let mut cfg = FleetConfig::bench_scale(avs);
    cfg.env.seed = seed;
    let agent = Box::new(BpDqn::new(AgentConfig::default()));
    let mut fleet = Fleet::new(cfg, agent, PerceptionMode::Persistence);
    fleet.set_shards(shards);
    let started = Instant::now();
    let mut vehicle_steps = 0u64;
    for _ in 0..steps {
        let out = fleet.step();
        vehicle_steps += out.vehicles as u64;
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    (wall_ms, vehicle_steps, fleet.decisions(), fleet.checksum())
}

fn bench_shard_count(
    seed: u64,
    avs: usize,
    shards: usize,
    steps: usize,
    reps: usize,
) -> ShardResult {
    let (mut wall_ms, mut vehicle_steps, mut decisions, mut checksum) =
        run_once(seed, avs, shards, steps);
    for _ in 1..reps {
        let (w, v, d, c) = run_once(seed, avs, shards, steps);
        assert_eq!(
            c, checksum,
            "rep-to-rep divergence at {shards} shards — the fleet is not \
             a pure function of its config"
        );
        if w < wall_ms {
            wall_ms = w;
            vehicle_steps = v;
            decisions = d;
        }
        checksum = c;
    }
    let wall_s = (wall_ms / 1e3).max(1e-12);
    ShardResult {
        shards,
        avs,
        steps,
        wall_ms,
        vehicles_per_sec: vehicle_steps as f64 / wall_s,
        av_decisions_per_sec: decisions as f64 / wall_s,
        checksum,
    }
}

fn main() {
    let cli = bench::Cli::parse("fleet", &["--reps"]);
    let scale = cli.scale();
    let n_threads = cli.apply_threads().max(2);
    par::set_threads(n_threads);
    cli.init_telemetry("fleet", &scale);

    let (steps, default_reps) = match cli.value("--scale") {
        Some("paper") => (400, 5),
        None | Some("bench") => (150, 3),
        _ => (40, 2),
    };
    let reps = cli.parsed("--reps").unwrap_or(default_reps);
    let avs = cli.parsed("--avs").unwrap_or(8).max(1);
    // The serial row always anchors the sweep: the checksum gate compares
    // every sharded row against it.
    let shard_counts: Vec<usize> = match cli.parsed::<usize>("--shards") {
        Some(n) if n > 1 => vec![1, n],
        Some(_) => vec![1],
        None => vec![1, 2, 4],
    };
    let seed = scale.env.seed;

    eprintln!(
        "fleet: {avs} AVs, {steps} steps, {reps} reps, shard sweep {shard_counts:?}, seed {seed}"
    );
    let results: Vec<ShardResult> = shard_counts
        .iter()
        .map(|&shards| bench_shard_count(seed, avs, shards, steps, reps))
        .collect();
    let serial_checksum = results[0].checksum;

    println!(
        "{:<9} {:>10} {:>14} {:>18}  {:<16} equal",
        "shards", "wall(ms)", "vehicles/s", "AV-decisions/s", "checksum"
    );
    for r in &results {
        println!(
            "{:<9} {:>10.1} {:>14.0} {:>18.0}  {:016x} {}",
            r.shards,
            r.wall_ms,
            r.vehicles_per_sec,
            r.av_decisions_per_sec,
            r.checksum,
            r.checksum == serial_checksum
        );
    }

    let doc = Json::obj(vec![
        ("bench", Json::from("fleet")),
        ("n_threads", Json::from(n_threads)),
        ("scale", Json::from(cli.value("--scale").unwrap_or("bench"))),
        ("avs", Json::from(avs)),
        ("steps", Json::from(steps)),
        ("reps", Json::from(reps)),
        ("seed", Json::from(seed)),
        (
            "shard_sweep",
            Json::Arr(results.iter().map(|r| r.to_json(serial_checksum)).collect()),
        ),
    ]);
    let path = cli.value("--json").unwrap_or("BENCH_fleet.json");
    if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {path}");

    if let Some(bad) = results.iter().find(|r| r.checksum != serial_checksum) {
        eprintln!(
            "DETERMINISM VIOLATION: {} shards checksum {:016x} != serial {:016x}",
            bad.shards, bad.checksum, serial_checksum
        );
        telemetry::flight_record(
            telemetry::keys::FLIGHT_CHECKSUM_DIVERGENCE,
            bad.checksum as f64,
        );
        telemetry::flight_dump(telemetry::keys::FLIGHT_CHECKSUM_DIVERGENCE);
        std::process::exit(1);
    }
    println!("all fleet shard checksums equal");

    cli.append_trend_json(&[("fleet", &doc)]);
    bench::finish_telemetry();
}
