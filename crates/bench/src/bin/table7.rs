//! Regenerates Table 7 of the paper. Usage:
//! `cargo run -p bench --bin table7 --release -- [--scale smoke|bench|paper]`

fn main() {
    let scale = bench::scale_from_args();
    bench::init_telemetry("table7", &scale);
    let report = head::experiments::run_table7(&scale);
    println!("{report}");
    bench::maybe_write_json(&report);
    bench::finish_telemetry();
}
