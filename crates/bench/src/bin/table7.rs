//! Regenerates Table 7 of the paper. Usage:
//! `cargo run -p bench --bin table7 --release -- [--scale smoke|bench|paper] [--threads N]`

fn main() {
    let cli = bench::Cli::parse("table7", &[]);
    let scale = cli.scale();
    cli.init_telemetry("table7", &scale);
    cli.apply_threads();
    let report = head::experiments::run_table7(&scale);
    println!("{report}");
    cli.write_json(&report);
    bench::finish_telemetry();
}
