//! Diagnostic: trains HEAD at bench scale and prints the learning curve
//! plus greedy evaluation metrics. Not a paper table; used to tune the
//! recorded-run settings.

use decision::BpDqn;
use head::experiments::train_lstgat;
#[allow(unused_imports)]
use head::DrivingAgent;
use head::{aggregate, evaluate_agent, train_agent, HighwayEnv, PerceptionMode, PolicyAgent};
use perception::{LstGat, LstGatConfig};

fn main() {
    let cli = bench::Cli::parse("train_curve", &[]);
    let scale = cli.scale();
    cli.init_telemetry("train_curve", &scale);
    cli.apply_threads();
    let (weights, _, _) = train_lstgat(&scale);
    let mut model = LstGat::new(LstGatConfig::default(), scale.normalizer());
    if let Err(e) = model.load_weights_json(&weights) {
        eprintln!("train_curve: loading the just-trained LST-GAT weights failed: {e}");
        std::process::exit(2);
    }
    let mut env = HighwayEnv::new(scale.env.clone(), PerceptionMode::LstGat(Box::new(model)));
    let mut agent = PolicyAgent::new("HEAD", Box::new(BpDqn::new(scale.agent)));
    let mut teacher = head::IdmLc::new(head::RuleConfig::default());
    head::seed_with_demonstrations(&mut env, &mut teacher, &mut agent, scale.demo_episodes);
    let report = train_agent(&mut env, &mut agent, scale.train_episodes);
    for (i, chunk) in report.episodes.chunks(100).enumerate() {
        let mean_r: f64 = chunk.iter().map(|e| e.mean_reward).sum::<f64>() / chunk.len() as f64;
        let mean_v: f64 = chunk.iter().map(|e| e.avg_v).sum::<f64>() / chunk.len() as f64;
        let crashes = chunk
            .iter()
            .filter(|e| e.terminal == head::Terminal::Collision)
            .count();
        println!(
            "ep {:>4}: meanR {:+.3} meanV {:.1} crashes {}/{}",
            i * 100,
            mean_r,
            mean_v,
            crashes,
            chunk.len()
        );
    }
    println!(
        "TCT {:.1}s total {:.1}s",
        report.convergence_secs, report.total_secs
    );
    let eps = evaluate_agent(
        &mut env,
        &mut agent,
        scale.eval_episodes,
        scale.eval_seed_base,
    );
    let agg = aggregate(scale.env.sim.road_len, &eps);
    println!("eval: DT-A {:.1} DT-C {:.1} #CA {:.1} minTTC {:.2} V {:.2} J {:.2} D-CA {:.2} collisions {}/{}",
        agg.avg_dt_a, agg.avg_dt_c, agg.avg_impact_events, agg.min_ttc_a, agg.avg_v_a, agg.avg_j_a, agg.avg_d_ca,
        agg.collisions, agg.episodes);
    bench::finish_telemetry();
}
