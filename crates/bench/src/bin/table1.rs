//! Regenerates Table 1 of the paper. Usage:
//! `cargo run -p bench --bin table1 --release -- [--scale smoke|bench|paper] [--threads N]`

fn main() {
    let cli = bench::Cli::parse("table1", &[]);
    let scale = cli.scale();
    cli.init_telemetry("table1", &scale);
    cli.apply_threads();
    let report = head::experiments::run_table1(&scale);
    println!("{report}");
    cli.write_json(&report);
    bench::finish_telemetry();
}
