//! Regenerates Table 1 of the paper. Usage:
//! `cargo run -p bench --bin table1 --release -- [--scale smoke|bench|paper]`

fn main() {
    let scale = bench::scale_from_args();
    bench::init_telemetry("table1", &scale);
    let report = head::experiments::run_table1(&scale);
    println!("{report}");
    bench::maybe_write_json(&report);
    bench::finish_telemetry();
}
