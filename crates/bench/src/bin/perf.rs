//! Perf harness for the deterministic worker pool: times serial vs
//! parallel execution of the three parallelised layers and writes
//! `BENCH_parallel.json` (via telemetry's dependency-free Json writer).
//!
//! Ops measured:
//! * `matmul` — the cache-blocked kernel, one big product per rep;
//! * `inference` — one LST-GAT per-step prediction (six heads);
//! * `episodes` — greedy evaluation episode throughput (episodes/sec).
//!
//! The serial and parallel checksums of every op must be equal — the pool
//! contract is *byte-identical* output — and the run exits 1 when any
//! pair diverges, so CI catches a determinism regression as a hard
//! failure, not a slow drift. Speedups are reported, not asserted: they
//! depend on the host's core count (a 4-core host reaches ≥1.5× on the
//! episode op; a single-core container reports ≈1× or below).
//!
//! Usage: `cargo run -p bench --bin perf --release -- \
//!     [--scale smoke|bench|paper] [--threads N] [--reps N] [--json PATH]`

use head::{
    evaluate_agent_par, DrivingAgent, EnvConfig, HighwayEnv, IdmLc, PerceptionMode, RuleConfig,
};
use nn::Matrix;
use perception::{LstGat, LstGatConfig, StatePredictor};
use std::time::Instant;
use telemetry::Json;

/// One serial-vs-parallel comparison.
struct OpResult {
    op: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    serial_checksum: u64,
    parallel_checksum: u64,
    /// Extra op-specific fields (e.g. episodes/sec).
    extra: Vec<(&'static str, Json)>,
}

impl OpResult {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            f64::NAN
        }
    }

    fn equal(&self) -> bool {
        self.serial_checksum == self.parallel_checksum
    }

    fn to_json(&self, n_threads: usize) -> Json {
        let mut pairs = vec![
            ("op", Json::from(self.op)),
            ("n_threads", Json::from(n_threads)),
            ("serial_wall_ms", Json::Num(self.serial_ms)),
            ("parallel_wall_ms", Json::Num(self.parallel_ms)),
            ("speedup", Json::Num(self.speedup())),
            (
                "checksum",
                Json::from(format!("{:016x}", self.serial_checksum)),
            ),
            (
                "parallel_checksum",
                Json::from(format!("{:016x}", self.parallel_checksum)),
            ),
            ("checksums_equal", Json::Bool(self.equal())),
        ];
        pairs.extend(self.extra.iter().cloned());
        Json::obj(pairs)
    }
}

/// Deterministic matrix fill from the shared seed-stream deriver.
fn seeded_matrix(rows: usize, cols: usize, stream: u64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let bits = par::stream_seed(stream, i as u64);
            ((bits >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = f();
    let started = Instant::now();
    for _ in 1..reps {
        out = f();
    }
    let total = started.elapsed().as_secs_f64() * 1e3;
    (total / (reps.saturating_sub(1).max(1)) as f64, out)
}

fn bench_matmul(dims: (usize, usize, usize), reps: usize, pool: &par::Pool) -> OpResult {
    let (m, k, n) = dims;
    let a = seeded_matrix(m, k, 0xA11CE);
    let b = seeded_matrix(k, n, 0xB0B);
    let (serial_ms, serial) = time_ms(reps, || a.matmul(&b));
    let (parallel_ms, parallel) = time_ms(reps, || a.matmul_par(&b, pool));
    OpResult {
        op: "matmul",
        serial_ms,
        parallel_ms,
        serial_checksum: serial.checksum(),
        parallel_checksum: parallel.checksum(),
        extra: vec![("dims", Json::from(format!("{m}x{k}x{n}")))],
    }
}

fn prediction_checksum(pred: &perception::Prediction) -> u64 {
    let mut h = par::Checksum::new();
    for p in pred {
        h.push_f64(p.d_lat);
        h.push_f64(p.d_lon);
        h.push_f64(p.v_rel);
    }
    h.finish()
}

fn bench_inference(scale: &head::experiments::Scale, reps: usize, pool: &par::Pool) -> OpResult {
    // An untrained (seed-initialised) model over a live percept graph: the
    // weights do not matter for timing or for the determinism contract.
    let model = LstGat::new(LstGatConfig::default(), scale.normalizer());
    let env = HighwayEnv::new(scale.env.clone(), PerceptionMode::Persistence);
    let graph = env.percepts().graph.clone();
    let (serial_ms, serial) = time_ms(reps, || model.predict(&graph));
    let (parallel_ms, parallel) = time_ms(reps, || model.predict_par(&graph, pool));
    OpResult {
        op: "inference",
        serial_ms,
        parallel_ms,
        serial_checksum: prediction_checksum(&serial),
        parallel_checksum: prediction_checksum(&parallel),
        extra: Vec::new(),
    }
}

fn episodes_checksum(eps: &[head::EpisodeMetrics]) -> u64 {
    let mut h = par::Checksum::new();
    for e in eps {
        h.push_u64(e.steps as u64);
        h.push_u64(e.impact_events as u64);
        h.push_f64(e.total_reward);
        h.push_f64(e.mean_reward);
        h.push_f64(e.min_ttc);
        h.push_f64(e.avg_v);
        h.push_f64(e.avg_jerk);
        h.push_f64(e.driving_time);
    }
    h.finish()
}

fn bench_episodes(cfg: &EnvConfig, episodes: usize, pool: &par::Pool) -> OpResult {
    let factory = || {
        (
            HighwayEnv::new(cfg.clone(), PerceptionMode::Persistence),
            Box::new(IdmLc::new(RuleConfig::default())) as Box<dyn DrivingAgent>,
        )
    };
    let serial_pool = par::Pool::new(1);
    let started = Instant::now();
    let serial = evaluate_agent_par(&factory, episodes, 9_000_000, &serial_pool);
    let serial_ms = started.elapsed().as_secs_f64() * 1e3;
    let started = Instant::now();
    let parallel = evaluate_agent_par(&factory, episodes, 9_000_000, pool);
    let parallel_ms = started.elapsed().as_secs_f64() * 1e3;
    OpResult {
        op: "episodes",
        serial_ms,
        parallel_ms,
        serial_checksum: episodes_checksum(&serial),
        parallel_checksum: episodes_checksum(&parallel),
        extra: vec![
            ("episodes", Json::from(episodes)),
            (
                "serial_eps_per_sec",
                Json::Num(episodes as f64 / (serial_ms / 1e3)),
            ),
            (
                "parallel_eps_per_sec",
                Json::Num(episodes as f64 / (parallel_ms / 1e3)),
            ),
        ],
    }
}

fn main() {
    let cli = bench::Cli::parse("perf", &["--reps"]);
    let scale = cli.scale();
    let n_threads = cli.apply_threads().max(2);
    par::set_threads(n_threads);
    let pool = par::pool();

    let (matmul_dims, episodes, default_reps) = match cli.value("--scale") {
        Some("paper") => ((512, 512, 512), 64, 10),
        None | Some("bench") => ((256, 256, 256), 24, 5),
        _ => ((96, 128, 96), 6, 3),
    };
    let reps = cli.parsed("--reps").unwrap_or(default_reps);

    eprintln!("perf: {n_threads} threads, {reps} reps");
    let ops = vec![
        bench_matmul(matmul_dims, reps, &pool),
        bench_inference(&scale, reps, &pool),
        bench_episodes(&scale.env, episodes, &pool),
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>8}  {:<16} equal",
        "op", "serial(ms)", "parallel(ms)", "speedup", "checksum"
    );
    for op in &ops {
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>8.2}  {:016x} {}",
            op.op,
            op.serial_ms,
            op.parallel_ms,
            op.speedup(),
            op.serial_checksum,
            op.equal()
        );
    }

    let doc = Json::obj(vec![
        ("bench", Json::from("parallel")),
        ("n_threads", Json::from(n_threads)),
        ("scale", Json::from(cli.value("--scale").unwrap_or("bench"))),
        ("reps", Json::from(reps)),
        (
            "ops",
            Json::Arr(ops.iter().map(|o| o.to_json(n_threads)).collect()),
        ),
    ]);
    let path = cli.value("--json").unwrap_or("BENCH_parallel.json");
    if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {path}");

    if let Some(bad) = ops.iter().find(|o| !o.equal()) {
        eprintln!(
            "DETERMINISM VIOLATION: op '{}' serial {:016x} != parallel {:016x}",
            bad.op, bad.serial_checksum, bad.parallel_checksum
        );
        std::process::exit(1);
    }
    println!("all serial/parallel checksums equal");
}
