//! Perf harness for the deterministic worker pool: times serial vs
//! parallel execution of the three parallelised layers and writes
//! `BENCH_parallel.json` (via telemetry's dependency-free Json writer).
//!
//! Ops measured:
//! * `matmul` — the cache-blocked kernel, one big product per rep;
//! * `inference` — one LST-GAT per-step prediction (six heads);
//! * `episodes` — greedy evaluation episode throughput (episodes/sec).
//!
//! The serial and parallel checksums of every op must be equal — the pool
//! contract is *byte-identical* output — and the run exits 1 when any
//! pair diverges, so CI catches a determinism regression as a hard
//! failure, not a slow drift. Speedups are reported, not asserted: they
//! depend on the host's core count (a 4-core host reaches ≥1.5× on the
//! episode op; a single-core container reports ≈1× or below).
//!
//! A second section profiles the nn memory model — the same learn step run
//! with a fresh `Graph` per step vs a persistent reset tape (latency,
//! fresh/reused buffer counts, final-weight bit-identity) plus per-call
//! LST-GAT inference latency — and writes it to `BENCH_core.json`. The
//! run exits 1 when the two learn loops' weights diverge, when the
//! steady-state tape allocates more than it reuses, or when the
//! allocation reduction falls under 10x.
//!
//! Usage: `cargo run -p bench --bin perf --release -- \
//!     [--scale smoke|bench|paper] [--threads N] [--reps N] [--json PATH] \
//!     [--json-core PATH]`

use head::{
    evaluate_agent_par, DrivingAgent, EnvConfig, HighwayEnv, IdmLc, PerceptionMode, RuleConfig,
};
use nn::{Adam, Graph, Matrix, Mlp, ParamStore};
use perception::{LstGat, LstGatConfig, StatePredictor};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::time::Instant;
use telemetry::Json;

/// One serial-vs-parallel comparison.
struct OpResult {
    op: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    serial_checksum: u64,
    parallel_checksum: u64,
    /// Extra op-specific fields (e.g. episodes/sec).
    extra: Vec<(&'static str, Json)>,
}

impl OpResult {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            f64::NAN
        }
    }

    fn equal(&self) -> bool {
        self.serial_checksum == self.parallel_checksum
    }

    fn to_json(&self, n_threads: usize) -> Json {
        let mut pairs = vec![
            ("op", Json::from(self.op)),
            ("n_threads", Json::from(n_threads)),
            ("serial_wall_ms", Json::Num(self.serial_ms)),
            ("parallel_wall_ms", Json::Num(self.parallel_ms)),
            ("speedup", Json::Num(self.speedup())),
            (
                "checksum",
                Json::from(format!("{:016x}", self.serial_checksum)),
            ),
            (
                "parallel_checksum",
                Json::from(format!("{:016x}", self.parallel_checksum)),
            ),
            ("checksums_equal", Json::Bool(self.equal())),
        ];
        pairs.extend(self.extra.iter().cloned());
        Json::obj(pairs)
    }
}

/// Deterministic matrix fill from the shared seed-stream deriver.
fn seeded_matrix(rows: usize, cols: usize, stream: u64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let bits = par::stream_seed(stream, i as u64);
            ((bits >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = f();
    let started = Instant::now();
    for _ in 1..reps {
        out = f();
    }
    let total = started.elapsed().as_secs_f64() * 1e3;
    (total / (reps.saturating_sub(1).max(1)) as f64, out)
}

fn bench_matmul(dims: (usize, usize, usize), reps: usize, pool: &par::Pool) -> OpResult {
    let (m, k, n) = dims;
    let a = seeded_matrix(m, k, 0xA11CE);
    let b = seeded_matrix(k, n, 0xB0B);
    let (serial_ms, serial) = time_ms(reps, || a.matmul(&b));
    let (parallel_ms, parallel) = time_ms(reps, || a.matmul_par(&b, pool));
    OpResult {
        op: "matmul",
        serial_ms,
        parallel_ms,
        serial_checksum: serial.checksum(),
        parallel_checksum: parallel.checksum(),
        extra: vec![("dims", Json::from(format!("{m}x{k}x{n}")))],
    }
}

fn prediction_checksum(pred: &perception::Prediction) -> u64 {
    let mut h = par::Checksum::new();
    for p in pred {
        h.push_f64(p.d_lat);
        h.push_f64(p.d_lon);
        h.push_f64(p.v_rel);
    }
    h.finish()
}

fn bench_inference(scale: &head::experiments::Scale, reps: usize, pool: &par::Pool) -> OpResult {
    // An untrained (seed-initialised) model over a live percept graph: the
    // weights do not matter for timing or for the determinism contract.
    let model = LstGat::new(LstGatConfig::default(), scale.normalizer());
    let env = HighwayEnv::new(scale.env.clone(), PerceptionMode::Persistence);
    let graph = env.percepts().graph.clone();
    let (serial_ms, serial) = time_ms(reps, || model.predict(&graph));
    let (parallel_ms, parallel) = time_ms(reps, || model.predict_par(&graph, pool));
    OpResult {
        op: "inference",
        serial_ms,
        parallel_ms,
        serial_checksum: prediction_checksum(&serial),
        parallel_checksum: prediction_checksum(&parallel),
        extra: Vec::new(),
    }
}

fn episodes_checksum(eps: &[head::EpisodeMetrics]) -> u64 {
    let mut h = par::Checksum::new();
    for e in eps {
        h.push_u64(e.steps as u64);
        h.push_u64(e.impact_events as u64);
        h.push_f64(e.total_reward);
        h.push_f64(e.mean_reward);
        h.push_f64(e.min_ttc);
        h.push_f64(e.avg_v);
        h.push_f64(e.avg_jerk);
        h.push_f64(e.driving_time);
    }
    h.finish()
}

fn bench_episodes(cfg: &EnvConfig, episodes: usize, pool: &par::Pool) -> OpResult {
    let factory = || {
        (
            HighwayEnv::new(cfg.clone(), PerceptionMode::Persistence),
            Box::new(IdmLc::new(RuleConfig::default())) as Box<dyn DrivingAgent>,
        )
    };
    let serial_pool = par::Pool::new(1);
    let started = Instant::now();
    let serial = evaluate_agent_par(&factory, episodes, 9_000_000, &serial_pool);
    let serial_ms = started.elapsed().as_secs_f64() * 1e3;
    let started = Instant::now();
    let parallel = evaluate_agent_par(&factory, episodes, 9_000_000, pool);
    let parallel_ms = started.elapsed().as_secs_f64() * 1e3;
    OpResult {
        op: "episodes",
        serial_ms,
        parallel_ms,
        serial_checksum: episodes_checksum(&serial),
        parallel_checksum: episodes_checksum(&parallel),
        extra: vec![
            ("episodes", Json::from(episodes)),
            (
                "serial_eps_per_sec",
                Json::Num(episodes as f64 / (serial_ms / 1e3)),
            ),
            (
                "parallel_eps_per_sec",
                Json::Num(episodes as f64 / (parallel_ms / 1e3)),
            ),
        ],
    }
}

/// Learn-step and inference memory-model profile, written to
/// `BENCH_core.json`.
///
/// The learn-step comparison trains the same seeded MLP regression twice:
/// the pre-arena model (one fresh `Graph` per optimisation step, so every
/// intermediate buffer hits the heap) against the refactored model (one
/// persistent tape, `reset()` per step, buffers recycled through the
/// tape's `BufferPool`). Both runs must end with bit-identical weights —
/// tape reuse is not allowed to change a single ULP — and after warmup
/// the persistent tape must serve (almost) everything from the free
/// lists: `steady_fresh` stays at zero while `reused` grows each step.
struct CoreResult {
    /// Mean wall-clock per learn step, fresh-graph baseline.
    churn_ms: f64,
    /// Mean wall-clock per learn step, persistent tape.
    persistent_ms: f64,
    /// Heap buffer allocations per step in the baseline.
    churn_fresh_per_step: f64,
    /// Heap buffer allocations per step at steady state (post-warmup).
    steady_fresh_per_step: f64,
    /// Arena-served buffers per step at steady state.
    steady_reused_per_step: f64,
    /// `churn_fresh / max(steady_fresh, 1)` over the measured window.
    alloc_reduction: f64,
    /// Cumulative tape counters after the persistent run.
    tape_fresh: u64,
    tape_reused: u64,
    /// Final parameter checksums of the two runs.
    churn_checksum: u64,
    persistent_checksum: u64,
    /// Mean per-call LST-GAT prediction latency (six heads, one graph).
    inference_ms: f64,
    steps: usize,
    warmup: usize,
}

impl CoreResult {
    fn identical(&self) -> bool {
        self.churn_checksum == self.persistent_checksum
    }

    /// Steady state must reuse more than it allocates fresh.
    fn reuse_ok(&self) -> bool {
        self.tape_reused > self.tape_fresh
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "learn_step",
                Json::obj(vec![
                    ("steps", Json::from(self.steps)),
                    ("warmup", Json::from(self.warmup)),
                    ("churn_ms_per_step", Json::Num(self.churn_ms)),
                    ("persistent_ms_per_step", Json::Num(self.persistent_ms)),
                    (
                        "latency_speedup",
                        Json::Num(if self.persistent_ms > 0.0 {
                            self.churn_ms / self.persistent_ms
                        } else {
                            f64::NAN
                        }),
                    ),
                    ("churn_fresh_per_step", Json::Num(self.churn_fresh_per_step)),
                    (
                        "steady_fresh_per_step",
                        Json::Num(self.steady_fresh_per_step),
                    ),
                    (
                        "steady_reused_per_step",
                        Json::Num(self.steady_reused_per_step),
                    ),
                    ("alloc_reduction", Json::Num(self.alloc_reduction)),
                    ("tape_fresh", Json::from(self.tape_fresh)),
                    ("tape_reused", Json::from(self.tape_reused)),
                    (
                        "checksum",
                        Json::from(format!("{:016x}", self.persistent_checksum)),
                    ),
                    ("checksums_equal", Json::Bool(self.identical())),
                    ("reuse_ok", Json::Bool(self.reuse_ok())),
                ]),
            ),
            (
                "inference",
                Json::obj(vec![
                    ("model", Json::from("LST-GAT")),
                    ("mean_ms_per_call", Json::Num(self.inference_ms)),
                ]),
            ),
        ])
    }
}

/// Layer widths of the probe network — sized like a decision agent's
/// Q-network so the allocation profile is representative.
const CORE_DIMS: [usize; 4] = [8, 128, 128, 5];
const CORE_BATCH: usize = 32;

/// Builds the identically-seeded model and data both learn loops start
/// from.
fn core_setup(seed: u64) -> (ParamStore, Mlp, Matrix, Matrix) {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let mlp = Mlp::new(&mut store, "probe", &CORE_DIMS, &mut rng);
    let x = seeded_matrix(CORE_BATCH, CORE_DIMS[0], 0xC0FFEE);
    let y = seeded_matrix(CORE_BATCH, CORE_DIMS[3], 0xFACADE);
    (store, mlp, x, y)
}

/// One optimisation step on whatever graph the caller hands in.
fn core_step(
    g: &mut Graph,
    store: &mut ParamStore,
    mlp: &Mlp,
    adam: &mut Adam,
    x: &Matrix,
    y: &Matrix,
) {
    let xv = g.input_copy(x);
    let yv = g.input_copy(y);
    let pred = mlp.forward(g, store, xv);
    let loss = g.mse(pred, yv);
    store.zero_grad();
    g.backward(loss, store);
    adam.step(store);
}

fn params_checksum(store: &ParamStore) -> u64 {
    let mut h = par::Checksum::new();
    for p in store.iter() {
        for &v in p.value.data() {
            h.push_f64(f64::from(v));
        }
    }
    h.finish()
}

fn bench_core(scale: &head::experiments::Scale, reps: usize) -> CoreResult {
    let warmup = 5usize;
    let steps = (reps * 10).max(50);

    // Baseline: a fresh graph (cold arena) for every step.
    let (mut store, mlp, x, y) = core_setup(7);
    let mut adam = Adam::new(1e-3);
    let mut churn_fresh = 0u64;
    let started = Instant::now();
    for _ in 0..steps {
        let mut g = Graph::new();
        core_step(&mut g, &mut store, &mlp, &mut adam, &x, &y);
        churn_fresh += g.pool_stats().fresh;
    }
    let churn_ms = started.elapsed().as_secs_f64() * 1e3 / steps as f64;
    let churn_checksum = params_checksum(&store);

    // Refactored: one persistent tape, reset per step.
    let (mut store, mlp, x, y) = core_setup(7);
    let mut adam = Adam::new(1e-3);
    let mut tape = Graph::new();
    for _ in 0..warmup {
        tape.reset();
        core_step(&mut tape, &mut store, &mlp, &mut adam, &x, &y);
    }
    let at_warmup = tape.pool_stats();
    let started = Instant::now();
    for _ in 0..steps.saturating_sub(warmup) {
        tape.reset();
        core_step(&mut tape, &mut store, &mlp, &mut adam, &x, &y);
    }
    let persistent_ms =
        started.elapsed().as_secs_f64() * 1e3 / steps.saturating_sub(warmup).max(1) as f64;
    let after = tape.pool_stats();
    let persistent_checksum = params_checksum(&store);

    let steady_steps = steps.saturating_sub(warmup).max(1) as f64;
    let steady_fresh = after.fresh - at_warmup.fresh;
    let steady_reused = after.reused - at_warmup.reused;
    let churn_fresh_per_step = churn_fresh as f64 / steps as f64;
    // Compare equal step counts: baseline fresh over the steady window vs
    // the tape's fresh over the same window.
    let alloc_reduction = churn_fresh_per_step * steady_steps / steady_fresh.max(1) as f64;

    // Inference latency: one LST-GAT per-step prediction on a live graph.
    let model = LstGat::new(LstGatConfig::default(), scale.normalizer());
    let env = HighwayEnv::new(scale.env.clone(), PerceptionMode::Persistence);
    let graph = env.percepts().graph.clone();
    let (inference_ms, _) = time_ms(reps.max(2), || model.predict(&graph));

    CoreResult {
        churn_ms,
        persistent_ms,
        churn_fresh_per_step,
        steady_fresh_per_step: steady_fresh as f64 / steady_steps,
        steady_reused_per_step: steady_reused as f64 / steady_steps,
        alloc_reduction,
        tape_fresh: after.fresh,
        tape_reused: after.reused,
        churn_checksum,
        persistent_checksum,
        inference_ms,
        steps,
        warmup,
    }
}

fn main() {
    let cli = bench::Cli::parse("perf", &["--reps", "--json-core"]);
    let scale = cli.scale();
    let n_threads = cli.apply_threads().max(2);
    par::set_threads(n_threads);
    cli.init_telemetry("perf", &scale);
    let pool = par::pool();

    let (matmul_dims, episodes, default_reps) = match cli.value("--scale") {
        Some("paper") => ((512, 512, 512), 64, 10),
        None | Some("bench") => ((256, 256, 256), 24, 5),
        _ => ((96, 128, 96), 6, 3),
    };
    let reps = cli.parsed("--reps").unwrap_or(default_reps);

    eprintln!("perf: {n_threads} threads, {reps} reps");
    let ops = vec![
        bench_matmul(matmul_dims, reps, &pool),
        bench_inference(&scale, reps, &pool),
        bench_episodes(&scale.env, episodes, &pool),
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>8}  {:<16} equal",
        "op", "serial(ms)", "parallel(ms)", "speedup", "checksum"
    );
    for op in &ops {
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>8.2}  {:016x} {}",
            op.op,
            op.serial_ms,
            op.parallel_ms,
            op.speedup(),
            op.serial_checksum,
            op.equal()
        );
    }

    let doc = Json::obj(vec![
        ("bench", Json::from("parallel")),
        ("n_threads", Json::from(n_threads)),
        ("scale", Json::from(cli.value("--scale").unwrap_or("bench"))),
        ("reps", Json::from(reps)),
        (
            "ops",
            Json::Arr(ops.iter().map(|o| o.to_json(n_threads)).collect()),
        ),
    ]);
    let path = cli.value("--json").unwrap_or("BENCH_parallel.json");
    if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {path}");

    if let Some(bad) = ops.iter().find(|o| !o.equal()) {
        eprintln!(
            "DETERMINISM VIOLATION: op '{}' serial {:016x} != parallel {:016x}",
            bad.op, bad.serial_checksum, bad.parallel_checksum
        );
        telemetry::flight_record(
            telemetry::keys::FLIGHT_CHECKSUM_DIVERGENCE,
            bad.parallel_checksum as f64,
        );
        telemetry::flight_dump(telemetry::keys::FLIGHT_CHECKSUM_DIVERGENCE);
        std::process::exit(1);
    }
    println!("all serial/parallel checksums equal");

    // Memory-model profile: learn-step allocation churn vs the persistent
    // tape, plus per-call inference latency.
    let core = bench_core(&scale, reps);
    println!(
        "learn-step  {:>10.4} ms churn  {:>10.4} ms persistent  fresh/step {:>7.1} -> {:>5.2}  reduction {:>8.1}x",
        core.churn_ms,
        core.persistent_ms,
        core.churn_fresh_per_step,
        core.steady_fresh_per_step,
        core.alloc_reduction
    );
    println!("inference   {:>10.4} ms/call (LST-GAT)", core.inference_ms);
    let core_doc = Json::obj(vec![
        ("bench", Json::from("core")),
        ("scale", Json::from(cli.value("--scale").unwrap_or("bench"))),
        ("probe_dims", Json::from(format!("{CORE_DIMS:?}"))),
        ("batch", Json::from(CORE_BATCH)),
        ("profile", core.to_json()),
    ]);
    let core_path = cli.value("--json-core").unwrap_or("BENCH_core.json");
    if let Err(e) = std::fs::write(core_path, format!("{core_doc}\n")) {
        eprintln!("failed to write {core_path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {core_path}");

    if !core.identical() {
        eprintln!(
            "DETERMINISM VIOLATION: tape reuse changed the trained weights \
             ({:016x} != {:016x})",
            core.churn_checksum, core.persistent_checksum
        );
        telemetry::flight_record(
            telemetry::keys::FLIGHT_CHECKSUM_DIVERGENCE,
            core.persistent_checksum as f64,
        );
        telemetry::flight_dump(telemetry::keys::FLIGHT_CHECKSUM_DIVERGENCE);
        std::process::exit(1);
    }
    if !core.reuse_ok() {
        eprintln!(
            "ALLOCATION REGRESSION: steady-state tape reused {} <= fresh {}",
            core.tape_reused, core.tape_fresh
        );
        std::process::exit(1);
    }
    if core.alloc_reduction < 10.0 {
        eprintln!(
            "ALLOCATION REGRESSION: learn-step reduction {:.1}x < 10x",
            core.alloc_reduction
        );
        std::process::exit(1);
    }
    println!("steady-state allocation reuse ok");

    // One trend entry per successful run: both report documents flattened
    // under distinct prefixes (see `bench --bin benchdiff --trend`).
    cli.append_trend_json(&[("parallel", &doc), ("core", &core_doc)]);
    bench::finish_telemetry();
}
