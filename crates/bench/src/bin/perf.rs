//! Perf harness for the deterministic worker pool: times serial vs
//! parallel execution of the three parallelised layers and writes
//! `BENCH_parallel.json` (via telemetry's dependency-free Json writer).
//!
//! Ops measured (the "parallel" leg of `matmul` and `inference` records
//! the *dispatched* production path — work-size-aware `matmul_auto`, and
//! `predict_par` only on a pool with ≥2 workers — so the recorded speedup
//! is what production actually pays, never a forced losing split):
//! * `matmul` — the cache-blocked kernel, one big product per rep;
//! * `inference` — one LST-GAT per-step prediction (six heads);
//! * `episodes` — greedy evaluation episode throughput (episodes/sec).
//!
//! The serial and parallel checksums of every op must be equal — the pool
//! contract is *byte-identical* output — and the run exits 1 when any
//! pair diverges, so CI catches a determinism regression as a hard
//! failure, not a slow drift. Speedups are reported, not asserted: they
//! depend on the host's core count (a 4-core host reaches ≥1.5× on the
//! episode op; a single-core container reports ≈1× or below).
//!
//! A second section profiles the nn memory model — the same learn step run
//! with a fresh `Graph` per step vs a persistent reset tape (latency,
//! fresh/reused buffer counts, final-weight bit-identity) plus per-call
//! LST-GAT inference latency — and writes it to `BENCH_core.json`. The
//! run exits 1 when the two learn loops' weights diverge, when the
//! steady-state tape allocates more than it reuses, or when the
//! allocation reduction falls under 10x.
//!
//! A third section sweeps the GEMM micro-kernel across fixed sizes
//! (serial / forced-parallel / auto-dispatched, min-of-reps, GFLOP/s) and
//! times batched vs per-sample inference (one wide `act_batch_greedy`
//! pass against a loop of skinny `act` calls, plus the stacked LST-GAT
//! batch), writing `BENCH_kernels.json`. Its gates exit 1 when any
//! checksum diverges across the three GEMM paths, when the dispatched
//! path loses to serial at any size (the work-size thresholds exist so
//! the parallel path is never selected where it loses), when forced
//! parallel loses at a size the dispatcher would choose it (only judged
//! where the host has ≥2 effective cores), or when a batched inference
//! row falls under its gated floor (2x for the flat-state DQN trunk,
//! "never loses" for the shape-bound rows — DESIGN.md §5 derives why the
//! single-core ceiling is ~3x, not the naive 4x+).
//!
//! Usage: `cargo run -p bench --bin perf --release -- \
//!     [--scale smoke|bench|paper] [--threads N] [--reps N] [--json PATH] \
//!     [--json-core PATH] [--json-kernels PATH]`

use decision::{AgentConfig, AugmentedState, BpDqn, DiscreteDqn, PamdpAgent};
use head::{
    evaluate_agent_par, DrivingAgent, EnvConfig, HighwayEnv, IdmLc, PerceptionMode, RuleConfig,
};
use nn::{Adam, Graph, Matrix, Mlp, ParamStore};
use perception::{LstGat, LstGatConfig, StGraph, StatePredictor};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::time::Instant;
use telemetry::Json;

/// One serial-vs-parallel comparison.
struct OpResult {
    op: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
    serial_checksum: u64,
    parallel_checksum: u64,
    /// Extra op-specific fields (e.g. episodes/sec).
    extra: Vec<(&'static str, Json)>,
}

impl OpResult {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            f64::NAN
        }
    }

    fn equal(&self) -> bool {
        self.serial_checksum == self.parallel_checksum
    }

    fn to_json(&self, n_threads: usize) -> Json {
        let mut pairs = vec![
            ("op", Json::from(self.op)),
            ("n_threads", Json::from(n_threads)),
            ("serial_wall_ms", Json::Num(self.serial_ms)),
            ("parallel_wall_ms", Json::Num(self.parallel_ms)),
            ("speedup", Json::Num(self.speedup())),
            (
                "checksum",
                Json::from(format!("{:016x}", self.serial_checksum)),
            ),
            (
                "parallel_checksum",
                Json::from(format!("{:016x}", self.parallel_checksum)),
            ),
            ("checksums_equal", Json::Bool(self.equal())),
        ];
        pairs.extend(self.extra.iter().cloned());
        Json::obj(pairs)
    }
}

/// Deterministic matrix fill from the shared seed-stream deriver.
fn seeded_matrix(rows: usize, cols: usize, stream: u64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let bits = par::stream_seed(stream, i as u64);
            ((bits >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = f();
    let started = Instant::now();
    for _ in 1..reps {
        out = f();
    }
    let total = started.elapsed().as_secs_f64() * 1e3;
    (total / (reps.saturating_sub(1).max(1)) as f64, out)
}

fn bench_matmul(dims: (usize, usize, usize), reps: usize) -> OpResult {
    let (m, k, n) = dims;
    let a = seeded_matrix(m, k, 0xA11CE);
    let b = seeded_matrix(k, n, 0xB0B);
    let (serial_ms, serial) = time_ms(reps, || a.matmul(&b));
    // The "parallel" leg records the dispatched production path: below the
    // calibrated work-size threshold (or on a single effective core) the
    // dispatcher stays serial, so this leg can never lose badly the way a
    // forced parallel split does on skinny work. The forced split is still
    // measured per size by the kernel sweep below.
    let (parallel_ms, parallel) = time_ms(reps, || a.matmul_auto(&b));
    OpResult {
        op: "matmul",
        serial_ms,
        parallel_ms,
        serial_checksum: serial.checksum(),
        parallel_checksum: parallel.checksum(),
        extra: vec![("dims", Json::from(format!("{m}x{k}x{n}")))],
    }
}

fn prediction_checksum(pred: &perception::Prediction) -> u64 {
    let mut h = par::Checksum::new();
    for p in pred {
        h.push_f64(p.d_lat);
        h.push_f64(p.d_lon);
        h.push_f64(p.v_rel);
    }
    h.finish()
}

fn bench_inference(scale: &head::experiments::Scale, reps: usize, pool: &par::Pool) -> OpResult {
    // An untrained (seed-initialised) model over a live percept graph: the
    // weights do not matter for timing or for the determinism contract.
    let model = LstGat::new(LstGatConfig::default(), scale.normalizer());
    let env = HighwayEnv::new(scale.env.clone(), PerceptionMode::Persistence);
    let graph = env.percepts().graph.clone();
    let (serial_ms, serial) = time_ms(reps, || model.predict(&graph));
    // Dispatched production path: fan the six heads out only when the pool
    // really has ≥2 workers — on fewer, `predict_par` would repeat the
    // shared trunk once per head with nothing to hide the cost behind.
    let (parallel_ms, parallel) = time_ms(reps, || {
        if pool.threads() >= 2 {
            model.predict_par(&graph, pool)
        } else {
            model.predict(&graph)
        }
    });
    OpResult {
        op: "inference",
        serial_ms,
        parallel_ms,
        serial_checksum: prediction_checksum(&serial),
        parallel_checksum: prediction_checksum(&parallel),
        extra: Vec::new(),
    }
}

fn episodes_checksum(eps: &[head::EpisodeMetrics]) -> u64 {
    let mut h = par::Checksum::new();
    for e in eps {
        h.push_u64(e.steps as u64);
        h.push_u64(e.impact_events as u64);
        h.push_f64(e.total_reward);
        h.push_f64(e.mean_reward);
        h.push_f64(e.min_ttc);
        h.push_f64(e.avg_v);
        h.push_f64(e.avg_jerk);
        h.push_f64(e.driving_time);
    }
    h.finish()
}

fn bench_episodes(cfg: &EnvConfig, episodes: usize, pool: &par::Pool) -> OpResult {
    let factory = || {
        (
            HighwayEnv::new(cfg.clone(), PerceptionMode::Persistence),
            Box::new(IdmLc::new(RuleConfig::default())) as Box<dyn DrivingAgent>,
        )
    };
    let serial_pool = par::Pool::new(1);
    let started = Instant::now();
    let serial = evaluate_agent_par(&factory, episodes, 9_000_000, &serial_pool);
    let serial_ms = started.elapsed().as_secs_f64() * 1e3;
    let started = Instant::now();
    let parallel = evaluate_agent_par(&factory, episodes, 9_000_000, pool);
    let parallel_ms = started.elapsed().as_secs_f64() * 1e3;
    OpResult {
        op: "episodes",
        serial_ms,
        parallel_ms,
        serial_checksum: episodes_checksum(&serial),
        parallel_checksum: episodes_checksum(&parallel),
        extra: vec![
            ("episodes", Json::from(episodes)),
            (
                "serial_eps_per_sec",
                Json::Num(episodes as f64 / (serial_ms / 1e3)),
            ),
            (
                "parallel_eps_per_sec",
                Json::Num(episodes as f64 / (parallel_ms / 1e3)),
            ),
        ],
    }
}

/// GEMM sizes the kernel sweep measures, chosen to straddle the
/// dispatcher's work-size threshold: the two largest exceed
/// [`nn::PAR_MIN_MACS`] (where the auto path may go parallel), the rest
/// stay under it (where going parallel is a measured loss and the auto
/// path must stay serial).
const KERNEL_SIZES: [(usize, usize, usize); 5] = [
    (64, 64, 64),
    (96, 128, 96),
    (128, 128, 128),
    (192, 256, 320),
    (256, 256, 256),
];

/// Elapsed milliseconds since `t`. The kernel gates compare per-leg
/// minima over *interleaved* rounds, not means over contiguous runs: the
/// minimum is the round least disturbed by the host, and interleaving the
/// legs (serial, parallel, auto, serial, ...) spreads a multi-millisecond
/// neighbour-contention burst across every leg instead of letting it
/// inflate whichever single leg owned that window — exactly the failure
/// that makes a contiguous min-of-N compare two different hosts.
fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// One GEMM size: serial vs forced-parallel vs auto-dispatched.
struct KernelSize {
    label: String,
    /// Multiply-accumulate count `m*k*n` (dispatch threshold units).
    macs: usize,
    serial_ms: f64,
    parallel_ms: f64,
    auto_ms: f64,
    serial_checksum: u64,
    parallel_checksum: u64,
    auto_checksum: u64,
}

impl KernelSize {
    fn gflops(&self, ms: f64) -> f64 {
        if ms > 0.0 {
            2.0 * self.macs as f64 / (ms * 1e6)
        } else {
            f64::NAN
        }
    }

    fn parallel_speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }

    fn auto_speedup(&self) -> f64 {
        self.serial_ms / self.auto_ms
    }

    fn equal(&self) -> bool {
        self.serial_checksum == self.parallel_checksum && self.serial_checksum == self.auto_checksum
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("op", Json::from(self.label.as_str())),
            ("macs", Json::from(self.macs)),
            ("serial_wall_ms", Json::Num(self.serial_ms)),
            ("parallel_wall_ms", Json::Num(self.parallel_ms)),
            ("auto_wall_ms", Json::Num(self.auto_ms)),
            (
                "serial_gflops_per_sec",
                Json::Num(self.gflops(self.serial_ms)),
            ),
            (
                "parallel_gflops_per_sec",
                Json::Num(self.gflops(self.parallel_ms)),
            ),
            ("auto_gflops_per_sec", Json::Num(self.gflops(self.auto_ms))),
            ("parallel_speedup", Json::Num(self.parallel_speedup())),
            ("auto_speedup", Json::Num(self.auto_speedup())),
            (
                "checksum",
                Json::from(format!("{:016x}", self.serial_checksum)),
            ),
            ("checksums_equal", Json::Bool(self.equal())),
        ])
    }
}

fn bench_kernel_size(dims: (usize, usize, usize), reps: usize, pool: &par::Pool) -> KernelSize {
    let (m, k, n) = dims;
    let a = seeded_matrix(m, k, 0x5EED);
    let b = seeded_matrix(k, n, 0xFEED);
    // Scale reps inversely with work so every size gets a comparable total
    // measurement window: a 64³ call runs in tens of microseconds, where a
    // min over 3 reps still wobbles past the dispatch gate's 10% band on a
    // shared host. Floor the per-size budget at ~2²⁴ MACs and at 8 reps
    // (the largest sizes otherwise keep the caller's smoke rep count).
    let reps = reps
        .max(8)
        .max((1usize << 24) / (m * k * n).max(1))
        .min(512);
    // Warmup one round, then time the three legs interleaved (see
    // [`ms_since`] for why contiguous per-leg runs would gate on noise).
    let mut serial = a.matmul(&b);
    let mut parallel = a.matmul_par(&b, pool);
    let mut auto = a.matmul_auto(&b);
    let (mut serial_ms, mut parallel_ms, mut auto_ms) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t = Instant::now();
        serial = a.matmul(&b);
        serial_ms = serial_ms.min(ms_since(t));
        let t = Instant::now();
        parallel = a.matmul_par(&b, pool);
        parallel_ms = parallel_ms.min(ms_since(t));
        let t = Instant::now();
        auto = a.matmul_auto(&b);
        auto_ms = auto_ms.min(ms_since(t));
    }
    KernelSize {
        label: format!("gemm_{m}x{k}x{n}"),
        macs: m * k * n,
        serial_ms,
        parallel_ms,
        auto_ms,
        serial_checksum: serial.checksum(),
        parallel_checksum: parallel.checksum(),
        auto_checksum: auto.checksum(),
    }
}

/// Batched vs per-sample inference for one model.
struct BatchedResult {
    name: &'static str,
    batch: usize,
    /// Minimum batched speedup this row is gated at. The flat-state DQN
    /// trunk (good GEMM shapes, ~10 tape ops amortised) is held to 2x;
    /// rows whose cost is per-sample by construction (BP-DQN's k=4 / n=1
    /// branch shapes, LST-GAT's per-sample graph assembly) are held to
    /// "batching never loses beyond noise". Measured ceilings behind
    /// these floors are derived in DESIGN.md §5.
    floor: f64,
    per_sample_ms: f64,
    batched_ms: f64,
    per_sample_checksum: u64,
    batched_checksum: u64,
}

impl BatchedResult {
    fn speedup(&self) -> f64 {
        if self.batched_ms > 0.0 {
            self.per_sample_ms / self.batched_ms
        } else {
            f64::NAN
        }
    }

    fn equal(&self) -> bool {
        self.per_sample_checksum == self.batched_checksum
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("op", Json::from(self.name)),
            ("batch", Json::from(self.batch)),
            ("gate_floor", Json::Num(self.floor)),
            ("per_sample_wall_ms", Json::Num(self.per_sample_ms)),
            ("batched_wall_ms", Json::Num(self.batched_ms)),
            ("batched_speedup", Json::Num(self.speedup())),
            (
                "checksum",
                Json::from(format!("{:016x}", self.batched_checksum)),
            ),
            ("checksums_equal", Json::Bool(self.equal())),
        ])
    }
}

/// Deterministic, varied, finite agent states.
fn kernel_states(n: usize) -> Vec<AugmentedState> {
    (0..n)
        .map(|i| {
            let mut s = AugmentedState::zeros();
            for (r, row) in s.current.iter_mut().enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    let bits = par::stream_seed(0xDECADE, (i * 100 + r * 10 + c) as u64);
                    *v = (bits >> 11) as f64 / (1u64 << 53) as f64 * 40.0 - 20.0;
                }
            }
            for (r, row) in s.future.iter_mut().enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    let bits = par::stream_seed(0xFACE, (i * 100 + r * 10 + c) as u64);
                    *v = (bits >> 11) as f64 / (1u64 << 53) as f64 * 30.0 - 15.0;
                }
            }
            s
        })
        .collect()
}

fn actions_checksum(actions: &[(decision::Action, [f32; 6])]) -> u64 {
    let mut h = par::Checksum::new();
    for (action, params) in actions {
        h.push_u64(action.behaviour.index() as u64);
        h.push_f64(action.accel);
        for &p in params {
            h.push_f64(f64::from(p));
        }
    }
    h.finish()
}

/// Greedy action selection for one agent: a loop of `batch` skinny
/// per-state passes vs one wide batch pass. The two must agree bit for
/// bit — this is the exact substitution the serve batcher makes.
fn bench_batched_agent(
    name: &'static str,
    agent: &mut dyn PamdpAgent,
    floor: f64,
    reps: usize,
) -> BatchedResult {
    let batch = 32usize;
    let states = kernel_states(batch);
    let refs: Vec<&AugmentedState> = states.iter().collect();
    // Interleave the two legs round-robin (see [`ms_since`]).
    let mut singles: Vec<_> = states.iter().map(|s| agent.act(s, false)).collect();
    let mut batched = agent.act_batch_greedy(&refs);
    let (mut per_sample_ms, mut batched_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t = Instant::now();
        singles = states.iter().map(|s| agent.act(s, false)).collect();
        per_sample_ms = per_sample_ms.min(ms_since(t));
        let t = Instant::now();
        batched = agent.act_batch_greedy(&refs);
        batched_ms = batched_ms.min(ms_since(t));
    }
    BatchedResult {
        name,
        batch,
        floor,
        per_sample_ms,
        batched_ms,
        per_sample_checksum: actions_checksum(&singles),
        batched_checksum: actions_checksum(&batched),
    }
}

/// LST-GAT prediction: 8 per-graph passes vs one stacked batch-of-8 pass
/// over the six perception heads.
fn bench_batched_lstgat(scale: &head::experiments::Scale, reps: usize) -> BatchedResult {
    let batch = 8usize;
    let mut model = LstGat::new(LstGatConfig::default(), scale.normalizer());
    let env = HighwayEnv::new(scale.env.clone(), PerceptionMode::Persistence);
    let graph = env.percepts().graph.clone();
    let graphs: Vec<&StGraph> = vec![&graph; batch];
    // Interleave the two legs round-robin (see [`ms_since`]).
    let mut singles: Vec<_> = graphs.iter().map(|g| model.predict(g)).collect();
    let mut batched = model.predict_batch(&graphs);
    let (mut per_sample_ms, mut batched_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t = Instant::now();
        singles = graphs.iter().map(|g| model.predict(g)).collect();
        per_sample_ms = per_sample_ms.min(ms_since(t));
        let t = Instant::now();
        batched = model.predict_batch(&graphs);
        batched_ms = batched_ms.min(ms_since(t));
    }
    let fold = |preds: &[perception::Prediction]| {
        let mut h = par::Checksum::new();
        for p in preds {
            h.push_u64(prediction_checksum(p));
        }
        h.finish()
    };
    BatchedResult {
        name: "lst_gat_predict_b8",
        batch,
        // Per-sample graph assembly bounds the stacked pass at ~1.1-1.3x,
        // and smoke reps wobble ±10%: gate at "never loses beyond noise"
        // rather than a 1.0 floor one wobble away from a spurious failure.
        floor: 0.9,
        per_sample_ms,
        batched_ms,
        per_sample_checksum: fold(&singles),
        batched_checksum: fold(&batched),
    }
}

/// Learn-step and inference memory-model profile, written to
/// `BENCH_core.json`.
///
/// The learn-step comparison trains the same seeded MLP regression twice:
/// the pre-arena model (one fresh `Graph` per optimisation step, so every
/// intermediate buffer hits the heap) against the refactored model (one
/// persistent tape, `reset()` per step, buffers recycled through the
/// tape's `BufferPool`). Both runs must end with bit-identical weights —
/// tape reuse is not allowed to change a single ULP — and after warmup
/// the persistent tape must serve (almost) everything from the free
/// lists: `steady_fresh` stays at zero while `reused` grows each step.
struct CoreResult {
    /// Mean wall-clock per learn step, fresh-graph baseline.
    churn_ms: f64,
    /// Mean wall-clock per learn step, persistent tape.
    persistent_ms: f64,
    /// Heap buffer allocations per step in the baseline.
    churn_fresh_per_step: f64,
    /// Heap buffer allocations per step at steady state (post-warmup).
    steady_fresh_per_step: f64,
    /// Arena-served buffers per step at steady state.
    steady_reused_per_step: f64,
    /// `churn_fresh / max(steady_fresh, 1)` over the measured window.
    alloc_reduction: f64,
    /// Cumulative tape counters after the persistent run.
    tape_fresh: u64,
    tape_reused: u64,
    /// Final parameter checksums of the two runs.
    churn_checksum: u64,
    persistent_checksum: u64,
    /// Mean per-call LST-GAT prediction latency (six heads, one graph).
    inference_ms: f64,
    steps: usize,
    warmup: usize,
}

impl CoreResult {
    fn identical(&self) -> bool {
        self.churn_checksum == self.persistent_checksum
    }

    /// Steady state must reuse more than it allocates fresh.
    fn reuse_ok(&self) -> bool {
        self.tape_reused > self.tape_fresh
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "learn_step",
                Json::obj(vec![
                    ("steps", Json::from(self.steps)),
                    ("warmup", Json::from(self.warmup)),
                    ("churn_ms_per_step", Json::Num(self.churn_ms)),
                    ("persistent_ms_per_step", Json::Num(self.persistent_ms)),
                    (
                        "latency_speedup",
                        Json::Num(if self.persistent_ms > 0.0 {
                            self.churn_ms / self.persistent_ms
                        } else {
                            f64::NAN
                        }),
                    ),
                    ("churn_fresh_per_step", Json::Num(self.churn_fresh_per_step)),
                    (
                        "steady_fresh_per_step",
                        Json::Num(self.steady_fresh_per_step),
                    ),
                    (
                        "steady_reused_per_step",
                        Json::Num(self.steady_reused_per_step),
                    ),
                    ("alloc_reduction", Json::Num(self.alloc_reduction)),
                    ("tape_fresh", Json::from(self.tape_fresh)),
                    ("tape_reused", Json::from(self.tape_reused)),
                    (
                        "checksum",
                        Json::from(format!("{:016x}", self.persistent_checksum)),
                    ),
                    ("checksums_equal", Json::Bool(self.identical())),
                    ("reuse_ok", Json::Bool(self.reuse_ok())),
                ]),
            ),
            (
                "inference",
                Json::obj(vec![
                    ("model", Json::from("LST-GAT")),
                    ("mean_ms_per_call", Json::Num(self.inference_ms)),
                ]),
            ),
        ])
    }
}

/// Layer widths of the probe network — sized like a decision agent's
/// Q-network so the allocation profile is representative.
const CORE_DIMS: [usize; 4] = [8, 128, 128, 5];
const CORE_BATCH: usize = 32;

/// Builds the identically-seeded model and data both learn loops start
/// from.
fn core_setup(seed: u64) -> (ParamStore, Mlp, Matrix, Matrix) {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let mlp = Mlp::new(&mut store, "probe", &CORE_DIMS, &mut rng);
    let x = seeded_matrix(CORE_BATCH, CORE_DIMS[0], 0xC0FFEE);
    let y = seeded_matrix(CORE_BATCH, CORE_DIMS[3], 0xFACADE);
    (store, mlp, x, y)
}

/// One optimisation step on whatever graph the caller hands in.
fn core_step(
    g: &mut Graph,
    store: &mut ParamStore,
    mlp: &Mlp,
    adam: &mut Adam,
    x: &Matrix,
    y: &Matrix,
) {
    let xv = g.input_copy(x);
    let yv = g.input_copy(y);
    let pred = mlp.forward(g, store, xv);
    let loss = g.mse(pred, yv);
    store.zero_grad();
    g.backward(loss, store);
    adam.step(store);
}

fn params_checksum(store: &ParamStore) -> u64 {
    let mut h = par::Checksum::new();
    for p in store.iter() {
        for &v in p.value.data() {
            h.push_f64(f64::from(v));
        }
    }
    h.finish()
}

fn bench_core(scale: &head::experiments::Scale, reps: usize) -> CoreResult {
    let warmup = 5usize;
    let steps = (reps * 10).max(50);

    // Baseline: a fresh graph (cold arena) for every step.
    let (mut store, mlp, x, y) = core_setup(7);
    let mut adam = Adam::new(1e-3);
    let mut churn_fresh = 0u64;
    let started = Instant::now();
    for _ in 0..steps {
        let mut g = Graph::new();
        core_step(&mut g, &mut store, &mlp, &mut adam, &x, &y);
        churn_fresh += g.pool_stats().fresh;
    }
    let churn_ms = started.elapsed().as_secs_f64() * 1e3 / steps as f64;
    let churn_checksum = params_checksum(&store);

    // Refactored: one persistent tape, reset per step.
    let (mut store, mlp, x, y) = core_setup(7);
    let mut adam = Adam::new(1e-3);
    let mut tape = Graph::new();
    for _ in 0..warmup {
        tape.reset();
        core_step(&mut tape, &mut store, &mlp, &mut adam, &x, &y);
    }
    let at_warmup = tape.pool_stats();
    let started = Instant::now();
    for _ in 0..steps.saturating_sub(warmup) {
        tape.reset();
        core_step(&mut tape, &mut store, &mlp, &mut adam, &x, &y);
    }
    let persistent_ms =
        started.elapsed().as_secs_f64() * 1e3 / steps.saturating_sub(warmup).max(1) as f64;
    let after = tape.pool_stats();
    let persistent_checksum = params_checksum(&store);

    let steady_steps = steps.saturating_sub(warmup).max(1) as f64;
    let steady_fresh = after.fresh - at_warmup.fresh;
    let steady_reused = after.reused - at_warmup.reused;
    let churn_fresh_per_step = churn_fresh as f64 / steps as f64;
    // Compare equal step counts: baseline fresh over the steady window vs
    // the tape's fresh over the same window.
    let alloc_reduction = churn_fresh_per_step * steady_steps / steady_fresh.max(1) as f64;

    // Inference latency: one LST-GAT per-step prediction on a live graph.
    let model = LstGat::new(LstGatConfig::default(), scale.normalizer());
    let env = HighwayEnv::new(scale.env.clone(), PerceptionMode::Persistence);
    let graph = env.percepts().graph.clone();
    let (inference_ms, _) = time_ms(reps.max(2), || model.predict(&graph));

    CoreResult {
        churn_ms,
        persistent_ms,
        churn_fresh_per_step,
        steady_fresh_per_step: steady_fresh as f64 / steady_steps,
        steady_reused_per_step: steady_reused as f64 / steady_steps,
        alloc_reduction,
        tape_fresh: after.fresh,
        tape_reused: after.reused,
        churn_checksum,
        persistent_checksum,
        inference_ms,
        steps,
        warmup,
    }
}

fn main() {
    let cli = bench::Cli::parse("perf", &["--reps", "--json-core", "--json-kernels"]);
    let scale = cli.scale();
    let n_threads = cli.apply_threads().max(2);
    par::set_threads(n_threads);
    cli.init_telemetry("perf", &scale);
    // The measurement pool is capped at the machine's real parallelism:
    // workers oversubscribed onto fewer cores can only lose, and the
    // dispatch layer never selects them in production (a 1-worker pool
    // runs inline, so a single-core host measures the serial path twice
    // and reports ≈1x, not the oversubscription penalty).
    let effective = n_threads.min(par::hardware_threads());
    let pool = par::Pool::new(effective);

    let (matmul_dims, episodes, default_reps) = match cli.value("--scale") {
        Some("paper") => ((512, 512, 512), 64, 10),
        None | Some("bench") => ((256, 256, 256), 24, 5),
        _ => ((96, 128, 96), 6, 3),
    };
    let reps = cli.parsed("--reps").unwrap_or(default_reps);

    eprintln!("perf: {n_threads} threads, {reps} reps");
    let ops = vec![
        bench_matmul(matmul_dims, reps),
        bench_inference(&scale, reps, &pool),
        bench_episodes(&scale.env, episodes, &pool),
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>8}  {:<16} equal",
        "op", "serial(ms)", "parallel(ms)", "speedup", "checksum"
    );
    for op in &ops {
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>8.2}  {:016x} {}",
            op.op,
            op.serial_ms,
            op.parallel_ms,
            op.speedup(),
            op.serial_checksum,
            op.equal()
        );
    }

    let doc = Json::obj(vec![
        ("bench", Json::from("parallel")),
        ("n_threads", Json::from(n_threads)),
        ("scale", Json::from(cli.value("--scale").unwrap_or("bench"))),
        ("reps", Json::from(reps)),
        (
            "ops",
            Json::Arr(ops.iter().map(|o| o.to_json(n_threads)).collect()),
        ),
    ]);
    let path = cli.value("--json").unwrap_or("BENCH_parallel.json");
    if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {path}");

    if let Some(bad) = ops.iter().find(|o| !o.equal()) {
        eprintln!(
            "DETERMINISM VIOLATION: op '{}' serial {:016x} != parallel {:016x}",
            bad.op, bad.serial_checksum, bad.parallel_checksum
        );
        telemetry::flight_record(
            telemetry::keys::FLIGHT_CHECKSUM_DIVERGENCE,
            bad.parallel_checksum as f64,
        );
        telemetry::flight_dump(telemetry::keys::FLIGHT_CHECKSUM_DIVERGENCE);
        std::process::exit(1);
    }
    println!("all serial/parallel checksums equal");

    // GEMM micro-kernel sweep + batched-vs-per-sample inference.
    // Kernel-section minima want more reps than the episode smoke: each
    // batched row compares sub-millisecond legs where a min-of-3 still
    // carries host noise through the gated ratios.
    let kreps = reps.max(8);
    let kernel_sizes: Vec<KernelSize> = KERNEL_SIZES
        .iter()
        .map(|&dims| bench_kernel_size(dims, kreps, &pool))
        .collect();
    // The DQN trunk is the amortisation showcase (flat 44-wide states,
    // well-shaped GEMMs, ~10 tape ops per pass); BP-DQN and LST-GAT are
    // held to "batching never loses" because their cost is per-sample by
    // construction (k=4 / n=1 branch shapes; per-sample graph assembly).
    let batched = vec![
        bench_batched_agent(
            "dqn_act_greedy_b32",
            &mut DiscreteDqn::new(AgentConfig::default()),
            2.0,
            kreps,
        ),
        bench_batched_agent(
            "bpdqn_act_greedy_b32",
            &mut BpDqn::new(AgentConfig::default()),
            1.0,
            kreps,
        ),
        bench_batched_lstgat(&scale, kreps),
    ];

    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>9} {:>9}  equal",
        "kernel", "serial(ms)", "par(ms)", "auto(ms)", "auto GF/s", "auto spd"
    );
    for s in &kernel_sizes {
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>10.3} {:>9.2} {:>9.2}  {}",
            s.label,
            s.serial_ms,
            s.parallel_ms,
            s.auto_ms,
            s.gflops(s.auto_ms),
            s.auto_speedup(),
            s.equal()
        );
    }
    for b in &batched {
        println!(
            "{:<18} per-sample {:>8.3} ms  batched {:>8.3} ms  speedup {:>5.2}x  equal {}",
            b.name,
            b.per_sample_ms,
            b.batched_ms,
            b.speedup(),
            b.equal()
        );
    }

    let kernels_doc = Json::obj(vec![
        ("bench", Json::from("kernels")),
        ("n_threads", Json::from(n_threads)),
        ("effective_parallelism", Json::from(effective)),
        ("par_min_macs", Json::from(nn::PAR_MIN_MACS)),
        ("scale", Json::from(cli.value("--scale").unwrap_or("bench"))),
        ("reps", Json::from(kreps)),
        (
            "sizes",
            Json::Arr(kernel_sizes.iter().map(KernelSize::to_json).collect()),
        ),
        (
            "batched",
            Json::Arr(batched.iter().map(BatchedResult::to_json).collect()),
        ),
    ]);
    let kernels_path = cli.value("--json-kernels").unwrap_or("BENCH_kernels.json");
    if let Err(e) = std::fs::write(kernels_path, format!("{kernels_doc}\n")) {
        eprintln!("failed to write {kernels_path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {kernels_path}");

    for s in &kernel_sizes {
        if !s.equal() {
            eprintln!(
                "DETERMINISM VIOLATION: {} serial {:016x} / parallel {:016x} / auto {:016x}",
                s.label, s.serial_checksum, s.parallel_checksum, s.auto_checksum
            );
            std::process::exit(1);
        }
        // The dispatched path must never lose to plain serial — that is
        // the whole point of the measured work-size thresholds. 10%
        // covers timer noise on equal code paths.
        if s.auto_speedup() < 0.909 {
            eprintln!(
                "DISPATCH REGRESSION: auto path lost to serial at {} ({:.2}x)",
                s.label,
                s.auto_speedup()
            );
            std::process::exit(1);
        }
        // Where the host really has ≥2 cores and the size is above the
        // dispatch threshold (so production would go parallel), forced
        // parallel must beat serial outright.
        if effective >= 2 && s.macs >= nn::PAR_MIN_MACS && s.parallel_speedup() < 1.0 {
            eprintln!(
                "PARALLEL REGRESSION: parallel lost to serial at {} ({:.2}x) with {} effective cores",
                s.label,
                s.parallel_speedup(),
                effective
            );
            std::process::exit(1);
        }
    }
    // The batched path is the serve batcher's substitution; each row must
    // clear its floor even on one core. The floors are set from measured
    // single-core ceilings (DESIGN.md §5): folding N skinny passes into
    // one wide pass buys the wide-vs-skinny GEMM ratio (~1.9x, capped by
    // the ascending-k accumulation contract, which forbids k-vectorised
    // dot products) times the amortised tape dispatch — ~3x for the DQN
    // trunk, gated at 2x; shape-bound models are gated at "never loses".
    for b in &batched {
        if !b.equal() {
            eprintln!(
                "DETERMINISM VIOLATION: {} per-sample {:016x} != batched {:016x}",
                b.name, b.per_sample_checksum, b.batched_checksum
            );
            std::process::exit(1);
        }
        if b.speedup() < b.floor {
            eprintln!(
                "BATCHING REGRESSION: {} speedup {:.2}x < {:.1}x floor",
                b.name,
                b.speedup(),
                b.floor
            );
            std::process::exit(1);
        }
    }
    println!("kernel perf gates ok");

    // Memory-model profile: learn-step allocation churn vs the persistent
    // tape, plus per-call inference latency.
    let core = bench_core(&scale, reps);
    println!(
        "learn-step  {:>10.4} ms churn  {:>10.4} ms persistent  fresh/step {:>7.1} -> {:>5.2}  reduction {:>8.1}x",
        core.churn_ms,
        core.persistent_ms,
        core.churn_fresh_per_step,
        core.steady_fresh_per_step,
        core.alloc_reduction
    );
    println!("inference   {:>10.4} ms/call (LST-GAT)", core.inference_ms);
    let core_doc = Json::obj(vec![
        ("bench", Json::from("core")),
        ("scale", Json::from(cli.value("--scale").unwrap_or("bench"))),
        ("probe_dims", Json::from(format!("{CORE_DIMS:?}"))),
        ("batch", Json::from(CORE_BATCH)),
        ("profile", core.to_json()),
    ]);
    let core_path = cli.value("--json-core").unwrap_or("BENCH_core.json");
    if let Err(e) = std::fs::write(core_path, format!("{core_doc}\n")) {
        eprintln!("failed to write {core_path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {core_path}");

    if !core.identical() {
        eprintln!(
            "DETERMINISM VIOLATION: tape reuse changed the trained weights \
             ({:016x} != {:016x})",
            core.churn_checksum, core.persistent_checksum
        );
        telemetry::flight_record(
            telemetry::keys::FLIGHT_CHECKSUM_DIVERGENCE,
            core.persistent_checksum as f64,
        );
        telemetry::flight_dump(telemetry::keys::FLIGHT_CHECKSUM_DIVERGENCE);
        std::process::exit(1);
    }
    if !core.reuse_ok() {
        eprintln!(
            "ALLOCATION REGRESSION: steady-state tape reused {} <= fresh {}",
            core.tape_reused, core.tape_fresh
        );
        std::process::exit(1);
    }
    if core.alloc_reduction < 10.0 {
        eprintln!(
            "ALLOCATION REGRESSION: learn-step reduction {:.1}x < 10x",
            core.alloc_reduction
        );
        std::process::exit(1);
    }
    println!("steady-state allocation reuse ok");

    // One trend entry per successful run: both report documents flattened
    // under distinct prefixes (see `bench --bin benchdiff --trend`).
    cli.append_trend_json(&[
        ("parallel", &doc),
        ("kernels", &kernels_doc),
        ("core", &core_doc),
    ]);
    bench::finish_telemetry();
}
