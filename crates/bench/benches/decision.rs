//! Microbenchmarks behind Table VI: per-decision latency and per-update
//! cost of each PAMDP learner.

use criterion::{criterion_group, criterion_main, Criterion};
use decision::{
    Action, AgentConfig, AugmentedState, BpDqn, LaneBehaviour, PDdpg, PDqn, PQp, PamdpAgent,
    Transition,
};

fn act_latency(c: &mut Criterion) {
    let cfg = AgentConfig::default();
    let state = AugmentedState::zeros();
    let mut group = c.benchmark_group("act_latency");
    let mut agents: Vec<Box<dyn PamdpAgent>> = vec![
        Box::new(PQp::new(cfg)),
        Box::new(PDdpg::new(cfg)),
        Box::new(PDqn::new(cfg)),
        Box::new(BpDqn::new(cfg)),
    ];
    for agent in agents.iter_mut() {
        group.bench_function(agent.name(), |b| {
            b.iter(|| std::hint::black_box(agent.act(&state, false)))
        });
    }
    group.finish();
}

fn learn_step(c: &mut Criterion) {
    let cfg = AgentConfig {
        warmup: 64,
        batch_size: 64,
        ..AgentConfig::default()
    };
    let mut group = c.benchmark_group("learn_step");
    group.sample_size(10);
    let mut agents: Vec<Box<dyn PamdpAgent>> = vec![
        Box::new(PQp::new(cfg)),
        Box::new(PDdpg::new(cfg)),
        Box::new(PDqn::new(cfg)),
        Box::new(BpDqn::new(cfg)),
    ];
    for agent in agents.iter_mut() {
        for i in 0..256 {
            agent.observe(Transition {
                state: AugmentedState::zeros(),
                action: Action {
                    behaviour: LaneBehaviour::Keep,
                    accel: (i % 5) as f64 - 2.0,
                },
                params: [0.0; 6],
                reward: (i % 7) as f64 * 0.1,
                next_state: AugmentedState::zeros(),
                terminal: i % 50 == 49,
            });
        }
        let name = agent.name().to_string();
        group.bench_function(&name, |b| {
            b.iter(|| {
                agent.observe(Transition {
                    state: AugmentedState::zeros(),
                    action: Action {
                        behaviour: LaneBehaviour::Keep,
                        accel: 0.0,
                    },
                    params: [0.0; 6],
                    reward: 0.1,
                    next_state: AugmentedState::zeros(),
                    terminal: false,
                });
                std::hint::black_box(agent.learn())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = act_latency, learn_step
}
criterion_main!(benches);
