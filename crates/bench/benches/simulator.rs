//! Microbenchmarks for the traffic-simulator substrate: per-step cost as a
//! function of vehicle count (supports the end-to-end wall-clock numbers
//! in EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traffic_sim::{SimConfig, Simulation};

fn sim_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step");
    for density in [60.0, 120.0, 180.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(density as u64),
            &density,
            |b, &density| {
                let mut sim = Simulation::new(SimConfig {
                    road_len: 1000.0,
                    density_per_km: density,
                    seed: 1,
                    ..SimConfig::default()
                });
                sim.populate();
                sim.warm_up(50);
                b.iter(|| std::hint::black_box(sim.step()));
            },
        );
    }
    group.finish();
}

fn sensor_sweep(c: &mut Criterion) {
    use sensor::{sense, SensorConfig};
    let mut sim = Simulation::new(SimConfig {
        road_len: 1000.0,
        density_per_km: 180.0,
        seed: 2,
        ..SimConfig::default()
    });
    sim.populate();
    sim.warm_up(50);
    let ego = sim.spawn_external(2, 500.0, 20.0);
    let cfg = SensorConfig::default();
    c.bench_function("sensor_sweep_occlusion", |b| {
        b.iter(|| std::hint::black_box(sense(&sim, ego, &cfg)))
    });
    let no_occ = SensorConfig {
        occlusion: false,
        ..cfg
    };
    c.bench_function("sensor_sweep_range_only", |b| {
        b.iter(|| std::hint::black_box(sense(&sim, ego, &no_occ)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = sim_step, sensor_sweep
}
criterion_main!(benches);
