//! Microbenchmarks behind Table IV: per-call inference latency of each
//! state predictor (LST-GAT's single parallel pass vs the baselines'
//! per-vehicle loops) and phantom/graph construction cost.

use criterion::{criterion_group, criterion_main, Criterion};
use dataset::{generate_samples, CorpusConfig};
use perception::{
    EdLstm, EdLstmConfig, GasLed, GasLedConfig, LstGat, LstGatConfig, LstmMlp, LstmMlpConfig,
    Normalizer, StatePredictor,
};

fn predictors(c: &mut Criterion) {
    let samples = generate_samples(&CorpusConfig {
        windows: 4,
        egos_per_window: 2,
        warmup_steps: 40,
        ..CorpusConfig::default()
    });
    let graph = &samples[0].graph;
    let norm = Normalizer::paper_default();
    let mut group = c.benchmark_group("predict_one_step");
    let lst_gat = LstGat::new(LstGatConfig::default(), norm);
    group.bench_function("LST-GAT", |b| {
        b.iter(|| std::hint::black_box(lst_gat.predict(graph)))
    });
    let lstm_mlp = LstmMlp::new(LstmMlpConfig::default(), norm);
    group.bench_function("LSTM-MLP", |b| {
        b.iter(|| std::hint::black_box(lstm_mlp.predict(graph)))
    });
    let ed = EdLstm::new(EdLstmConfig::default(), norm);
    group.bench_function("ED-LSTM", |b| {
        b.iter(|| std::hint::black_box(ed.predict(graph)))
    });
    let gas = GasLed::new(GasLedConfig::default(), norm);
    group.bench_function("GAS-LED", |b| {
        b.iter(|| std::hint::black_box(gas.predict(graph)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = predictors
}
criterion_main!(benches);
