//! End-to-end environment-step benchmark: the full Fig. 1 loop (simulate →
//! sense → phantom construction → graph → predict → reward) per step, for
//! both perception modes.

use criterion::{criterion_group, criterion_main, Criterion};
use decision::{Action, LaneBehaviour};
use head::{EnvConfig, HighwayEnv, PerceptionMode, Terminal};
use perception::{LstGat, LstGatConfig, Normalizer};

fn env_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("env_step");
    group.sample_size(20);
    let action = Action {
        behaviour: LaneBehaviour::Keep,
        accel: 0.5,
    };

    let mut env = HighwayEnv::new(EnvConfig::bench_scale(), PerceptionMode::Persistence);
    group.bench_function("persistence_perception", |b| {
        b.iter(|| {
            if env.step(action).terminal != Terminal::None {
                env.reset();
            }
        })
    });

    let model = LstGat::new(LstGatConfig::default(), Normalizer::paper_default());
    let mut env = HighwayEnv::new(
        EnvConfig::bench_scale(),
        PerceptionMode::LstGat(Box::new(model)),
    );
    group.bench_function("lstgat_perception", |b| {
        b.iter(|| {
            if env.step(action).terminal != Terminal::None {
                env.reset();
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = env_step
}
criterion_main!(benches);
