//! Integration tests for the shared `bench::cli` parser: every binary
//! must reject malformed command lines with exit code 2 *before* doing
//! any work (no partial table runs, no stray output files).

use std::process::Command;

/// Every bench binary, resolved at compile time by Cargo.
const BINS: [(&str, &str); 10] = [
    ("table1", env!("CARGO_BIN_EXE_table1")),
    ("table2", env!("CARGO_BIN_EXE_table2")),
    ("table3_4", env!("CARGO_BIN_EXE_table3_4")),
    ("table5_6", env!("CARGO_BIN_EXE_table5_6")),
    ("table7", env!("CARGO_BIN_EXE_table7")),
    ("robustness", env!("CARGO_BIN_EXE_robustness")),
    ("train_curve", env!("CARGO_BIN_EXE_train_curve")),
    ("perf", env!("CARGO_BIN_EXE_perf")),
    ("benchdiff", env!("CARGO_BIN_EXE_benchdiff")),
    ("fleet", env!("CARGO_BIN_EXE_fleet")),
];

fn run(exe: &str, args: &[&str]) -> std::process::Output {
    match Command::new(exe).args(args).output() {
        Ok(out) => out,
        Err(e) => panic!("failed to spawn {exe}: {e}"),
    }
}

#[test]
fn every_bin_rejects_unknown_flags_with_exit_2() {
    for (name, exe) in BINS {
        let out = run(exe, &["--definitely-not-a-flag", "x"]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{name}: unknown flag must exit 2, got {:?}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--definitely-not-a-flag"),
            "{name}: stderr should name the offending flag, got: {stderr}"
        );
        assert!(
            stderr.contains("--scale"),
            "{name}: stderr should list the accepted vocabulary, got: {stderr}"
        );
    }
}

#[test]
fn every_bin_rejects_positional_arguments_with_exit_2() {
    for (name, exe) in BINS {
        let out = run(exe, &["smoke"]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{name}: positional argument must exit 2"
        );
    }
}

#[test]
fn every_bin_rejects_missing_values_with_exit_2() {
    for (name, exe) in BINS {
        let out = run(exe, &["--scale"]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{name}: flag without a value must exit 2"
        );
    }
}

#[test]
fn unknown_scale_name_exits_2() {
    let (_, exe) = BINS[0];
    let out = run(exe, &["--scale", "warp"]);
    assert_eq!(out.status.code(), Some(2), "unknown scale must exit 2");
}

#[test]
fn per_binary_extra_flags_stay_per_binary() {
    // robustness accepts --checkpoint; table1 must not.
    let (_, table1) = BINS[0];
    let out = run(table1, &["--checkpoint", "/tmp/nope"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "table1 must reject robustness-only flags"
    );
}

#[test]
fn fleet_rejects_malformed_shard_and_av_counts_with_exit_2() {
    let exe = env!("CARGO_BIN_EXE_fleet");
    for args in [["--shards", "banana"], ["--avs", "-3"]] {
        let out = run(exe, &args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "fleet {args:?}: malformed value must exit 2\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("malformed value"),
            "fleet {args:?}: stderr should flag the malformed value, got: {stderr}"
        );
    }
}

fn benchdiff_exe() -> &'static str {
    env!("CARGO_BIN_EXE_benchdiff")
}

fn temp_json(tag: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "benchdiff_{tag}_{}_{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, content).expect("write temp json");
    path
}

#[test]
fn benchdiff_exits_0_on_identical_rerun_and_1_on_regression() {
    let base = temp_json(
        "base",
        r#"{"ops":[{"op":"matmul","serial_wall_ms":10.0,"checksums_equal":true}]}"#,
    );
    // Identical candidate: within tolerance, exit 0.
    let out = run(
        benchdiff_exe(),
        &[
            "--base",
            base.to_str().expect("utf8 path"),
            "--cand",
            base.to_str().expect("utf8 path"),
        ],
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "identical re-run must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Synthetic regression: 3x the wall time plus a determinism break.
    let cand = temp_json(
        "cand",
        r#"{"ops":[{"op":"matmul","serial_wall_ms":30.0,"checksums_equal":false}]}"#,
    );
    let out = run(
        benchdiff_exe(),
        &[
            "--base",
            base.to_str().expect("utf8 path"),
            "--cand",
            cand.to_str().expect("utf8 path"),
        ],
    );
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");

    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&cand);
}

#[test]
fn benchdiff_without_a_mode_exits_2() {
    let out = run(benchdiff_exe(), &[]);
    assert_eq!(out.status.code(), Some(2), "no mode selected");
    let out = run(benchdiff_exe(), &["--trend", "/nonexistent/trends.jsonl"]);
    assert_eq!(out.status.code(), Some(2), "--trend without --bin-name");
}
