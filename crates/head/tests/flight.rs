//! End-to-end flight-recorder coverage: a forced `Terminal::Fault`
//! episode must leave a JSONL post-mortem dump containing the events that
//! led up to the fault.

use decision::{Action, LaneBehaviour};
use head::{EnvConfig, HighwayEnv, PerceptionMode, Terminal};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "head_flight_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn forced_fault_episode_dumps_the_flight_ring() {
    let dir = temp_dir("fault");
    let mut rec = telemetry::FlightRecorder::new(64);
    rec.configure_dumps(
        &dir,
        "probe",
        vec![("bin".to_string(), telemetry::Json::from("probe"))],
    );
    // The global slot is shared across the test binary's threads; take
    // whatever a previous test left behind before installing ours.
    let _ = telemetry::flight_take();
    telemetry::flight_install(rec);

    let mut env = HighwayEnv::new(EnvConfig::default(), PerceptionMode::Persistence);
    env.reset();
    // A few healthy steps, then a diverged policy commanding NaN: the env
    // must record the robustness event and end the episode with Fault.
    for _ in 0..3 {
        let result = env.step(Action {
            behaviour: LaneBehaviour::Keep,
            accel: 0.1,
        });
        if result.episode.is_some() {
            break;
        }
    }
    let result = env.step(Action {
        behaviour: LaneBehaviour::Keep,
        accel: f64::NAN,
    });
    let episode = result.episode.expect("non-finite action ends the episode");
    assert_eq!(episode.terminal, Terminal::Fault);

    let rec = telemetry::flight_take().expect("recorder still installed");
    let (written, _) = rec.dump_counts();
    assert_eq!(written, 1, "exactly one dump for the fault");

    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("dump dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    assert_eq!(entries.len(), 1, "one dump file: {entries:?}");
    let name = entries[0]
        .file_name()
        .and_then(|n| n.to_str())
        .expect("name");
    assert!(
        name.starts_with("probe.flight.") && name.ends_with("terminal_fault.jsonl"),
        "dump name carries prefix and reason: {name}"
    );

    let text = std::fs::read_to_string(&entries[0]).expect("read dump");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "header plus at least one event:\n{text}");
    let header = telemetry::Json::parse(lines[0]).expect("header parses");
    assert_eq!(
        header.get("kind").and_then(telemetry::Json::as_str),
        Some("flight_dump")
    );
    assert_eq!(
        header.get("reason").and_then(telemetry::Json::as_str),
        Some("flight.terminal_fault")
    );
    assert_eq!(
        header.get("bin").and_then(telemetry::Json::as_str),
        Some("probe")
    );

    // The ring must hold the lead-up: the robustness event for the NaN
    // action and the terminal-fault marker itself, in order.
    let names: Vec<String> = lines[1..]
        .iter()
        .map(|l| {
            telemetry::Json::parse(l)
                .expect("event parses")
                .get("name")
                .and_then(telemetry::Json::as_str)
                .expect("event has a name")
                .to_string()
        })
        .collect();
    assert!(
        names.iter().any(|n| n == "robustness.nonfinite_action"),
        "lead-up event present: {names:?}"
    );
    assert_eq!(
        names.last().map(String::as_str),
        Some("flight.terminal_fault"),
        "fault marker is the newest event: {names:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
