//! The fleet shard-determinism contract: an N-shard fleet run must be
//! byte-identical (FNV checksum) to the 1-shard serial run — same world,
//! same AVs, same policy, only the stepping schedule differs.

use decision::{AgentConfig, BpDqn};
use head::{Fleet, FleetConfig, PerceptionMode};

fn smoke_run(avs: usize, shards: usize, steps: usize) -> u64 {
    let mut cfg = FleetConfig::bench_scale(avs);
    cfg.env.warmup_steps = 20;
    cfg.env.seed = 7;
    let agent = Box::new(BpDqn::new(AgentConfig::default()));
    let mut fleet = Fleet::new(cfg, agent, PerceptionMode::Persistence);
    fleet.set_shards(shards);
    for _ in 0..steps {
        fleet.step();
    }
    fleet.checksum()
}

#[test]
fn four_shard_eight_av_run_matches_serial() {
    let serial = smoke_run(8, 1, 40);
    let sharded = smoke_run(8, 4, 40);
    assert_eq!(
        sharded, serial,
        "4-shard 8-AV fleet diverged from the 1-shard run"
    );
}

#[test]
fn two_shard_run_matches_serial() {
    assert_eq!(smoke_run(8, 2, 40), smoke_run(8, 1, 40));
}
