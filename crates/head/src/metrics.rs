//! Macroscopic and microscopic effectiveness metrics (paper §V-B).
//!
//! Per-episode collection plus cross-episode aggregation into the seven
//! columns of Tables I–II:
//!
//! * **AvgDT-A** — mean AV transit time over the road.
//! * **AvgDT-C** — mean transit time of conventional vehicles within 100 m
//!   behind the AV. Measured as `road_len / v̄_followers` (expected transit
//!   time at the followers' observed mean speed) — an unbiased proxy that
//!   avoids waiting for followers to finish after the AV's episode ends.
//! * **Avg#-CA** — times per episode the rear vehicle decelerated by more
//!   than 0.5 m/s in one step.
//! * **MinTTC-A** — per-episode minimum time-to-collision, averaged over
//!   episodes in which a TTC was ever defined.
//! * **AvgV-A** — mean AV velocity.
//! * **AvgJ-A** — mean |Δa| between consecutive steps (the paper's jerk
//!   indicator, reported in m/s²).
//! * **AvgD-CA** — mean per-step velocity drop of the rear vehicle.

use serde::{Deserialize, Serialize};

/// How an episode ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminal {
    /// Episode still running.
    None,
    /// The AV crashed or hit a road boundary.
    Collision,
    /// The AV reached the end of the road.
    Destination,
    /// The step cap was reached.
    Timeout,
    /// The episode was aborted by the robustness machinery (non-finite
    /// dynamics, watchdog) instead of crashing the process. Fault episodes
    /// count as neither completed nor collided in aggregation.
    Fault,
}

/// Everything measured about one finished episode.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EpisodeMetrics {
    /// Steps executed.
    pub steps: usize,
    /// How the episode ended.
    pub terminal: Terminal,
    /// AV transit time, s (only meaningful when `terminal == Destination`).
    pub driving_time: f64,
    /// Minimum TTC observed, s (`f64::INFINITY` when never defined).
    pub min_ttc: f64,
    /// Mean AV velocity, m/s.
    pub avg_v: f64,
    /// Mean |Δ accel| between consecutive steps, m/s².
    pub avg_jerk: f64,
    /// Rear-vehicle hard-deceleration events (> 0.5 m/s per step).
    pub impact_events: usize,
    /// Mean per-step rear-vehicle velocity drop, m/s.
    pub avg_rear_decel: f64,
    /// Mean velocity of conventional vehicles within 100 m behind the AV.
    pub follower_mean_vel: f64,
    /// Mean per-step hybrid reward.
    pub mean_reward: f64,
    /// Sum of step rewards.
    pub total_reward: f64,
}

/// Streaming per-episode accumulator.
#[derive(Clone, Debug, Default)]
pub struct MetricsCollector {
    steps: usize,
    vel_sum: f64,
    jerk_sum: f64,
    min_ttc: Option<f64>,
    impact_events: usize,
    rear_decel_sum: f64,
    rear_decel_steps: usize,
    follower_vel_sum: f64,
    follower_vel_steps: usize,
    reward_sum: f64,
}

impl MetricsCollector {
    /// Fresh collector for a new episode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one step of the episode.
    #[allow(clippy::too_many_arguments)]
    pub fn record_step(
        &mut self,
        av_vel: f64,
        jerk: f64,
        ttc: Option<f64>,
        rear_decel: Option<f64>,
        follower_mean_vel: Option<f64>,
        reward: f64,
        impact_threshold: f64,
    ) {
        self.steps += 1;
        self.vel_sum += av_vel;
        self.jerk_sum += jerk.abs();
        if let Some(t) = ttc {
            self.min_ttc = Some(self.min_ttc.map_or(t, |m: f64| m.min(t)));
        }
        if let Some(d) = rear_decel {
            self.rear_decel_steps += 1;
            let drop = d.max(0.0);
            self.rear_decel_sum += drop;
            if drop > impact_threshold {
                self.impact_events += 1;
            }
        }
        if let Some(v) = follower_mean_vel {
            self.follower_vel_steps += 1;
            self.follower_vel_sum += v;
        }
        self.reward_sum += reward;
    }

    /// Steps recorded so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Closes the episode.
    pub fn finish(&self, terminal: Terminal, dt: f64) -> EpisodeMetrics {
        let n = self.steps.max(1) as f64;
        EpisodeMetrics {
            steps: self.steps,
            terminal,
            driving_time: self.steps as f64 * dt,
            min_ttc: self.min_ttc.unwrap_or(f64::INFINITY),
            avg_v: self.vel_sum / n,
            avg_jerk: self.jerk_sum / n,
            impact_events: self.impact_events,
            avg_rear_decel: self.rear_decel_sum / self.rear_decel_steps.max(1) as f64,
            follower_mean_vel: self.follower_vel_sum / self.follower_vel_steps.max(1) as f64,
            mean_reward: self.reward_sum / n,
            total_reward: self.reward_sum,
        }
    }
}

/// The seven Table I/II columns plus reward statistics, aggregated over a
/// set of evaluation episodes.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct AggregateMetrics {
    /// AvgDT-A, s.
    pub avg_dt_a: f64,
    /// AvgDT-C, s.
    pub avg_dt_c: f64,
    /// Avg#-CA.
    pub avg_impact_events: f64,
    /// MinTTC-A, s.
    pub min_ttc_a: f64,
    /// AvgV-A, m/s.
    pub avg_v_a: f64,
    /// AvgJ-A, m/s².
    pub avg_j_a: f64,
    /// AvgD-CA, m/s.
    pub avg_d_ca: f64,
    /// Minimum per-episode mean reward (MinR).
    pub min_r: f64,
    /// Maximum per-episode mean reward (MaxR).
    pub max_r: f64,
    /// Mean per-episode mean reward (AvgR).
    pub avg_r: f64,
    /// Episodes aggregated.
    pub episodes: usize,
    /// Episodes that reached the destination.
    pub completed: usize,
    /// Episodes that ended in a collision.
    pub collisions: usize,
}

/// Aggregates per-episode metrics into a table row.
pub fn aggregate(road_len: f64, episodes: &[EpisodeMetrics]) -> AggregateMetrics {
    if episodes.is_empty() {
        return AggregateMetrics::default();
    }
    let n = episodes.len() as f64;
    let completed: Vec<&EpisodeMetrics> = episodes
        .iter()
        .filter(|e| e.terminal == Terminal::Destination)
        .collect();
    let avg_dt_a = if completed.is_empty() {
        // Fall back to expected transit time at observed mean speed.
        road_len / (episodes.iter().map(|e| e.avg_v).sum::<f64>() / n).max(0.1)
    } else {
        completed.iter().map(|e| e.driving_time).sum::<f64>() / completed.len() as f64
    };
    let follower_v = episodes.iter().map(|e| e.follower_mean_vel).sum::<f64>() / n;
    let finite_ttcs: Vec<f64> = episodes
        .iter()
        .map(|e| e.min_ttc)
        .filter(|t| t.is_finite())
        .collect();
    let min_ttc_a = if finite_ttcs.is_empty() {
        f64::INFINITY
    } else {
        finite_ttcs.iter().sum::<f64>() / finite_ttcs.len() as f64
    };
    let rewards: Vec<f64> = episodes.iter().map(|e| e.mean_reward).collect();
    AggregateMetrics {
        avg_dt_a,
        avg_dt_c: road_len / follower_v.max(0.1),
        avg_impact_events: episodes.iter().map(|e| e.impact_events as f64).sum::<f64>() / n,
        min_ttc_a,
        avg_v_a: episodes.iter().map(|e| e.avg_v).sum::<f64>() / n,
        avg_j_a: episodes.iter().map(|e| e.avg_jerk).sum::<f64>() / n,
        avg_d_ca: episodes.iter().map(|e| e.avg_rear_decel).sum::<f64>() / n,
        min_r: rewards.iter().cloned().fold(f64::INFINITY, f64::min),
        max_r: rewards.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        avg_r: rewards.iter().sum::<f64>() / n,
        episodes: episodes.len(),
        completed: completed.len(),
        collisions: episodes
            .iter()
            .filter(|e| e.terminal == Terminal::Collision)
            .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_demo() -> MetricsCollector {
        let mut c = MetricsCollector::new();
        // Step 1: fast, smooth, safe.
        c.record_step(20.0, 0.0, None, Some(0.0), Some(18.0), 0.8, 0.5);
        // Step 2: TTC event + rear braking event.
        c.record_step(22.0, 1.0, Some(3.0), Some(0.8), Some(17.0), 0.2, 0.5);
        // Step 3: milder.
        c.record_step(21.0, 0.5, Some(5.0), Some(0.3), Some(17.5), 0.5, 0.5);
        c
    }

    #[test]
    fn per_episode_metrics() {
        let m = collect_demo().finish(Terminal::Destination, 0.5);
        assert_eq!(m.steps, 3);
        assert!((m.driving_time - 1.5).abs() < 1e-12);
        assert!((m.avg_v - 21.0).abs() < 1e-12);
        assert!((m.min_ttc - 3.0).abs() < 1e-12);
        assert_eq!(m.impact_events, 1);
        assert!((m.avg_jerk - 0.5).abs() < 1e-12);
        assert!((m.avg_rear_decel - (0.0 + 0.8 + 0.3) / 3.0).abs() < 1e-12);
        assert!((m.mean_reward - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_ttc_yields_infinity() {
        let mut c = MetricsCollector::new();
        c.record_step(20.0, 0.0, None, None, None, 0.0, 0.5);
        let m = c.finish(Terminal::Timeout, 0.5);
        assert!(m.min_ttc.is_infinite());
        assert_eq!(m.avg_rear_decel, 0.0);
    }

    #[test]
    fn aggregation_produces_table_row() {
        let e1 = collect_demo().finish(Terminal::Destination, 0.5);
        let mut c2 = MetricsCollector::new();
        c2.record_step(15.0, 2.0, Some(2.0), Some(1.2), Some(15.0), -0.5, 0.5);
        let e2 = c2.finish(Terminal::Destination, 0.5);
        let agg = aggregate(300.0, &[e1, e2]);
        assert_eq!(agg.episodes, 2);
        assert_eq!(agg.completed, 2);
        assert!((agg.avg_dt_a - (1.5 + 0.5) / 2.0).abs() < 1e-12);
        assert!((agg.min_ttc_a - 2.5).abs() < 1e-12);
        assert!((agg.avg_impact_events - 1.0).abs() < 1e-12);
        assert!(agg.min_r <= agg.avg_r && agg.avg_r <= agg.max_r);
        // Follower transit proxy: road / mean follower speed.
        let follower_v = (e1.follower_mean_vel + e2.follower_mean_vel) / 2.0;
        assert!((agg.avg_dt_c - 300.0 / follower_v).abs() < 1e-9);
    }

    #[test]
    fn aggregation_matches_hand_computed_two_episode_fixture() {
        // Explicit EpisodeMetrics (no collector involved) so every expected
        // value below is checkable by hand from the struct literals.
        let e1 = EpisodeMetrics {
            steps: 100,
            terminal: Terminal::Destination,
            driving_time: 50.0,
            min_ttc: 4.0,
            avg_v: 20.0,
            avg_jerk: 0.4,
            impact_events: 2,
            avg_rear_decel: 0.10,
            follower_mean_vel: 16.0,
            mean_reward: 0.6,
            total_reward: 60.0,
        };
        let e2 = EpisodeMetrics {
            steps: 80,
            terminal: Terminal::Collision,
            driving_time: 40.0,
            min_ttc: f64::INFINITY, // no TTC ever defined this episode
            avg_v: 10.0,
            avg_jerk: 0.8,
            impact_events: 4,
            avg_rear_decel: 0.30,
            follower_mean_vel: 14.0,
            mean_reward: -0.2,
            total_reward: -16.0,
        };
        let agg = aggregate(400.0, &[e1, e2]);
        // AvgDT-A: only the completed episode counts -> 50.0.
        assert!((agg.avg_dt_a - 50.0).abs() < 1e-12);
        // AvgDT-C: road / mean follower speed = 400 / 15.
        assert!((agg.avg_dt_c - 400.0 / 15.0).abs() < 1e-12);
        // Avg#-CA: (2 + 4) / 2.
        assert!((agg.avg_impact_events - 3.0).abs() < 1e-12);
        // MinTTC-A: averaged over episodes with a defined TTC -> 4.0.
        assert!((agg.min_ttc_a - 4.0).abs() < 1e-12);
        // AvgV-A: (20 + 10) / 2; AvgJ-A: (0.4 + 0.8) / 2; AvgD-CA mirrors.
        assert!((agg.avg_v_a - 15.0).abs() < 1e-12);
        assert!((agg.avg_j_a - 0.6).abs() < 1e-12);
        assert!((agg.avg_d_ca - 0.2).abs() < 1e-12);
        // Reward stats over mean_reward = {0.6, -0.2}.
        assert!((agg.min_r - -0.2).abs() < 1e-12);
        assert!((agg.max_r - 0.6).abs() < 1e-12);
        assert!((agg.avg_r - 0.2).abs() < 1e-12);
        assert_eq!((agg.episodes, agg.completed, agg.collisions), (2, 1, 1));
    }

    #[test]
    fn fault_episodes_count_as_neither_completed_nor_collided() {
        let mut c = MetricsCollector::new();
        c.record_step(12.0, 0.1, None, None, None, 0.2, 0.5);
        let e = c.finish(Terminal::Fault, 0.5);
        let agg = aggregate(300.0, &[e]);
        assert_eq!((agg.episodes, agg.completed, agg.collisions), (1, 0, 0));
    }

    #[test]
    fn empty_aggregate_is_default() {
        let agg = aggregate(300.0, &[]);
        assert_eq!(agg.episodes, 0);
    }
}
