//! Crash-safe training checkpoints.
//!
//! A [`Checkpoint`] captures everything a training run needs to continue
//! after being killed: the agent's weights, the per-episode metrics so far,
//! the exploration-schedule position and the fault injector's generator
//! state. Saves are atomic (write to a temporary file, then rename), so a
//! crash mid-write leaves the previous checkpoint intact rather than a
//! truncated file. Each save also rotates the prior file to
//! [`CHECKPOINT_PREV_FILE`], and [`Checkpoint::load_resilient`] falls back
//! to that generation when the current file is truncated or corrupt.
//!
//! Serialisation goes through [`telemetry::Json`] — dependency-free and
//! byte-stable offline. `u64` generator states are stored as decimal
//! strings because JSON numbers are `f64` and would lose low bits.

use crate::metrics::{EpisodeMetrics, Terminal};
use sensor::InjectorState;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use telemetry::Json;

/// File name of the checkpoint inside its directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";

/// File name of the previous good checkpoint, rotated on every save so a
/// corrupted current file still leaves one resumable generation behind.
pub const CHECKPOINT_PREV_FILE: &str = "checkpoint.prev.json";

/// Why a checkpoint failed to load or save.
#[derive(Debug)]
pub enum CheckpointError {
    /// The filesystem failed (permissions, disk full, ...).
    Io(io::Error),
    /// The file exists but its content is truncated or not a checkpoint.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What the parser rejected.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "corrupt checkpoint {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CheckpointError> for io::Error {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(e) => e,
            corrupt => io::Error::new(io::ErrorKind::InvalidData, corrupt.to_string()),
        }
    }
}

/// Which file a resilient load actually resumed from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointSource {
    /// `checkpoint.json` was intact.
    Current,
    /// `checkpoint.json` was missing or corrupt; `checkpoint.prev.json`
    /// supplied the state.
    Previous,
}

impl CheckpointSource {
    /// Stable lowercase name for telemetry/log payloads.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckpointSource::Current => "current",
            CheckpointSource::Previous => "previous",
        }
    }
}

/// A resumable snapshot of a training run.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Environment episode index after the last completed episode.
    pub episode: u64,
    /// Metrics of every completed episode, in order.
    pub episodes: Vec<EpisodeMetrics>,
    /// Agent weights (`PamdpAgent::save_json`), when the agent has any.
    pub agent_json: Option<String>,
    /// Exploration-schedule position (`PamdpAgent::exploration_steps`).
    pub exploration_steps: u64,
    /// Fault injector generator state, when fault injection is active.
    pub injector: Option<InjectorState>,
}

fn terminal_name(t: Terminal) -> &'static str {
    match t {
        Terminal::None => "None",
        Terminal::Collision => "Collision",
        Terminal::Destination => "Destination",
        Terminal::Timeout => "Timeout",
        Terminal::Fault => "Fault",
    }
}

fn terminal_from_name(name: &str) -> Option<Terminal> {
    Some(match name {
        "None" => Terminal::None,
        "Collision" => Terminal::Collision,
        "Destination" => Terminal::Destination,
        "Timeout" => Terminal::Timeout,
        "Fault" => Terminal::Fault,
        _ => return None,
    })
}

fn metrics_to_json(m: &EpisodeMetrics) -> Json {
    Json::obj(vec![
        ("steps", Json::from(m.steps)),
        ("terminal", Json::from(terminal_name(m.terminal))),
        ("driving_time", Json::from(m.driving_time)),
        ("min_ttc", Json::from(m.min_ttc)),
        ("avg_v", Json::from(m.avg_v)),
        ("avg_jerk", Json::from(m.avg_jerk)),
        ("impact_events", Json::from(m.impact_events)),
        ("avg_rear_decel", Json::from(m.avg_rear_decel)),
        ("follower_mean_vel", Json::from(m.follower_mean_vel)),
        ("mean_reward", Json::from(m.mean_reward)),
        ("total_reward", Json::from(m.total_reward)),
    ])
}

fn num(v: &Json, key: &str) -> Option<f64> {
    v.get(key)?.as_f64()
}

fn metrics_from_json(v: &Json) -> Option<EpisodeMetrics> {
    Some(EpisodeMetrics {
        steps: num(v, "steps")? as usize,
        terminal: terminal_from_name(v.get("terminal")?.as_str()?)?,
        driving_time: num(v, "driving_time")?,
        // Non-finite numbers serialise as `null`; the only non-finite
        // metric is a never-defined TTC, so `null` round-trips to +inf.
        min_ttc: num(v, "min_ttc").unwrap_or(f64::INFINITY),
        avg_v: num(v, "avg_v")?,
        avg_jerk: num(v, "avg_jerk")?,
        impact_events: num(v, "impact_events")? as usize,
        avg_rear_decel: num(v, "avg_rear_decel")?,
        follower_mean_vel: num(v, "follower_mean_vel")?,
        mean_reward: num(v, "mean_reward")?,
        total_reward: num(v, "total_reward")?,
    })
}

fn u64_str(v: u64) -> Json {
    Json::Str(v.to_string())
}

fn u64_from(v: &Json, key: &str) -> Option<u64> {
    v.get(key)?.as_str()?.parse().ok()
}

fn injector_to_json(s: &InjectorState) -> Json {
    Json::obj(vec![
        ("rng_state", u64_str(s.rng_state)),
        ("noise_left", Json::from(u64::from(s.noise_left))),
        ("blackout_left", Json::from(u64::from(s.blackout_left))),
        ("frames_seen", u64_str(s.frames_seen)),
    ])
}

fn injector_from_json(v: &Json) -> Option<InjectorState> {
    Some(InjectorState {
        rng_state: u64_from(v, "rng_state")?,
        noise_left: num(v, "noise_left")? as u32,
        blackout_left: num(v, "blackout_left")? as u32,
        frames_seen: u64_from(v, "frames_seen")?,
    })
}

impl Checkpoint {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("version", Json::from(1u64)),
            ("episode", u64_str(self.episode)),
            ("exploration_steps", u64_str(self.exploration_steps)),
            (
                "episodes",
                Json::Arr(self.episodes.iter().map(metrics_to_json).collect()),
            ),
        ];
        if let Some(json) = &self.agent_json {
            pairs.push(("agent_json", Json::from(json.clone())));
        }
        if let Some(state) = &self.injector {
            pairs.push(("injector", injector_to_json(state)));
        }
        Json::obj(pairs)
    }

    fn from_json(v: &Json) -> Option<Checkpoint> {
        let episodes = match v.get("episodes")? {
            Json::Arr(items) => items
                .iter()
                .map(metrics_from_json)
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(Checkpoint {
            episode: u64_from(v, "episode")?,
            episodes,
            agent_json: v
                .get("agent_json")
                .and_then(|j| j.as_str())
                .map(String::from),
            exploration_steps: u64_from(v, "exploration_steps")?,
            injector: v.get("injector").and_then(injector_from_json),
        })
    }

    /// Atomically writes the checkpoint into `dir` (created if missing):
    /// the content lands in a temporary file first and is renamed over
    /// `checkpoint.json`, so readers never observe a partial write. The
    /// prior `checkpoint.json`, if any, is rotated to
    /// `checkpoint.prev.json` first — a crash at any point leaves at least
    /// one intact generation on disk.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
        let finality = dir.join(CHECKPOINT_FILE);
        fs::write(&tmp, self.to_json().to_string())?;
        match fs::rename(&finality, dir.join(CHECKPOINT_PREV_FILE)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        fs::rename(&tmp, &finality)
    }

    /// Parses one checkpoint file. Missing is `Ok(None)`; present but
    /// unparsable is [`CheckpointError::Corrupt`].
    fn load_file(path: &Path) -> Result<Option<Checkpoint>, CheckpointError> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CheckpointError::Io(e)),
        };
        let corrupt = |detail: String| CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        let value = Json::parse(&text).map_err(corrupt)?;
        Checkpoint::from_json(&value)
            .map(Some)
            .ok_or_else(|| corrupt("well-formed JSON but not a checkpoint".to_string()))
    }

    /// Loads the current checkpoint from `dir`. A missing file is
    /// `Ok(None)` (a fresh run); a present-but-corrupt file is an error.
    /// Resume paths that should survive corruption want
    /// [`Checkpoint::load_resilient`] instead.
    pub fn load(dir: &Path) -> Result<Option<Checkpoint>, CheckpointError> {
        Self::load_file(&dir.join(CHECKPOINT_FILE))
    }

    /// Loads the newest intact checkpoint from `dir`: the current file if
    /// it parses, otherwise the rotated previous generation. Reports which
    /// file supplied the state. Only fails when the current file is
    /// corrupt (or unreadable) **and** no previous good generation exists
    /// to fall back to.
    pub fn load_resilient(
        dir: &Path,
    ) -> Result<Option<(Checkpoint, CheckpointSource)>, CheckpointError> {
        let current_err = match Self::load_file(&dir.join(CHECKPOINT_FILE)) {
            Ok(Some(ckpt)) => return Ok(Some((ckpt, CheckpointSource::Current))),
            Ok(None) => None,
            Err(e) => Some(e),
        };
        match (
            Self::load_file(&dir.join(CHECKPOINT_PREV_FILE)),
            current_err,
        ) {
            (Ok(Some(ckpt)), _) => Ok(Some((ckpt, CheckpointSource::Previous))),
            (Ok(None), None) => Ok(None),
            (Ok(None) | Err(_), Some(e)) => Err(e),
            (Err(e), None) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_metrics(terminal: Terminal) -> EpisodeMetrics {
        EpisodeMetrics {
            steps: 42,
            terminal,
            driving_time: 21.0,
            min_ttc: f64::INFINITY,
            avg_v: 17.5,
            avg_jerk: 0.3,
            impact_events: 1,
            avg_rear_decel: 0.05,
            follower_mean_vel: 16.0,
            mean_reward: 0.4,
            total_reward: 16.8,
        }
    }

    fn demo_checkpoint() -> Checkpoint {
        Checkpoint {
            episode: 7,
            episodes: vec![
                demo_metrics(Terminal::Destination),
                demo_metrics(Terminal::Fault),
            ],
            agent_json: Some("{\"weights\":[1,2,3]}".to_string()),
            exploration_steps: u64::MAX - 3,
            injector: Some(InjectorState {
                rng_state: u64::MAX - 1,
                noise_left: 2,
                blackout_left: 0,
                frames_seen: 999,
            }),
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("head-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips_every_field() {
        let dir = temp_dir("roundtrip");
        let ckpt = demo_checkpoint();
        ckpt.save(&dir).expect("save");
        let back = Checkpoint::load(&dir).expect("load").expect("present");
        assert_eq!(back.episode, ckpt.episode);
        assert_eq!(back.exploration_steps, ckpt.exploration_steps);
        assert_eq!(back.agent_json, ckpt.agent_json);
        assert_eq!(back.injector, ckpt.injector, "u64 state survives exactly");
        assert_eq!(back.episodes.len(), 2);
        assert_eq!(back.episodes[0].terminal, Terminal::Destination);
        assert_eq!(back.episodes[1].terminal, Terminal::Fault);
        assert!(
            back.episodes[0].min_ttc.is_infinite(),
            "null round-trips to +inf"
        );
        assert_eq!(back.episodes[0].steps, 42);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_none_not_error() {
        let dir = temp_dir("missing");
        assert!(Checkpoint::load(&dir).expect("missing is ok").is_none());
    }

    #[test]
    fn corrupt_checkpoint_is_an_error() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join(CHECKPOINT_FILE), "{not json").expect("write");
        assert!(Checkpoint::load(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_leaves_no_temporary_file() {
        let dir = temp_dir("tmpfile");
        demo_checkpoint().save(&dir).expect("save");
        assert!(dir.join(CHECKPOINT_FILE).exists());
        assert!(!dir.join(format!("{CHECKPOINT_FILE}.tmp")).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_rotates_previous_generation() {
        let dir = temp_dir("rotate");
        let mut ckpt = demo_checkpoint();
        ckpt.save(&dir).expect("first save");
        assert!(
            !dir.join(CHECKPOINT_PREV_FILE).exists(),
            "nothing to rotate on the first save"
        );
        ckpt.episode = 8;
        ckpt.save(&dir).expect("second save");
        let (back, source) = Checkpoint::load_resilient(&dir)
            .expect("load")
            .expect("present");
        assert_eq!((back.episode, source), (8, CheckpointSource::Current));
        let prev = Checkpoint::load_file(&dir.join(CHECKPOINT_PREV_FILE))
            .expect("prev parses")
            .expect("prev present");
        assert_eq!(prev.episode, 7, "prev holds the older generation");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resilient_load_falls_back_to_previous_on_corruption() {
        let dir = temp_dir("fallback");
        demo_checkpoint().save(&dir).expect("save");
        demo_checkpoint().save(&dir).expect("save again");
        fs::write(dir.join(CHECKPOINT_FILE), "{\"episode\": trunca").expect("corrupt");
        assert!(matches!(
            Checkpoint::load(&dir),
            Err(CheckpointError::Corrupt { .. })
        ));
        let (back, source) = Checkpoint::load_resilient(&dir)
            .expect("fallback")
            .expect("present");
        assert_eq!(source, CheckpointSource::Previous);
        assert_eq!(back.episode, 7);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resilient_load_survives_missing_current_with_intact_previous() {
        // A crash between save()'s two renames leaves only the rotated file.
        let dir = temp_dir("midrotate");
        demo_checkpoint().save(&dir).expect("save");
        fs::rename(dir.join(CHECKPOINT_FILE), dir.join(CHECKPOINT_PREV_FILE)).expect("rotate");
        let (back, source) = Checkpoint::load_resilient(&dir)
            .expect("fallback")
            .expect("present");
        assert_eq!((back.episode, source), (7, CheckpointSource::Previous));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resilient_load_errors_when_no_generation_is_intact() {
        let dir = temp_dir("allbad");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join(CHECKPOINT_FILE), "garbage").expect("write");
        let err = Checkpoint::load_resilient(&dir).expect_err("no fallback");
        assert!(
            err.to_string().contains(CHECKPOINT_FILE),
            "error names the offending file: {err}"
        );
        assert!(Checkpoint::load_resilient(&temp_dir("empty"))
            .expect("empty dir is a fresh run")
            .is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
