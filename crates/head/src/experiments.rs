//! Experiment drivers: one function per table of the paper's evaluation
//! (§V). Each returns a serialisable report whose `Display` prints the
//! same rows the paper reports; the `bench` crate's binaries call these.
//!
//! All drivers take a [`Scale`] so the same code runs at smoke scale (unit
//! tests), bench scale (the recorded laptop run in EXPERIMENTS.md) and
//! paper scale (3 km road, 4 000 training episodes).

use crate::agents::{
    AccLc, DrivingAgent, DrlSc, IdmLc, PolicyAgent, RuleConfig, SafetyCheck, TpBts, TpBtsConfig,
};
use crate::config::EnvConfig;
use crate::env::{HighwayEnv, PerceptionMode};
use crate::metrics::{aggregate, AggregateMetrics, EpisodeMetrics};
use crate::train::{evaluate_agent_par, train_agent};
use crate::variants::{build_agent, Variant};
use dataset::{CorpusConfig, RealCorpus};
use decision::{AgentConfig, BpDqn, DiscreteDqn, PDdpg, PDqn, PQp, RewardConfig};
use perception::{
    evaluate as evaluate_predictor, mean_inference_ms, train as train_predictor, EdLstm,
    EdLstmConfig, GasLed, GasLedConfig, LstGat, LstGatConfig, LstmMlp, LstmMlpConfig, Normalizer,
    StatePredictor, TrainOptions,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use telemetry::keys;

/// Experiment sizing.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Environment settings.
    pub env: EnvConfig,
    /// Learner hyper-parameters.
    pub agent: AgentConfig,
    /// Training episodes for learning agents.
    pub train_episodes: usize,
    /// Evaluation episodes (paper: 500).
    pub eval_episodes: usize,
    /// Seed base for paired evaluation episodes.
    pub eval_seed_base: u64,
    /// Synthetic-REAL corpus settings.
    pub corpus: CorpusConfig,
    /// Predictor training passes (paper: 15).
    pub predictor_epochs: usize,
    /// Predictor mini-batch size (paper: 64).
    pub predictor_batch: usize,
    /// Repetitions when measuring inference latency.
    pub inference_reps: usize,
    /// IDM-LC demonstration episodes used to seed each learner's replay
    /// buffer before training (see `seed_with_demonstrations`).
    pub demo_episodes: usize,
}

impl Scale {
    /// Tiny sizing for unit tests (seconds, not minutes).
    pub fn smoke() -> Self {
        Self {
            env: EnvConfig::test_scale(),
            agent: AgentConfig {
                warmup: 64,
                batch_size: 32,
                update_every: 4,
                epsilon: decision::LinearSchedule::new(1.0, 0.1, 400),
                noise: decision::LinearSchedule::new(1.0, 0.2, 400),
                ..AgentConfig::default()
            },
            train_episodes: 10,
            eval_episodes: 3,
            eval_seed_base: 1_000_000,
            corpus: CorpusConfig {
                windows: 10,
                egos_per_window: 3,
                warmup_steps: 40,
                ..CorpusConfig::default()
            },
            predictor_epochs: 2,
            predictor_batch: 32,
            inference_reps: 1,
            demo_episodes: 2,
        }
    }

    /// Laptop-scale sizing used for the recorded run in EXPERIMENTS.md.
    pub fn bench() -> Self {
        Self {
            env: EnvConfig::bench_scale(),
            agent: AgentConfig {
                warmup: 1_000,
                batch_size: 64,
                update_every: 2,
                epsilon: decision::LinearSchedule::new(0.8, 0.03, 25_000),
                noise: decision::LinearSchedule::new(1.0, 0.1, 25_000),
                ..AgentConfig::default()
            },
            train_episodes: 1_600,
            eval_episodes: 40,
            eval_seed_base: 1_000_000,
            corpus: CorpusConfig {
                windows: 150,
                egos_per_window: 4,
                ..CorpusConfig::default()
            },
            predictor_epochs: 8,
            predictor_batch: 64,
            inference_reps: 3,
            demo_episodes: 60,
        }
    }

    /// The paper's full sizing (4 000 training / 500 test episodes on the
    /// 3 km road). Expect hours of wall-clock on a laptop CPU.
    pub fn paper() -> Self {
        Self {
            env: EnvConfig::paper_scale(),
            agent: AgentConfig::default(),
            train_episodes: 4_000,
            eval_episodes: 500,
            eval_seed_base: 1_000_000,
            corpus: CorpusConfig {
                windows: 1_000,
                egos_per_window: 4,
                ..CorpusConfig::default()
            },
            predictor_epochs: 15,
            predictor_batch: 64,
            inference_reps: 5,
            demo_episodes: 100,
        }
    }

    /// The normaliser matching this scale's geometry.
    pub fn normalizer(&self) -> Normalizer {
        Normalizer::new(
            self.env.sim.lanes,
            self.env.sim.lane_width,
            self.env.sensor.range,
            self.env.sim.v_max,
            self.env.sim.road_len,
        )
    }
}

/// Emits a training-phase-transition event to the run's JSONL sink (a
/// no-op when no recorder is installed).
fn phase(table: &str, name: &str) {
    telemetry::emit_event(
        keys::EVENT_PHASE,
        vec![
            ("table", telemetry::Json::from(table)),
            ("name", telemetry::Json::from(name)),
        ],
    );
}

/// Trains LST-GAT on the synthetic REAL corpus; returns the weight
/// checkpoint, the corpus and the training report.
pub fn train_lstgat(scale: &Scale) -> (String, RealCorpus, perception::TrainReport) {
    let _span = telemetry::span!(keys::SPAN_HEAD_TRAIN_LSTGAT);
    let corpus = RealCorpus::generate(&scale.corpus);
    let mut model = LstGat::new(LstGatConfig::default(), scale.normalizer());
    let report = train_predictor(
        &mut model,
        &corpus.train,
        &TrainOptions {
            epochs: scale.predictor_epochs,
            batch_size: scale.predictor_batch,
            ..TrainOptions::default()
        },
    );
    (model.weights_json(), corpus, report)
}

/// Seeds a learner's replay buffer with IDM-LC demonstrations.
fn seed_demos(scale: &Scale, env: &mut HighwayEnv, student: &mut dyn DrivingAgent) {
    if scale.demo_episodes > 0 {
        let mut teacher = IdmLc::new(RuleConfig::default());
        crate::train::seed_with_demonstrations(env, &mut teacher, student, scale.demo_episodes);
    }
}

fn lstgat_env(scale: &Scale, weights: &str) -> HighwayEnv {
    let mut model = LstGat::new(LstGatConfig::default(), scale.normalizer());
    // lint:allow(panic) weights come from a checkpoint this process just wrote
    model.load_weights_json(weights).expect("own checkpoint");
    HighwayEnv::new(scale.env.clone(), PerceptionMode::LstGat(Box::new(model)))
}

/// Runs the paired evaluation episodes through the process-wide worker
/// pool ([`evaluate_agent_par`]); single-threaded configurations take the
/// serial path inside. The factory rebuilds the environment and (snapshot-
/// restored) agent inside each worker thread.
fn eval_factory<F>(scale: &Scale, factory: F) -> Vec<EpisodeMetrics>
where
    F: Fn() -> (HighwayEnv, Box<dyn DrivingAgent>) + Sync,
{
    evaluate_agent_par(
        &factory,
        scale.eval_episodes,
        scale.eval_seed_base,
        &par::pool(),
    )
}

/// Restores a trained agent snapshot into a freshly built agent.
fn restore(agent: &mut dyn DrivingAgent, snapshot: &Option<String>) {
    if let Some(json) = snapshot {
        // lint:allow(panic) the snapshot was produced by save_state in this run
        agent.load_state(json).expect("own snapshot");
    }
}

/// A Table I / Table II style report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EndToEndReport {
    /// Table title.
    pub title: String,
    /// `(method, metrics)` rows.
    pub rows: Vec<(String, AggregateMetrics)>,
}

impl fmt::Display for EndToEndReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        writeln!(
            f,
            "{:<18} {:>9} {:>9} {:>8} {:>10} {:>9} {:>9} {:>9}",
            "Method", "AvgDT-A", "AvgDT-C", "Avg#-CA", "MinTTC-A", "AvgV-A", "AvgJ-A", "AvgD-CA"
        )?;
        for (name, m) in &self.rows {
            writeln!(
                f,
                "{:<18} {:>9.1} {:>9.1} {:>8.1} {:>10.2} {:>9.2} {:>9.2} {:>9.2}",
                name,
                m.avg_dt_a,
                m.avg_dt_c,
                m.avg_impact_events,
                m.min_ttc_a,
                m.avg_v_a,
                m.avg_j_a,
                m.avg_d_ca
            )?;
        }
        Ok(())
    }
}

/// **Table I** — end-to-end comparison of IDM-LC, ACC-LC, DRL-SC, TP-BTS
/// and HEAD.
pub fn run_table1(scale: &Scale) -> EndToEndReport {
    phase("table1", "train_lstgat");
    let (weights, _, _) = train_lstgat(scale);
    let mut rows = Vec::new();

    // Rule-based baselines need no training.
    {
        phase("table1", "rule_baselines");
        let eps = eval_factory(scale, || {
            (
                HighwayEnv::new(scale.env.clone(), PerceptionMode::Persistence),
                Box::new(IdmLc::new(RuleConfig::default())) as Box<dyn DrivingAgent>,
            )
        });
        let name = IdmLc::new(RuleConfig::default()).name();
        rows.push((name, aggregate(scale.env.sim.road_len, &eps)));
        let eps = eval_factory(scale, || {
            (
                HighwayEnv::new(scale.env.clone(), PerceptionMode::Persistence),
                Box::new(AccLc::new(RuleConfig::default())) as Box<dyn DrivingAgent>,
            )
        });
        let name = AccLc::new(RuleConfig::default()).name();
        rows.push((name, aggregate(scale.env.sim.road_len, &eps)));
    }

    // DRL-SC: discrete DQN + safety check, no prediction.
    {
        phase("table1", "drl_sc");
        let mut env = HighwayEnv::new(scale.env.clone(), PerceptionMode::Persistence);
        let mut agent = DrlSc::new(DiscreteDqn::new(scale.agent), SafetyCheck::default());
        seed_demos(scale, &mut env, &mut agent);
        train_agent(&mut env, &mut agent, scale.train_episodes);
        let snapshot = agent.save_state();
        let eps = eval_factory(scale, || {
            let mut fresh = DrlSc::new(DiscreteDqn::new(scale.agent), SafetyCheck::default());
            restore(&mut fresh, &snapshot);
            (
                HighwayEnv::new(scale.env.clone(), PerceptionMode::Persistence),
                Box::new(fresh) as Box<dyn DrivingAgent>,
            )
        });
        rows.push((agent.name(), aggregate(scale.env.sim.road_len, &eps)));
    }

    // TP-BTS: prediction + search, no training.
    {
        phase("table1", "tp_bts");
        let make_agent = || {
            TpBts::new(
                TpBtsConfig {
                    dt: scale.env.sim.dt,
                    v_max: scale.env.sim.v_max,
                    ..TpBtsConfig::default()
                },
                scale.env.sim.lane_width,
            )
        };
        let eps = eval_factory(scale, || {
            (
                lstgat_env(scale, &weights),
                Box::new(make_agent()) as Box<dyn DrivingAgent>,
            )
        });
        rows.push((make_agent().name(), aggregate(scale.env.sim.road_len, &eps)));
    }

    // HEAD: full framework.
    {
        phase("table1", "head");
        let mut env = lstgat_env(scale, &weights);
        let mut agent = PolicyAgent::new("HEAD", Box::new(BpDqn::new(scale.agent)));
        seed_demos(scale, &mut env, &mut agent);
        train_agent(&mut env, &mut agent, scale.train_episodes);
        let snapshot = agent.save_state();
        let eps = eval_factory(scale, || {
            let mut fresh = PolicyAgent::new("HEAD", Box::new(BpDqn::new(scale.agent)));
            restore(&mut fresh, &snapshot);
            (
                lstgat_env(scale, &weights),
                Box::new(fresh) as Box<dyn DrivingAgent>,
            )
        });
        rows.push((agent.name(), aggregate(scale.env.sim.road_len, &eps)));
    }

    EndToEndReport {
        title: "Table I: end-to-end performance".into(),
        rows,
    }
}

/// **Table II** — ablation study over the HEAD variants.
pub fn run_table2(scale: &Scale) -> EndToEndReport {
    phase("table2", "train_lstgat");
    let (weights, _, _) = train_lstgat(scale);
    let norm = scale.normalizer();
    let mut rows = Vec::new();
    for variant in Variant::ALL {
        let (mut env, mut agent) =
            build_agent(variant, &scale.env, &scale.agent, Some(&weights), norm);
        phase("table2", &agent.name());
        seed_demos(scale, &mut env, &mut agent);
        train_agent(&mut env, &mut agent, scale.train_episodes);
        let snapshot = agent.save_state();
        let eps = eval_factory(scale, || {
            let (env, mut fresh) =
                build_agent(variant, &scale.env, &scale.agent, Some(&weights), norm);
            restore(&mut fresh, &snapshot);
            (env, Box::new(fresh) as Box<dyn DrivingAgent>)
        });
        rows.push((agent.name(), aggregate(scale.env.sim.road_len, &eps)));
    }
    EndToEndReport {
        title: "Table II: ablation study".into(),
        rows,
    }
}

/// One row of the prediction break-down (Tables III + IV merged).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PredictorRow {
    /// Model name.
    pub name: String,
    /// Mean absolute error (normalised units).
    pub mae: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Training convergence time, s.
    pub tct_secs: f64,
    /// Mean inference latency, ms.
    pub avg_it_ms: f64,
}

/// The prediction break-down report (Tables III & IV).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PredictionReport {
    /// One row per model.
    pub rows: Vec<PredictorRow>,
}

impl fmt::Display for PredictionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Tables III & IV: state prediction on REAL ==")?;
        writeln!(
            f,
            "{:<10} {:>8} {:>8} {:>8} {:>9} {:>10}",
            "Model", "MAE", "MSE", "RMSE", "TCT(s)", "AvgIT(ms)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>8.3} {:>8.4} {:>8.3} {:>9.2} {:>10.3}",
                r.name, r.mae, r.mse, r.rmse, r.tct_secs, r.avg_it_ms
            )?;
        }
        Ok(())
    }
}

/// **Tables III & IV** — accuracy and efficiency of the four predictors.
pub fn run_tables_3_4(scale: &Scale) -> PredictionReport {
    phase("table3_4", "generate_corpus");
    let corpus = RealCorpus::generate(&scale.corpus);
    let norm = scale.normalizer();
    let opts = TrainOptions {
        epochs: scale.predictor_epochs,
        batch_size: scale.predictor_batch,
        ..TrainOptions::default()
    };
    let mut rows = Vec::new();
    let mut models: Vec<Box<dyn StatePredictor>> = vec![
        Box::new(LstmMlp::new(LstmMlpConfig::default(), norm)),
        Box::new(EdLstm::new(EdLstmConfig::default(), norm)),
        Box::new(GasLed::new(GasLedConfig::default(), norm)),
        Box::new(LstGat::new(LstGatConfig::default(), norm)),
    ];
    for model in models.iter_mut() {
        phase("table3_4", model.name());
        let report = train_predictor(model.as_mut(), &corpus.train, &opts);
        let acc = evaluate_predictor(model.as_ref(), &corpus.test, &norm);
        let latency = mean_inference_ms(
            model.as_ref(),
            &corpus.test[..corpus.test.len().min(32)],
            scale.inference_reps,
        );
        rows.push(PredictorRow {
            name: model.name().to_string(),
            mae: acc.mae,
            mse: acc.mse,
            rmse: acc.rmse,
            tct_secs: report.convergence_secs,
            avg_it_ms: latency,
        });
    }
    PredictionReport { rows }
}

/// One row of the decision break-down (Tables V + VI merged).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LearnerRow {
    /// Learner name.
    pub name: String,
    /// Minimum per-episode mean reward over evaluation.
    pub min_r: f64,
    /// Maximum per-episode mean reward.
    pub max_r: f64,
    /// Mean per-episode mean reward.
    pub avg_r: f64,
    /// Training convergence time, s.
    pub tct_secs: f64,
    /// Mean decision latency, ms.
    pub avg_it_ms: f64,
}

/// The decision break-down report (Tables V & VI).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecisionReport {
    /// One row per learner.
    pub rows: Vec<LearnerRow>,
}

impl fmt::Display for DecisionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Tables V & VI: PAMDP learners in the simulator ==")?;
        writeln!(
            f,
            "{:<8} {:>8} {:>8} {:>8} {:>9} {:>10}",
            "Method", "MinR", "MaxR", "AvgR", "TCT(s)", "AvgIT(ms)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>8.3} {:>8.3} {:>8.3} {:>9.2} {:>10.3}",
                r.name, r.min_r, r.max_r, r.avg_r, r.tct_secs, r.avg_it_ms
            )?;
        }
        Ok(())
    }
}

/// **Tables V & VI** — the four PAMDP learners under identical training
/// budgets, perception and reward.
pub fn run_tables_5_6(scale: &Scale) -> DecisionReport {
    phase("table5_6", "train_lstgat");
    let (weights, _, _) = train_lstgat(scale);
    let mut rows = Vec::new();
    type AgentBuilder = Box<dyn Fn(AgentConfig) -> Box<dyn decision::PamdpAgent> + Sync>;
    let builders: Vec<(&str, AgentBuilder)> = vec![
        ("P-QP", Box::new(|c| Box::new(PQp::new(c)))),
        ("P-DDPG", Box::new(|c| Box::new(PDdpg::new(c)))),
        ("P-DQN", Box::new(|c| Box::new(PDqn::new(c)))),
        ("BP-DQN", Box::new(|c| Box::new(BpDqn::new(c)))),
    ];
    for (name, build) in builders {
        phase("table5_6", name);
        let mut env = lstgat_env(scale, &weights);
        let mut agent = PolicyAgent::new(name, build(scale.agent));
        seed_demos(scale, &mut env, &mut agent);
        let report = train_agent(&mut env, &mut agent, scale.train_episodes);
        let snapshot = agent.save_state();
        let eps = eval_factory(scale, || {
            let mut fresh = PolicyAgent::new(name, build(scale.agent));
            restore(&mut fresh, &snapshot);
            (
                lstgat_env(scale, &weights),
                Box::new(fresh) as Box<dyn DrivingAgent>,
            )
        });
        let agg = aggregate(scale.env.sim.road_len, &eps);
        let latency =
            crate::train::mean_decision_ms(&mut env, &mut agent, 60.min(scale.eval_episodes * 20));
        rows.push(LearnerRow {
            name: name.to_string(),
            min_r: agg.min_r,
            max_r: agg.max_r,
            avg_r: agg.avg_r,
            tct_secs: report.convergence_secs,
            avg_it_ms: latency,
        });
    }
    DecisionReport { rows }
}

/// One coefficient row of Table VII.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoefficientRow {
    /// Coefficient name (w1..w4).
    pub name: String,
    /// Search range minimum.
    pub min: f64,
    /// Search range maximum.
    pub max: f64,
    /// Search step.
    pub step: f64,
    /// Best value found.
    pub best: f64,
}

/// The reward-shaping report (Table VII).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RewardSearchReport {
    /// One row per coefficient.
    pub rows: Vec<CoefficientRow>,
    /// Objective value at the final coefficients.
    pub best_score: f64,
}

impl fmt::Display for RewardSearchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Table VII: reward-coefficient grid search ==")?;
        writeln!(
            f,
            "{:<6} {:>6} {:>6} {:>6} {:>6}",
            "Coef", "Min", "Max", "Step", "Best"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
                r.name, r.min, r.max, r.step, r.best
            )?;
        }
        writeln!(f, "objective at best: {:.3}", self.best_score)
    }
}

/// The weight-independent objective used to compare reward settings:
/// drive fast, keep TTC healthy, avoid jerk, avoid impacting followers,
/// never collide. (A reward-dependent score would be circular.)
pub fn shaping_objective(env: &EnvConfig, m: &AggregateMetrics) -> f64 {
    let v_term = m.avg_v_a / env.sim.v_max;
    let ttc_term = (m.min_ttc_a / env.reward.ttc_threshold).min(1.0);
    let impact_term = m.avg_impact_events / 20.0;
    let jerk_term = m.avg_j_a / env.sim.a_max;
    let collision_term = m.collisions as f64 / m.episodes.max(1) as f64;
    v_term + ttc_term - impact_term - jerk_term - 10.0 * collision_term
}

/// **Table VII** — coordinate-wise grid search over the four reward
/// coefficients (paper's ranges and steps), scoring each setting by
/// [`shaping_objective`] after a short training run.
pub fn run_table7(scale: &Scale) -> RewardSearchReport {
    phase("table7", "train_lstgat");
    let (weights, _, _) = train_lstgat(scale);
    let norm = scale.normalizer();
    // (name, min, max, step) per the paper.
    let ranges = [
        ("w1", 0.5, 1.0, 0.1),
        ("w2", 0.0, 1.0, 0.2),
        ("w3", 0.0, 1.0, 0.2),
        ("w4", 0.0, 0.5, 0.1),
    ];
    let mut best = [0.9, 0.8, 0.6, 0.2]; // start from the paper's optimum
    let mut rows = Vec::new();
    let mut best_score = f64::NEG_INFINITY;

    let score_weights = |w: [f64; 4]| -> f64 {
        let mut env_cfg = scale.env.clone();
        env_cfg.reward = RewardConfig {
            w_safety: w[0],
            w_efficiency: w[1],
            w_comfort: w[2],
            w_impact: w[3],
            ..scale.env.reward
        };
        let make_env = || {
            let mut model = LstGat::new(LstGatConfig::default(), norm);
            // lint:allow(panic) weights come from a checkpoint this process just wrote
            model.load_weights_json(&weights).expect("own checkpoint");
            HighwayEnv::new(env_cfg.clone(), PerceptionMode::LstGat(Box::new(model)))
        };
        let mut env = make_env();
        let mut agent = PolicyAgent::new("HEAD", Box::new(BpDqn::new(scale.agent)));
        seed_demos(scale, &mut env, &mut agent);
        train_agent(&mut env, &mut agent, (scale.train_episodes / 4).max(2));
        let snapshot = agent.save_state();
        let factory = || {
            let mut fresh = PolicyAgent::new("HEAD", Box::new(BpDqn::new(scale.agent)));
            restore(&mut fresh, &snapshot);
            (make_env(), Box::new(fresh) as Box<dyn DrivingAgent>)
        };
        let eps = evaluate_agent_par(
            &factory,
            (scale.eval_episodes / 4).max(2),
            scale.eval_seed_base,
            &par::pool(),
        );
        shaping_objective(&env_cfg, &aggregate(env_cfg.sim.road_len, &eps))
    };

    for (ci, (name, lo, hi, step)) in ranges.iter().enumerate() {
        phase("table7", name);
        let mut best_value = best[ci];
        let mut best_local = f64::NEG_INFINITY;
        let mut v = *lo;
        while v <= hi + 1e-9 {
            let mut w = best;
            w[ci] = v;
            let s = score_weights(w);
            if s > best_local {
                best_local = s;
                best_value = v;
            }
            v += step;
        }
        best[ci] = best_value;
        best_score = best_local;
        rows.push(CoefficientRow {
            name: name.to_string(),
            min: *lo,
            max: *hi,
            step: *step,
            best: best_value,
        });
    }
    RewardSearchReport { rows, best_score }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_is_small() {
        let s = Scale::smoke();
        assert!(s.train_episodes <= 20);
        assert!(s.corpus.windows <= 20);
    }

    #[test]
    fn paper_scale_matches_paper() {
        let s = Scale::paper();
        assert_eq!(s.train_episodes, 4_000);
        assert_eq!(s.eval_episodes, 500);
        assert_eq!(s.predictor_epochs, 15);
        assert_eq!(s.env.sim.road_len, 3000.0);
    }

    #[test]
    fn lstgat_pipeline_trains_at_smoke_scale() {
        let scale = Scale::smoke();
        let (weights, corpus, report) = train_lstgat(&scale);
        assert!(!corpus.train.is_empty());
        assert!(!weights.is_empty());
        assert_eq!(report.epoch_losses.len(), scale.predictor_epochs);
    }

    #[test]
    fn shaping_objective_prefers_safe_fast_gentle() {
        let env = EnvConfig::test_scale();
        let good = AggregateMetrics {
            avg_v_a: 22.0,
            min_ttc_a: 5.0,
            avg_impact_events: 2.0,
            avg_j_a: 0.3,
            episodes: 10,
            ..Default::default()
        };
        let bad = AggregateMetrics {
            avg_v_a: 22.0,
            min_ttc_a: 1.0,
            avg_impact_events: 15.0,
            avg_j_a: 1.5,
            collisions: 2,
            episodes: 10,
            ..Default::default()
        };
        assert!(shaping_objective(&env, &good) > shaping_objective(&env, &bad));
    }
}
