//! DRL-SC baseline (Nageshrao et al. 2019): deep reinforcement learning
//! over **discrete** actions, wrapped in a rule-based safety check that
//! overrides unsafe proposals with a conservative fallback. The learner is
//! the `decision` crate's [`DiscreteDqn`]; the safety check lives here.

use crate::agents::DrivingAgent;
use crate::env::Percepts;
use decision::{Action, AugmentedState, DiscreteDqn, LaneBehaviour, PamdpAgent, Transition};
use perception::{Area, MissingKind, NodeSource};
use serde::{Deserialize, Serialize};

/// Safety-check thresholds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SafetyCheck {
    /// Minimum TTC before forward acceleration is vetoed, s.
    pub min_ttc: f64,
    /// Minimum front gap for a lane change, m.
    pub min_front_gap: f64,
    /// Minimum rear gap for a lane change, m.
    pub min_rear_gap: f64,
    /// Vehicle body length, m.
    pub vehicle_len: f64,
    /// Fallback deceleration when a proposal is vetoed, m/s².
    pub fallback_decel: f64,
}

impl Default for SafetyCheck {
    fn default() -> Self {
        Self {
            min_ttc: 2.5,
            min_front_gap: 8.0,
            min_rear_gap: 8.0,
            vehicle_len: 5.0,
            fallback_decel: -1.5,
        }
    }
}

impl SafetyCheck {
    /// Applies the check; returns the (possibly overridden) action.
    pub fn filter(&self, percepts: &Percepts, proposed: Action) -> Action {
        let mut action = proposed;
        // Lane-change safety: both gaps in the target lane must exist.
        if proposed.behaviour != LaneBehaviour::Keep {
            let (front, rear) = match proposed.behaviour {
                LaneBehaviour::Left => (Area::FrontLeft, Area::RearLeft),
                LaneBehaviour::Right => (Area::FrontRight, Area::RearRight),
                // lint:allow(panic) the enclosing branch excludes Keep
                LaneBehaviour::Keep => unreachable!(),
            };
            let blocked = matches!(
                percepts.target_source(front),
                NodeSource::Phantom(MissingKind::Inherent)
            ) || matches!(
                percepts.target_source(rear),
                NodeSource::Phantom(MissingKind::Inherent)
            );
            let f = percepts.target(front);
            let r = percepts.target(rear);
            let front_gap = f[1] - self.vehicle_len;
            let rear_gap = -r[1] - self.vehicle_len;
            if blocked || front_gap < self.min_front_gap || rear_gap < self.min_rear_gap {
                // Veto the change but keep the longitudinal intent: the
                // longitudinal check below still guards the current lane.
                // (Forcing a deceleration here traps the agent in a
                // braking spiral whenever it keeps proposing changes.)
                action = Action {
                    behaviour: LaneBehaviour::Keep,
                    accel: proposed.accel,
                };
            }
        }
        // Longitudinal safety: no acceleration into a short-TTC leader in
        // the lane the (possibly vetoed) action ends up in.
        let front_area = match action.behaviour {
            LaneBehaviour::Left => Area::FrontLeft,
            LaneBehaviour::Right => Area::FrontRight,
            LaneBehaviour::Keep => Area::Front,
        };
        let front = percepts.target(front_area);
        let closing = -front[2];
        if closing > 0.0 && !percepts.target_is_phantom(front_area) {
            let ttc = (front[1] - self.vehicle_len).max(0.0) / closing;
            if ttc < self.min_ttc && action.accel > self.fallback_decel {
                return Action {
                    behaviour: action.behaviour,
                    accel: self.fallback_decel,
                };
            }
        }
        action
    }
}

/// The DRL-SC driving agent.
pub struct DrlSc {
    dqn: DiscreteDqn,
    check: SafetyCheck,
}

impl DrlSc {
    /// Builds the agent.
    pub fn new(dqn: DiscreteDqn, check: SafetyCheck) -> Self {
        Self { dqn, check }
    }

    /// Access to the learner (for checkpointing).
    pub fn learner_mut(&mut self) -> &mut DiscreteDqn {
        &mut self.dqn
    }
}

impl DrivingAgent for DrlSc {
    fn name(&self) -> String {
        "DRL-SC".into()
    }

    fn decide(&mut self, percepts: &Percepts, explore: bool) -> Action {
        let (proposed, _) = self.dqn.act(&percepts.state, explore);
        self.check.filter(percepts, proposed)
    }

    fn feedback(
        &mut self,
        state: &AugmentedState,
        action: Action,
        reward: f64,
        next_state: &AugmentedState,
        terminal: bool,
    ) {
        // The executed (post-veto) action is what the learner sees — the
        // standard treatment of action masking.
        let mut params = [0.0f32; 6];
        params[action.behaviour.index()] = action.accel as f32;
        self.dqn.observe(Transition {
            state: *state,
            action,
            params,
            reward,
            next_state: *next_state,
            terminal,
        });
        self.dqn.learn();
    }

    fn demonstrate(
        &mut self,
        state: &AugmentedState,
        action: Action,
        reward: f64,
        next_state: &AugmentedState,
        terminal: bool,
    ) {
        // Snap the teacher's continuous acceleration onto the DQN's grid.
        let level = (action.accel / 3.0).clamp(-1.0, 1.0).round() * 3.0;
        let snapped = Action {
            behaviour: action.behaviour,
            accel: level,
        };
        let mut params = [0.0f32; 6];
        params[snapped.behaviour.index()] = snapped.accel as f32;
        self.dqn.observe(Transition {
            state: *state,
            action: snapped,
            params,
            reward,
            next_state: *next_state,
            terminal,
        });
    }

    fn is_learning(&self) -> bool {
        true
    }

    fn save_state(&self) -> Option<String> {
        Some(self.dqn.save_json())
    }

    fn load_state(&mut self, state: &str) -> Result<(), String> {
        self.dqn.load_json(state).map_err(|e| e.to_string())
    }

    fn exploration_steps(&self) -> u64 {
        self.dqn.exploration_steps()
    }

    fn set_exploration_steps(&mut self, steps: u64) {
        self.dqn.set_exploration_steps(steps);
    }

    fn reseed(&mut self, seed: u64) {
        self.dqn.reseed(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnvConfig;
    use crate::env::{HighwayEnv, PerceptionMode};

    #[test]
    fn safety_check_vetoes_acceleration_at_short_ttc() {
        // Build percepts from a live env, then look for a situation where
        // the front slot is closing; synthetic verification of the rule is
        // done through the filter directly below with crafted values.
        let env = HighwayEnv::new(EnvConfig::test_scale(), PerceptionMode::Persistence);
        let check = SafetyCheck::default();
        let p = env.percepts();
        let proposed = Action {
            behaviour: LaneBehaviour::Keep,
            accel: 3.0,
        };
        let filtered = check.filter(p, proposed);
        let front = p.target(Area::Front);
        let closing = -front[2];
        if closing > 0.0 && !p.target_is_phantom(Area::Front) {
            let ttc = (front[1] - 5.0).max(0.0) / closing;
            if ttc < check.min_ttc {
                assert_eq!(filtered.accel, check.fallback_decel);
            }
        } else {
            assert_eq!(filtered, proposed);
        }
    }

    #[test]
    fn lane_change_into_boundary_is_vetoed() {
        // Put the AV in the leftmost lane: a left change must be vetoed
        // because the left targets are inherent phantoms.
        let mut cfg = EnvConfig::test_scale();
        cfg.seed = 4; // seed % lanes picks the spawn lane
        let mut env = HighwayEnv::new(cfg.clone(), PerceptionMode::Persistence);
        // Find an episode where the AV starts in lane 0 (paper lane 1).
        let mut tries = 0;
        while env.percepts().ego.lat > 1.0 && tries < 10 {
            env.reset();
            tries += 1;
        }
        // lint:allow(float-eq) reset writes the exact lane-centre constant
        if env.percepts().ego.lat == 1.0 {
            let check = SafetyCheck::default();
            let out = check.filter(
                env.percepts(),
                Action {
                    behaviour: LaneBehaviour::Left,
                    accel: 0.0,
                },
            );
            assert_eq!(
                out.behaviour,
                LaneBehaviour::Keep,
                "left change off-road vetoed"
            );
        }
    }
}
