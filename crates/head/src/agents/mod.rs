//! End-to-end driving agents: HEAD itself (a PAMDP policy over the
//! enhanced-perception state) and the paper's four baselines
//! (IDM-LC, ACC-LC, DRL-SC, TP-BTS).

mod drl_sc;
mod policy;
mod rule;
mod tp_bts;

pub use drl_sc::{DrlSc, SafetyCheck};
pub use policy::PolicyAgent;
pub use rule::{AccLc, IdmLc, RuleConfig};
pub use tp_bts::{TpBts, TpBtsConfig};

use crate::env::Percepts;
use decision::{Action, AugmentedState};

/// A complete driving agent: maps percepts to maneuvers, optionally
/// learning from feedback.
pub trait DrivingAgent {
    /// Display name (used as the table row label).
    fn name(&self) -> String;

    /// Chooses the maneuver for the current percepts.
    fn decide(&mut self, percepts: &Percepts, explore: bool) -> Action;

    /// Learning feedback after the environment applied `action`.
    /// Rule-based agents ignore it.
    fn feedback(
        &mut self,
        _state: &AugmentedState,
        _action: Action,
        _reward: f64,
        _next_state: &AugmentedState,
        _terminal: bool,
    ) {
    }

    /// Stores a demonstration transition (an action chosen by a teacher,
    /// not by this agent) without triggering a learning step. Rule-based
    /// agents ignore it.
    fn demonstrate(
        &mut self,
        _state: &AugmentedState,
        _action: Action,
        _reward: f64,
        _next_state: &AugmentedState,
        _terminal: bool,
    ) {
    }

    /// Whether the agent learns online (controls whether training episodes
    /// are run at all).
    fn is_learning(&self) -> bool {
        false
    }

    /// Serialises the agent's learned state for a checkpoint. `None` means
    /// the agent has nothing to save (rule-based agents).
    fn save_state(&self) -> Option<String> {
        None
    }

    /// Restores state produced by [`DrivingAgent::save_state`]. The default
    /// accepts nothing (stateless agents should never be handed a payload).
    fn load_state(&mut self, _state: &str) -> Result<(), String> {
        Err("agent has no loadable state".to_string())
    }

    /// Exploration (training) steps taken so far — checkpointed so resumed
    /// runs continue their ε / noise annealing.
    fn exploration_steps(&self) -> u64 {
        0
    }

    /// Restores the exploration step counter from a checkpoint.
    fn set_exploration_steps(&mut self, _steps: u64) {}

    /// Deterministically reseeds internal exploration randomness (resume:
    /// generator internals are not serialisable, so the resumed run
    /// continues on a fresh seed-derived stream).
    fn reseed(&mut self, _seed: u64) {}
}
