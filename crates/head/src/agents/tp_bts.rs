//! TP-BTS baseline (Liu et al., KDD 2021): Trajectory Prediction +
//! Behaviour-Tree Search. The agent rolls each candidate maneuver forward
//! over a short horizon against the perception module's predicted
//! neighbour states, scores the outcomes with hand-crafted rules (safety,
//! efficiency, and the discrete queue/cross/jump impact cases), and
//! executes the best first action. As the paper argues (§I), the
//! discretised accelerations and rule-based impact handling limit it in
//! continuous action space — the gap Tables I/V quantify.

use crate::agents::DrivingAgent;
use crate::env::Percepts;
use decision::{Action, LaneBehaviour};
use perception::{Area, MissingKind, NodeSource, AREAS};
use serde::{Deserialize, Serialize};

/// Search options.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TpBtsConfig {
    /// Discrete acceleration levels searched, m/s².
    pub accel_levels: [f64; 5],
    /// Rollout depth, steps.
    pub depth: usize,
    /// Step length Δt, s.
    pub dt: f64,
    /// Speed limit, m/s.
    pub v_max: f64,
    /// Minimum speed, m/s.
    pub v_min: f64,
    /// Vehicle body length, m.
    pub vehicle_len: f64,
    /// Utility gain a lane change must offer over keeping lane.
    pub change_hysteresis: f64,
    /// Candidates whose rollout TTC drops below this are pruned outright
    /// (the behaviour tree's safety branch).
    pub ttc_prune: f64,
}

impl Default for TpBtsConfig {
    fn default() -> Self {
        Self {
            accel_levels: [-3.0, -1.5, 0.0, 1.5, 3.0],
            depth: 3,
            dt: 0.5,
            v_max: 25.0,
            v_min: 5.0 / 3.6,
            vehicle_len: 5.0,
            change_hysteresis: 0.05,
            ttc_prune: 1.2,
        }
    }
}

/// A neighbour in ego-relative coordinates used by the rollout.
#[derive(Clone, Copy, Debug)]
struct Neighbour {
    d_lat_lanes: f64,
    d_lon: f64,
    v_rel: f64,
    phantom: bool,
}

/// The TP-BTS agent.
pub struct TpBts {
    cfg: TpBtsConfig,
    lane_width: f64,
}

impl TpBts {
    /// Builds the agent.
    pub fn new(cfg: TpBtsConfig, lane_width: f64) -> Self {
        Self { cfg, lane_width }
    }

    fn neighbours(&self, percepts: &Percepts) -> Vec<Neighbour> {
        AREAS
            .iter()
            .map(|&area| {
                // Geometry is anchored at the *current* relative positions
                // (exact), while the predicted next state supplies the
                // velocity estimate — the informative half of the
                // trajectory prediction. This keeps the rollout sound even
                // when the predictor is ablated.
                let now = percepts.target(area);
                let p = percepts.prediction[area.slot()];
                let phantom = percepts.target_is_phantom(area);
                Neighbour {
                    d_lat_lanes: now[0] / self.lane_width,
                    d_lon: now[1],
                    v_rel: p.v_rel,
                    phantom,
                }
            })
            .collect()
    }

    /// Scores a candidate (behaviour, accel) by rolling it out against
    /// constant-velocity extrapolations of the predicted neighbours.
    fn score(&self, percepts: &Percepts, behaviour: LaneBehaviour, accel: f64) -> f64 {
        let cfg = &self.cfg;
        let lane_offset = match behaviour {
            LaneBehaviour::Left => -1.0,
            LaneBehaviour::Right => 1.0,
            LaneBehaviour::Keep => 0.0,
        };
        // Lane validity (inherent phantoms mark the road edge).
        if behaviour != LaneBehaviour::Keep {
            let (front, rear) = match behaviour {
                LaneBehaviour::Left => (Area::FrontLeft, Area::RearLeft),
                LaneBehaviour::Right => (Area::FrontRight, Area::RearRight),
                // lint:allow(panic) the enclosing branch excludes Keep
                LaneBehaviour::Keep => unreachable!(),
            };
            for area in [front, rear] {
                if matches!(
                    percepts.target_source(area),
                    NodeSource::Phantom(MissingKind::Inherent)
                ) {
                    return f64::NEG_INFINITY;
                }
                // Immediate-overlap check: a lane change is instantaneous,
                // so a vehicle currently alongside (|d_lon| within a body
                // length) makes the branch fatal *now*, before any rollout.
                let h = percepts.target(area);
                if !matches!(
                    percepts.target_source(area),
                    NodeSource::Phantom(MissingKind::ZeroPadded)
                ) && h[1].abs() < cfg.vehicle_len + 1.0
                {
                    return f64::NEG_INFINITY;
                }
            }
        }

        // Rollout in a fixed frame anchored at the ego's position at t.
        // Ego: x_e(0) = 0, v(0) = current speed, constant candidate accel.
        // Neighbour n (current offset d_lon, predicted absolute speed
        // v_n = v0 + v_rel): x_n(s) = d_lon + v_n·Δt·s.
        let v0 = percepts.ego.vel;
        let mut v = v0;
        let mut x_ego = 0.0_f64;
        let mut utility = 0.0;
        let neighbours = self.neighbours(percepts);

        for step in 1..=cfg.depth {
            let v_next = (v + accel * cfg.dt).clamp(cfg.v_min, cfg.v_max);
            x_ego += (v + v_next) * 0.5 * cfg.dt;
            v = v_next;

            let mut min_ttc = f64::INFINITY;
            let mut impact_penalty = 0.0;
            for (slot, n) in neighbours.iter().enumerate() {
                if n.phantom && !AREAS[slot].is_front() {
                    continue; // rear phantoms carry no threat information
                }
                let same_lane = (n.d_lat_lanes - lane_offset).abs() < 0.5;
                if !same_lane {
                    continue;
                }
                let v_n = v0 + n.v_rel;
                let x_n = n.d_lon + v_n * cfg.dt * step as f64;
                let rel_lon = x_n - x_ego;
                let gap = rel_lon.abs() - cfg.vehicle_len;
                if gap < 0.5 {
                    return f64::NEG_INFINITY; // predicted collision
                }
                if rel_lon > 0.0 {
                    let closing = v - v_n;
                    if closing > 0.0 {
                        min_ttc = min_ttc.min(gap / closing);
                    }
                } else {
                    // Rear vehicle in the (new) lane: estimate the forced
                    // deceleration — the queue/jump impact cases.
                    let required = (v_n - v) - gap / 2.0;
                    if required > 0.0 {
                        impact_penalty += required.min(3.0) / 3.0;
                    }
                }
            }
            if min_ttc < cfg.ttc_prune {
                return f64::NEG_INFINITY; // unsafe branch: pruned
            }
            let safety = if min_ttc < 4.0 {
                (min_ttc / 4.0).ln().max(-3.0)
            } else {
                0.0
            };
            let efficiency = (v - cfg.v_min) / (cfg.v_max - cfg.v_min);
            utility += 0.9 * safety + 0.8 * efficiency - 0.2 * impact_penalty;
        }
        // Behaviour-tree bias: lane keeping is preferred unless a change
        // clearly wins.
        if behaviour != LaneBehaviour::Keep {
            utility -= cfg.change_hysteresis;
        }
        utility
    }
}

impl DrivingAgent for TpBts {
    fn name(&self) -> String {
        "TP-BTS".into()
    }

    fn decide(&mut self, percepts: &Percepts, _explore: bool) -> Action {
        // Fallback when every branch is pruned: emergency braking.
        let mut best = Action {
            behaviour: LaneBehaviour::Keep,
            accel: -self.cfg.accel_levels[0].abs(),
        };
        let mut best_score = f64::NEG_INFINITY;
        for behaviour in [
            LaneBehaviour::Keep,
            LaneBehaviour::Left,
            LaneBehaviour::Right,
        ] {
            for &accel in &self.cfg.accel_levels {
                let s = self.score(percepts, behaviour, accel);
                if s > best_score {
                    best_score = s;
                    best = Action { behaviour, accel };
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnvConfig;
    use crate::env::{HighwayEnv, PerceptionMode};
    use crate::metrics::Terminal;

    #[test]
    fn picks_actions_from_the_discrete_grid() {
        let mut cfg = EnvConfig::test_scale();
        cfg.seed = 7;
        let env = HighwayEnv::new(cfg, PerceptionMode::Persistence);
        let mut agent = TpBts::new(TpBtsConfig::default(), 3.2);
        let a = agent.decide(env.percepts(), false);
        assert!(TpBtsConfig::default().accel_levels.contains(&a.accel));
    }

    #[test]
    fn completes_short_episodes() {
        let mut completions = 0;
        for seed in 0..5 {
            let mut cfg = EnvConfig::test_scale();
            cfg.seed = 100 + seed;
            let mut env = HighwayEnv::new(cfg, PerceptionMode::Persistence);
            let mut agent = TpBts::new(TpBtsConfig::default(), 3.2);
            for _ in 0..400 {
                let action = agent.decide(env.percepts(), false);
                let r = env.step(action);
                if r.terminal == Terminal::Destination {
                    completions += 1;
                    break;
                }
                if r.terminal != Terminal::None {
                    break;
                }
            }
        }
        assert!(
            completions >= 4,
            "TP-BTS completed only {completions}/5 episodes"
        );
    }
}
