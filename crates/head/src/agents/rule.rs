//! Rule-based baselines: **IDM-LC** (intelligent driver model + lane
//! changing) and **ACC-LC** (adaptive cruise control + lane changing) —
//! the paper's two traditional comparison methods. Both perceive the world
//! through the same sensor-limited percepts as HEAD (they read the target
//! slots of the spatial-temporal graph) and use a MOBIL-style
//! incentive+safety lane-change rule.

use crate::agents::DrivingAgent;
use crate::env::Percepts;
use decision::{Action, LaneBehaviour};
use perception::{Area, MissingKind, NodeSource};
use serde::{Deserialize, Serialize};
use traffic_sim::{
    acc_accel, idm_accel, mobil_decision, Controller, DriverParams, FollowerView, LaneChange,
    LaneContext, LeaderView, Vehicle, VehicleId,
};

/// Parameters shared by the rule-based agents.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RuleConfig {
    /// Vehicle body length, m (to convert centre distances to gaps).
    pub vehicle_len: f64,
    /// Acceleration bound a', m/s².
    pub a_max: f64,
    /// Driver profile used for car-following and lane-change incentives.
    pub driver: DriverParams,
}

impl Default for RuleConfig {
    fn default() -> Self {
        let mut driver = DriverParams::nominal();
        driver.desired_speed = 25.0; // drive up to the limit, like the AV
        Self {
            vehicle_len: 5.0,
            a_max: 3.0,
            driver,
        }
    }
}

/// Which car-following law the rule agent uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FollowLaw {
    Idm,
    Acc,
}

/// Shared implementation of the two rule-based agents.
struct RuleAgent {
    cfg: RuleConfig,
    law: FollowLaw,
}

/// Extracts a leader view from a front-side target slot. Phantom vehicles
/// constructed at the sensor horizon behave like a distant leader, which is
/// exactly their purpose.
fn leader_of(percepts: &Percepts, area: Area, vehicle_len: f64) -> Option<LeaderView> {
    let h = percepts.target(area);
    match percepts.target_source(area) {
        NodeSource::Phantom(MissingKind::ZeroPadded) => None,
        _ => Some(LeaderView {
            gap: h[1] - vehicle_len,
            vel: percepts.ego.vel + h[2],
        }),
    }
}

fn follower_of(
    percepts: &Percepts,
    area: Area,
    vehicle_len: f64,
    driver: DriverParams,
) -> Option<FollowerView> {
    let h = percepts.target(area);
    match percepts.target_source(area) {
        NodeSource::Phantom(MissingKind::ZeroPadded) => None,
        _ => Some(FollowerView {
            gap: -h[1] - vehicle_len,
            vel: percepts.ego.vel + h[2],
            decel: driver.decel,
            driver,
        }),
    }
}

/// A lane is unavailable when its targets are *inherent* phantoms (the
/// virtual boundary lane).
fn lane_available(percepts: &Percepts, front: Area, rear: Area) -> bool {
    !matches!(
        percepts.target_source(front),
        NodeSource::Phantom(MissingKind::Inherent)
    ) && !matches!(
        percepts.target_source(rear),
        NodeSource::Phantom(MissingKind::Inherent)
    )
}

impl RuleAgent {
    fn decide(&mut self, percepts: &Percepts) -> Action {
        let cfg = &self.cfg;
        let ego_vehicle = Vehicle {
            id: VehicleId(u64::MAX),
            seg: traffic_sim::SegmentId(0),
            lane: (percepts.ego.lat - 1.0).max(0.0) as usize,
            pos: percepts.ego.lon,
            vel: percepts.ego.vel,
            accel: 0.0,
            length: cfg.vehicle_len,
            controller: Controller::External,
            driver: cfg.driver,
            collided: false,
            lc_cooldown: 0,
        };

        let current = LaneContext {
            leader: leader_of(percepts, Area::Front, cfg.vehicle_len),
            follower: follower_of(percepts, Area::Rear, cfg.vehicle_len, cfg.driver),
        };
        let left = lane_available(percepts, Area::FrontLeft, Area::RearLeft).then(|| LaneContext {
            leader: leader_of(percepts, Area::FrontLeft, cfg.vehicle_len),
            follower: follower_of(percepts, Area::RearLeft, cfg.vehicle_len, cfg.driver),
        });
        let right =
            lane_available(percepts, Area::FrontRight, Area::RearRight).then(|| LaneContext {
                leader: leader_of(percepts, Area::FrontRight, cfg.vehicle_len),
                follower: follower_of(percepts, Area::RearRight, cfg.vehicle_len, cfg.driver),
            });

        let change = mobil_decision(&ego_vehicle, current, left, right);
        let (behaviour, leader) = match change {
            LaneChange::Keep => (LaneBehaviour::Keep, current.leader),
            LaneChange::Left => (LaneBehaviour::Left, left.and_then(|c| c.leader)),
            LaneChange::Right => (LaneBehaviour::Right, right.and_then(|c| c.leader)),
        };
        let accel = match self.law {
            FollowLaw::Idm => idm_accel(&cfg.driver, percepts.ego.vel, leader),
            FollowLaw::Acc => acc_accel(&cfg.driver, percepts.ego.vel, leader),
        };
        Action {
            behaviour,
            accel: accel.clamp(-cfg.a_max, cfg.a_max),
        }
    }
}

/// The IDM-LC baseline.
pub struct IdmLc(RuleAgent);

impl IdmLc {
    /// Builds the agent.
    pub fn new(cfg: RuleConfig) -> Self {
        Self(RuleAgent {
            cfg,
            law: FollowLaw::Idm,
        })
    }
}

impl DrivingAgent for IdmLc {
    fn name(&self) -> String {
        "IDM-LC".into()
    }

    fn decide(&mut self, percepts: &Percepts, _explore: bool) -> Action {
        self.0.decide(percepts)
    }
}

/// The ACC-LC baseline.
pub struct AccLc(RuleAgent);

impl AccLc {
    /// Builds the agent.
    pub fn new(cfg: RuleConfig) -> Self {
        Self(RuleAgent {
            cfg,
            law: FollowLaw::Acc,
        })
    }
}

impl DrivingAgent for AccLc {
    fn name(&self) -> String {
        "ACC-LC".into()
    }

    fn decide(&mut self, percepts: &Percepts, _explore: bool) -> Action {
        self.0.decide(percepts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnvConfig;
    use crate::env::{HighwayEnv, PerceptionMode};
    use crate::metrics::Terminal;

    fn drive(agent: &mut dyn DrivingAgent, seed: u64) -> (Terminal, usize) {
        let mut cfg = EnvConfig::test_scale();
        cfg.seed = seed;
        let mut env = HighwayEnv::new(cfg, PerceptionMode::Persistence);
        for step in 0..400 {
            let action = agent.decide(env.percepts(), false);
            let r = env.step(action);
            if r.terminal != Terminal::None {
                return (r.terminal, step + 1);
            }
        }
        (Terminal::None, 400)
    }

    #[test]
    fn idm_lc_completes_episodes_without_crashing() {
        let mut agent = IdmLc::new(RuleConfig::default());
        for seed in 0..5 {
            let (terminal, _) = drive(&mut agent, seed);
            assert_eq!(terminal, Terminal::Destination, "seed {seed}");
        }
    }

    #[test]
    fn acc_lc_completes_episodes_without_crashing() {
        let mut agent = AccLc::new(RuleConfig::default());
        for seed in 10..15 {
            let (terminal, _) = drive(&mut agent, seed);
            assert_eq!(terminal, Terminal::Destination, "seed {seed}");
        }
    }

    #[test]
    fn rule_agents_respect_acceleration_bound() {
        let mut cfg = EnvConfig::test_scale();
        cfg.seed = 42;
        let mut env = HighwayEnv::new(cfg, PerceptionMode::Persistence);
        let mut agent = IdmLc::new(RuleConfig::default());
        for _ in 0..50 {
            let a = agent.decide(env.percepts(), false);
            assert!(a.accel.abs() <= 3.0 + 1e-9);
            if env.step(a).terminal != Terminal::None {
                break;
            }
        }
    }
}
