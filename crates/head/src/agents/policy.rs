//! Adapter wrapping any PAMDP learner (BP-DQN, P-DQN, …) as a driving
//! agent — this is HEAD itself when the learner is BP-DQN and the
//! environment runs the full enhanced-perception pipeline.

use crate::agents::DrivingAgent;
use crate::env::Percepts;
use decision::{Action, AugmentedState, PamdpAgent, Transition};

/// A learning driving agent backed by a PAMDP policy.
pub struct PolicyAgent {
    label: String,
    inner: Box<dyn PamdpAgent>,
    last_params: [f32; 6],
}

impl PolicyAgent {
    /// Wraps a learner under a display label (e.g. `"HEAD"`).
    pub fn new(label: impl Into<String>, inner: Box<dyn PamdpAgent>) -> Self {
        Self {
            label: label.into(),
            inner,
            last_params: [0.0; 6],
        }
    }

    /// Access to the wrapped learner.
    pub fn learner(&self) -> &dyn PamdpAgent {
        self.inner.as_ref()
    }

    /// Mutable access to the wrapped learner (e.g. for checkpointing).
    pub fn learner_mut(&mut self) -> &mut dyn PamdpAgent {
        self.inner.as_mut()
    }
}

impl DrivingAgent for PolicyAgent {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn decide(&mut self, percepts: &Percepts, explore: bool) -> Action {
        let (action, params) = self.inner.act(&percepts.state, explore);
        self.last_params = params;
        action
    }

    fn feedback(
        &mut self,
        state: &AugmentedState,
        action: Action,
        reward: f64,
        next_state: &AugmentedState,
        terminal: bool,
    ) {
        self.inner.observe(Transition {
            state: *state,
            action,
            params: self.last_params,
            reward,
            next_state: *next_state,
            terminal,
        });
        self.inner.learn();
    }

    fn demonstrate(
        &mut self,
        state: &AugmentedState,
        action: Action,
        reward: f64,
        next_state: &AugmentedState,
        terminal: bool,
    ) {
        // The teacher's acceleration stands in for all three behaviour
        // slots: for the executed behaviour it is exact; for the others it
        // is a neutral, plausible parameter.
        let a = action.accel as f32;
        self.inner.observe(Transition {
            state: *state,
            action,
            params: [a, a, a, 0.0, 0.0, 0.0],
            reward,
            next_state: *next_state,
            terminal,
        });
    }

    fn is_learning(&self) -> bool {
        true
    }

    fn save_state(&self) -> Option<String> {
        Some(self.inner.save_json())
    }

    fn load_state(&mut self, state: &str) -> Result<(), String> {
        self.inner.load_json(state).map_err(|e| e.to_string())
    }

    fn exploration_steps(&self) -> u64 {
        self.inner.exploration_steps()
    }

    fn set_exploration_steps(&mut self, steps: u64) {
        self.inner.set_exploration_steps(steps);
    }

    fn reseed(&mut self, seed: u64) {
        self.inner.reseed(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decision::{AgentConfig, BpDqn, LinearSchedule};

    #[test]
    fn wraps_learner_name_and_decisions() {
        let cfg = AgentConfig {
            warmup: 8,
            batch_size: 8,
            epsilon: LinearSchedule::new(1.0, 0.1, 100),
            ..AgentConfig::default()
        };
        let mut agent = PolicyAgent::new("HEAD", Box::new(BpDqn::new(cfg)));
        assert_eq!(agent.name(), "HEAD");
        assert!(agent.is_learning());
        let state = AugmentedState::zeros();
        // Feedback before any experience must be safe.
        agent.feedback(
            &state,
            decision::Action {
                behaviour: decision::LaneBehaviour::Keep,
                accel: 0.0,
            },
            0.0,
            &state,
            false,
        );
    }
}
