//! The closed-loop highway environment: simulator + sensor + enhanced
//! perception wired into the PAMDP interface the decision module consumes
//! (paper Fig. 1: the full perception-and-decision loop).

use crate::config::EnvConfig;
use crate::metrics::{EpisodeMetrics, MetricsCollector, Terminal};
use crate::robustness::RobustnessEvent;
use decision::{
    Action, AugmentedState, LaneBehaviour, RewardInput, RewardParts, CURRENT_ROWS, FUTURE_ROWS,
};
use perception::{
    target_node, Area, BuilderConfig, FallbackGuard, GraphBuilder, LstGat, NodeSource, Prediction,
    RawState, StGraph, StatePredictor, NUM_TARGETS,
};
use sensor::{sense, FaultInjector, InjectorState, SensorHistory};
use telemetry::keys;
use traffic_sim::{ExternalCommand, LaneChange, Simulation, VehicleId};

/// Salt xored into the environment seed for the fault injector, so the
/// fault stream is independent of the traffic stream under the same seed.
const FAULT_SEED_SALT: u64 = 0x6661_756c_7421_5eed;

/// Telemetry counter per [`sensor::FaultKind::index`] slot.
const FAULT_COUNTERS: [&str; 5] = [
    keys::SENSOR_FAULT_DROPOUT,
    keys::SENSOR_FAULT_NOISE,
    keys::SENSOR_FAULT_LATENCY,
    keys::SENSOR_FAULT_BLACKOUT,
    keys::SENSOR_FAULT_NAN,
];

/// Which state predictor feeds the decision module.
pub enum PerceptionMode {
    /// The paper's LST-GAT model (pre-trained).
    LstGat(Box<LstGat>),
    /// No prediction: the future block repeats the current states — the
    /// HEAD-w/o-LST-GAT ablation ("only use the current observable states").
    Persistence,
}

impl PerceptionMode {
    pub(crate) fn predict(&self, graph: &StGraph) -> Prediction {
        match self {
            PerceptionMode::LstGat(model) => model.predict(graph),
            PerceptionMode::Persistence => {
                let latest = &graph.frames[graph.depth() - 1];
                let mut pred = Prediction::default();
                for (i, p) in pred.iter_mut().enumerate() {
                    let h = latest[target_node(i)];
                    p.d_lat = h[0];
                    p.d_lon = h[1];
                    p.v_rel = h[2];
                }
                pred
            }
        }
    }
}

/// Everything an agent can see at one step.
#[derive(Clone, Debug)]
pub struct Percepts {
    /// The PAMDP augmented state `s⁺` (Eqs. 15–16).
    pub state: AugmentedState,
    /// The raw spatial-temporal graph (rule-based agents and TP-BTS read
    /// the target slots directly).
    pub graph: StGraph,
    /// One-step predictions for the six targets.
    pub prediction: Prediction,
    /// The ego's raw state (1-based lane).
    pub ego: RawState,
}

impl Percepts {
    /// Latest relative state `[d_lat, d_lon, v_rel, IF]` of a target area.
    pub fn target(&self, area: Area) -> [f64; 4] {
        self.graph.frames[self.graph.depth() - 1][target_node(area.slot())]
    }

    /// Provenance of a target area.
    pub fn target_source(&self, area: Area) -> NodeSource {
        self.graph.sources[target_node(area.slot())]
    }

    /// True when the area's node is a constructed phantom.
    pub fn target_is_phantom(&self, area: Area) -> bool {
        self.target_source(area).is_phantom()
    }
}

/// Result of one environment step.
#[derive(Clone, Debug)]
pub struct StepResult {
    /// Hybrid reward of the executed action.
    pub reward: RewardParts,
    /// Terminal status after the step.
    pub terminal: Terminal,
    /// The successor augmented state.
    pub next_state: AugmentedState,
    /// Per-episode metrics, present when the episode just ended.
    pub episode: Option<EpisodeMetrics>,
}

/// The closed-loop environment.
pub struct HighwayEnv {
    cfg: EnvConfig,
    builder: GraphBuilder,
    perception: PerceptionMode,
    sim: Simulation,
    av: VehicleId,
    history: SensorHistory,
    percepts: Percepts,
    prev_accel: f64,
    steps: usize,
    episode_index: u64,
    collector: MetricsCollector,
    injector: Option<FaultInjector>,
    fallback: FallbackGuard,
}

impl HighwayEnv {
    /// Creates the environment and starts the first episode.
    pub fn new(cfg: EnvConfig, perception: PerceptionMode) -> Self {
        let builder = GraphBuilder::new(BuilderConfig {
            lanes: cfg.sim.lanes,
            lane_width: cfg.sim.lane_width,
            range: cfg.sensor.range,
            dt: cfg.sim.dt,
            z: cfg.z,
            phantoms_enabled: true,
        });
        let mut env = Self {
            builder,
            perception,
            sim: Simulation::new(cfg.sim.clone()),
            av: VehicleId(0),
            history: SensorHistory::new(cfg.z),
            percepts: Percepts {
                state: AugmentedState::zeros(),
                graph: StGraph {
                    frames: vec![[[0.0; 4]; perception::NUM_NODES]; cfg.z],
                    sources: [NodeSource::Ego; perception::NUM_NODES],
                    ego_latest: RawState {
                        lat: 1.0,
                        lon: 0.0,
                        vel: 0.0,
                    },
                },
                prediction: Prediction::default(),
                ego: RawState {
                    lat: 1.0,
                    lon: 0.0,
                    vel: 0.0,
                },
            },
            prev_accel: 0.0,
            steps: 0,
            episode_index: 0,
            collector: MetricsCollector::new(),
            injector: cfg
                .faults
                .filter(|p| !p.is_noop())
                .map(|p| FaultInjector::new(p, cfg.seed ^ FAULT_SEED_SALT)),
            fallback: FallbackGuard::new(cfg.sim.dt),
            cfg,
        };
        env.reset();
        env
    }

    /// Disables the phantom-construction strategy (HEAD-w/o-PVC ablation).
    pub fn disable_phantoms(&mut self) {
        let mut b = *self.builder.cfg();
        b.phantoms_enabled = false;
        self.builder = GraphBuilder::new(b);
    }

    /// Environment configuration.
    pub fn cfg(&self) -> &EnvConfig {
        &self.cfg
    }

    /// Episodes started so far.
    pub fn episode_index(&self) -> u64 {
        self.episode_index
    }

    /// Starts a new episode and returns its first percepts.
    pub fn reset(&mut self) -> &Percepts {
        let seed = self.cfg.seed.wrapping_add(self.episode_index);
        self.reset_with_seed(seed)
    }

    /// Starts a new episode with an explicit seed.
    pub fn reset_with_seed(&mut self, seed: u64) -> &Percepts {
        self.episode_index += 1;
        let mut sim_cfg = self.cfg.sim.clone();
        sim_cfg.seed = seed;
        self.sim = Simulation::new(sim_cfg);
        self.sim.populate();
        self.sim.warm_up(self.cfg.warmup_steps);
        // Random entry lane, as in the paper.
        let lane = (seed % self.cfg.sim.lanes as u64) as usize;
        self.av =
            self.sim
                .spawn_external(lane, self.cfg.sim.vehicle_len + 2.0, self.cfg.av_start_vel);
        self.history.clear();
        self.prev_accel = 0.0;
        self.steps = 0;
        self.collector = MetricsCollector::new();
        // The fault injector deliberately persists across episodes (one
        // continuous fault stream); the degradation ladder does not.
        self.fallback = FallbackGuard::new(self.cfg.sim.dt);
        self.refresh_percepts();
        &self.percepts
    }

    /// Overrides the episode counter (checkpoint resume: episode `k`'s
    /// seed is `seed + k`, so resuming must restart the arithmetic there).
    pub fn set_episode_index(&mut self, index: u64) {
        self.episode_index = index;
    }

    /// Read access to the fault injector, when fault injection is active.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Resumable fault-injector state, when fault injection is active.
    pub fn injector_state(&self) -> Option<InjectorState> {
        self.injector.as_ref().map(|i| i.state())
    }

    /// Restores the fault injector to a checkpointed state (no-op when
    /// fault injection is inactive).
    pub fn restore_injector(&mut self, state: InjectorState) {
        if let Some(injector) = self.injector.as_mut() {
            injector.restore(state);
        }
    }

    /// Closes the running episode early with [`Terminal::Fault`] (episode
    /// watchdog). The caller is expected to `reset` before stepping again.
    pub fn abort_episode(&mut self) -> EpisodeMetrics {
        telemetry::flight_record(keys::FLIGHT_TERMINAL_FAULT, self.episode_index as f64);
        telemetry::flight_dump(keys::FLIGHT_TERMINAL_FAULT);
        self.collector.finish(Terminal::Fault, self.cfg.sim.dt)
    }

    /// Current percepts.
    pub fn percepts(&self) -> &Percepts {
        &self.percepts
    }

    /// Read access to the underlying simulation (diagnostics, examples).
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    fn refresh_percepts(&mut self) {
        let raw = sense(&self.sim, self.av, &self.cfg.sensor);
        // The boot frame of every episode bypasses injection: each episode
        // starts from warm, known-good percepts (and the rule keeps the
        // injected fault stream a pure function of the frame sequence).
        let boot_frame = self.history.is_empty();
        let delivered = match self.injector.as_mut() {
            Some(injector) if !boot_frame => {
                let before = injector.counts();
                let out = injector.apply(raw);
                let after = injector.counts();
                for (i, counter) in FAULT_COUNTERS.iter().enumerate() {
                    let delta = after[i].saturating_sub(before[i]);
                    if delta > 0 {
                        telemetry::counter_add(counter, delta);
                    }
                }
                out
            }
            _ => Some(raw),
        };

        let fresh = delivered.map(|mut frame| {
            // A NaN-corrupted detection is dropped before it can poison the
            // graph — from the pipeline's viewpoint it behaves like a
            // dropout of that vehicle.
            frame
                .observed
                .retain(|o| o.pos.is_finite() && o.vel.is_finite());
            self.history.push(frame);
            let graph = self.builder.build(&self.history);
            let prediction = self.perception.predict(&graph);
            (graph, prediction)
        });

        // Blackout or non-finite perception: degrade through the fallback
        // ladder. `None` is only possible before the first good frame of a
        // process, which the boot-frame rule rules out — keeping the
        // previous percepts is the safe no-op either way.
        if let Some((graph, prediction, _tier)) = self.fallback.resolve(fresh) {
            let state = augmented_state(&graph, &prediction);
            let ego = graph.ego_latest;
            self.percepts = Percepts {
                state,
                graph,
                prediction,
                ego,
            };
        }
    }

    /// Executes a maneuver and advances the world by Δt.
    pub fn step(&mut self, action: Action) -> StepResult {
        // Recoverable faults observed this step. A non-finite commanded
        // acceleration (a diverged policy) coasts instead of executing and
        // ends the episode with `Terminal::Fault`.
        let mut faults: Vec<RobustnessEvent> = Vec::new();
        let accel = if action.accel.is_finite() {
            action.accel
        } else {
            faults.push(RobustnessEvent::NonFiniteAction { step: self.steps });
            0.0
        };

        // Rear-vehicle bookkeeping for the impact term (before stepping).
        let rear_source = self.percepts.target_source(Area::Rear);
        let (rear_id, rear_vel_now, rear_is_phantom) = match rear_source {
            NodeSource::Observed(id) => (Some(id), self.sim.get(id).map(|v| v.vel), false),
            _ => (None, None, true),
        };

        let lane_change = match action.behaviour {
            LaneBehaviour::Left => LaneChange::Left,
            LaneBehaviour::Right => LaneChange::Right,
            LaneBehaviour::Keep => LaneChange::Keep,
        };
        self.sim
            .set_command(self.av, ExternalCommand { lane_change, accel });
        let outcome = self.sim.step();
        self.steps += 1;

        let collided = outcome
            .collisions
            .iter()
            .any(|c| c.vehicle == self.av || c.other == Some(self.av));
        let arrived = outcome.exited_external.contains(&self.av);
        faults.extend(
            outcome
                .non_finite
                .iter()
                .map(|&vehicle| RobustnessEvent::NonFiniteVehicleState { vehicle }),
        );

        // Perceive the new world (the AV still exists in every case).
        self.refresh_percepts();

        // Reward (Eqs. 28–30), evaluated on t+1 values as the paper defines.
        // TTC uses the bumper-to-bumper gap (d_lon minus the body length):
        // the paper's Eq. 1 d_lon is front-bumper distance, but "time to
        // collision" is over the physical gap — without this, the safety
        // penalty stays shallow right up to contact.
        let front = self.percepts.target(Area::Front);
        let front_gap = (front[1] - self.cfg.sim.vehicle_len).max(0.0);
        let front_phantom = self.percepts.target_is_phantom(Area::Front);
        let rear_vel_next = rear_id.and_then(|id| self.sim.get(id)).map(|v| v.vel);
        let ego_vel_next = self.sim.get(self.av).map(|v| v.vel).unwrap_or(0.0);
        let input = RewardInput {
            collision: collided,
            front_gap: Some(front_gap),
            front_v_rel: Some(front[2]),
            front_is_phantom: front_phantom,
            ego_vel_next,
            accel,
            prev_accel: self.prev_accel,
            rear_vel_now,
            rear_vel_next,
            rear_is_phantom,
        };
        let reward = self.cfg.reward.evaluate(&input);
        self.prev_accel = accel;
        if !reward.total.is_finite() {
            faults.push(RobustnessEvent::NonFiniteReward { step: self.steps });
        }
        // A poisoned reward must not contaminate the episode accumulators
        // (the episode ends with `Terminal::Fault` below anyway).
        let reward_for_metrics = if reward.total.is_finite() {
            reward.total
        } else {
            0.0
        };

        // Metrics.
        let ttc = if !front_phantom && front[2] < 0.0 && front_gap > 0.0 {
            Some(front_gap / -front[2])
        } else {
            None
        };
        let rear_decel = match (rear_vel_now, rear_vel_next) {
            (Some(now), Some(next)) if !rear_is_phantom => Some(now - next),
            _ => None,
        };
        let jerk = accel - input.prev_accel;
        let follower_mean_vel = self.follower_mean_velocity();
        self.collector.record_step(
            ego_vel_next,
            jerk,
            ttc,
            rear_decel,
            follower_mean_vel,
            reward_for_metrics,
            self.cfg.reward.v_thr,
        );

        for event in &faults {
            event.record(self.episode_index);
        }
        let terminal = if collided {
            Terminal::Collision
        } else if arrived {
            Terminal::Destination
        } else if !faults.is_empty() {
            // Post-mortem: flush the flight ring so the dump shows what led
            // up to this fault (the events above are already in the ring).
            telemetry::flight_record(keys::FLIGHT_TERMINAL_FAULT, self.episode_index as f64);
            telemetry::flight_dump(keys::FLIGHT_TERMINAL_FAULT);
            Terminal::Fault
        } else if self.steps >= self.cfg.max_steps {
            Terminal::Timeout
        } else {
            Terminal::None
        };
        let episode =
            (terminal != Terminal::None).then(|| self.collector.finish(terminal, self.cfg.sim.dt));

        StepResult {
            reward,
            terminal,
            next_state: self.percepts.state,
            episode,
        }
    }

    /// Mean velocity of conventional vehicles within 100 m behind the AV
    /// (the AvgDT-C population).
    fn follower_mean_velocity(&self) -> Option<f64> {
        let av = self.sim.get(self.av)?;
        let vels: Vec<f64> = self
            .sim
            .vehicles()
            .filter(|v| {
                v.id != self.av && v.seg == av.seg && v.pos <= av.pos && v.pos >= av.pos - 100.0
            })
            .map(|v| v.vel)
            .collect();
        if vels.is_empty() {
            None
        } else {
            Some(vels.iter().sum::<f64>() / vels.len() as f64)
        }
    }
}

/// Assembles the augmented state `s⁺ = [hᵗ, f̂ᵗ⁺¹]` from the graph's latest
/// frame and the perception module's predictions.
pub fn augmented_state(graph: &StGraph, prediction: &Prediction) -> AugmentedState {
    let latest = &graph.frames[graph.depth() - 1];
    let ego = graph.ego_latest;
    let mut s = AugmentedState::zeros();
    s.current[0] = [ego.lat, ego.lon, ego.vel, 0.0];
    for i in 0..NUM_TARGETS.min(CURRENT_ROWS - 1) {
        s.current[i + 1] = latest[target_node(i)];
    }
    for (i, p) in prediction
        .iter()
        .enumerate()
        .take(NUM_TARGETS.min(FUTURE_ROWS))
    {
        let flag = if graph.target_is_phantom(i) { 1.0 } else { 0.0 };
        s.future[i] = [p.d_lat, p.d_lon, p.v_rel, flag];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_env() -> HighwayEnv {
        HighwayEnv::new(EnvConfig::test_scale(), PerceptionMode::Persistence)
    }

    fn keep(accel: f64) -> Action {
        Action {
            behaviour: LaneBehaviour::Keep,
            accel,
        }
    }

    #[test]
    fn reset_produces_valid_percepts() {
        let env = test_env();
        let p = env.percepts();
        assert_eq!(p.graph.depth(), 5);
        assert!(p.ego.lon > 0.0);
        // Augmented-state ego row mirrors the raw ego state.
        assert_eq!(p.state.current[0][2], p.ego.vel);
    }

    #[test]
    fn step_advances_and_rewards() {
        let mut env = test_env();
        let r = env.step(keep(1.0));
        assert_eq!(r.terminal, Terminal::None);
        assert!(r.reward.total.is_finite());
        assert!(r.reward.efficiency > 0.0);
        assert!(env.percepts().ego.lon > 0.0);
    }

    #[test]
    fn episode_reaches_destination() {
        let mut env = test_env();
        let mut terminal = Terminal::None;
        for _ in 0..600 {
            let r = env.step(keep(1.0));
            terminal = r.terminal;
            if terminal != Terminal::None {
                assert!(r.episode.is_some());
                break;
            }
        }
        // On a 300 m test road the AV always finishes (or crashes) quickly.
        assert_ne!(terminal, Terminal::None);
    }

    #[test]
    fn boundary_crash_terminates_with_collision() {
        let mut env = test_env();
        // Drive off the left edge by forcing left changes.
        let mut terminal = Terminal::None;
        for _ in 0..10 {
            let r = env.step(Action {
                behaviour: LaneBehaviour::Left,
                accel: 0.0,
            });
            terminal = r.terminal;
            if terminal != Terminal::None {
                assert!(
                    (r.reward.safety + 3.0).abs() < 1e-9,
                    "collision safety = -3"
                );
                break;
            }
        }
        assert_eq!(terminal, Terminal::Collision);
    }

    #[test]
    fn persistence_prediction_repeats_current() {
        let env = test_env();
        let p = env.percepts();
        for i in 0..NUM_TARGETS {
            let cur = p.graph.frames[p.graph.depth() - 1][target_node(i)];
            assert_eq!(p.prediction[i].d_lon, cur[1]);
            assert_eq!(p.state.future[i][0], cur[0]);
        }
    }

    #[test]
    fn episodes_are_reproducible_by_seed() {
        let run = |seed: u64| {
            let mut cfg = EnvConfig::test_scale();
            cfg.seed = seed;
            let mut env = HighwayEnv::new(cfg, PerceptionMode::Persistence);
            let mut trace = Vec::new();
            for i in 0..30 {
                let accel = ((i % 5) as f64) - 2.0;
                let r = env.step(keep(accel));
                trace.push((r.reward.total.to_bits(), r.terminal));
                if r.terminal != Terminal::None {
                    break;
                }
            }
            trace
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn faulted_runs_are_reproducible_by_seed() {
        let run = |seed: u64| {
            let mut cfg = EnvConfig::test_scale();
            cfg.seed = seed;
            cfg.faults = Some(sensor::FaultProfile::heavy());
            let mut env = HighwayEnv::new(cfg, PerceptionMode::Persistence);
            let mut trace = Vec::new();
            for i in 0..40 {
                let accel = ((i % 5) as f64) - 2.0;
                let r = env.step(keep(accel));
                trace.push((r.reward.total.to_bits(), r.terminal));
                if r.terminal != Terminal::None {
                    break;
                }
            }
            let digest = env.injector().map(|i| i.digest());
            (trace, digest)
        };
        assert_eq!(run(5), run(5), "same seed: same faults, same rewards");
        assert_ne!(run(5).1, run(6).1, "different seed: different fault stream");
    }

    #[test]
    fn blackouts_degrade_through_fallback_not_panic() {
        let was = telemetry::set_enabled(true);
        let fallback_total = || {
            telemetry::counter_value("perception.fallback.last_prediction")
                + telemetry::counter_value("perception.fallback.last_observation")
                + telemetry::counter_value("perception.fallback.extrapolation")
        };
        let before_fallback = fallback_total();
        let before_blackout = telemetry::counter_value("sensor.fault.blackout");
        let mut cfg = EnvConfig::test_scale();
        cfg.faults = Some(sensor::FaultProfile::blackout_heavy());
        let mut env = HighwayEnv::new(cfg, PerceptionMode::Persistence);
        for _ in 0..60 {
            let r = env.step(keep(0.5));
            assert!(r.reward.total.is_finite(), "degraded percepts stay usable");
            if r.terminal != Terminal::None {
                env.reset();
            }
        }
        assert!(
            telemetry::counter_value("sensor.fault.blackout") > before_blackout,
            "blackout-heavy profile injected blackouts"
        );
        assert!(
            fallback_total() > before_fallback,
            "blackouts exercised the ladder"
        );
        telemetry::set_enabled(was);
    }

    #[test]
    fn nan_action_ends_episode_recoverably() {
        let mut env = test_env();
        let r = env.step(keep(f64::NAN));
        // The poisoned command coasts instead of executing; the episode
        // ends with a recoverable Fault terminal and finite metrics.
        assert_eq!(r.terminal, Terminal::Fault);
        assert!(
            r.reward.total.is_finite(),
            "sanitised command keeps the reward finite"
        );
        assert!(r.episode.is_some());
        assert_eq!(r.episode.map(|e| e.terminal), Some(Terminal::Fault));
        // The process (and the env) keeps working afterwards.
        env.reset();
        let r2 = env.step(keep(1.0));
        assert!(r2.reward.total.is_finite());
        assert_eq!(r2.terminal, Terminal::None);
    }

    #[test]
    fn injector_state_round_trips_through_env() {
        let mut cfg = EnvConfig::test_scale();
        cfg.faults = Some(sensor::FaultProfile::light());
        let mut env = HighwayEnv::new(cfg, PerceptionMode::Persistence);
        for _ in 0..10 {
            let _ = env.step(keep(0.0));
        }
        let state = env.injector_state().expect("fault injection active");
        env.restore_injector(state);
        assert_eq!(env.injector_state(), Some(state));
    }

    #[test]
    fn augmented_state_shape_invariants() {
        let env = test_env();
        let s = &env.percepts().state;
        // Ego row flag is 0; target rows carry IF flags 0/1.
        assert_eq!(s.current[0][3], 0.0);
        for row in &s.current[1..] {
            // lint:allow(float-eq) IF flags are exact 0.0/1.0 sentinels
            assert!(row[3] == 0.0 || row[3] == 1.0);
        }
        for row in &s.future {
            // lint:allow(float-eq) IF flags are exact 0.0/1.0 sentinels
            assert!(row[3] == 0.0 || row[3] == 1.0);
        }
    }
}
