//! Environment and experiment configuration.

use decision::RewardConfig;
use sensor::{FaultProfile, SensorConfig};
use serde::{Deserialize, Serialize};
use traffic_sim::SimConfig;

/// Configuration of the closed-loop highway environment an agent drives in.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EnvConfig {
    /// Simulator settings (road, traffic, restrictions).
    pub sim: SimConfig,
    /// Sensor settings (range, occlusion).
    pub sensor: SensorConfig,
    /// History depth `z` for the perception module.
    pub z: usize,
    /// Hybrid reward settings.
    pub reward: RewardConfig,
    /// Hard step cap per episode (safety net; the paper's episodes end at
    /// the destination or at a collision).
    pub max_steps: usize,
    /// Simulation steps run before the AV is inserted.
    pub warmup_steps: usize,
    /// AV entry velocity, m/s.
    pub av_start_vel: f64,
    /// Base RNG seed; episode `k` uses `seed + k`.
    pub seed: u64,
    /// Deterministic sensor fault injection (robustness runs). `None`
    /// delivers every sweep untouched.
    pub faults: Option<FaultProfile>,
}

impl Default for EnvConfig {
    fn default() -> Self {
        Self {
            sim: SimConfig::default(),
            sensor: SensorConfig::default(),
            z: 5,
            reward: RewardConfig::default(),
            max_steps: 1200,
            warmup_steps: 60,
            av_start_vel: 15.0,
            seed: 0,
            faults: None,
        }
    }
}

impl EnvConfig {
    /// The paper's full-scale environment: 3 km six-lane road, 180 veh/km.
    pub fn paper_scale() -> Self {
        Self::default()
    }

    /// A reduced environment for tests and laptop-scale benches: shorter
    /// road, same density and restrictions — the per-step decision problem
    /// is unchanged, episodes are just shorter.
    pub fn bench_scale() -> Self {
        let mut cfg = Self::default();
        cfg.sim.road_len = 600.0;
        cfg.max_steps = 240;
        cfg.warmup_steps = 40;
        cfg
    }

    /// An even smaller environment for unit tests.
    pub fn test_scale() -> Self {
        let mut cfg = Self::default();
        cfg.sim.road_len = 300.0;
        cfg.sim.lanes = 4;
        cfg.max_steps = 120;
        cfg.warmup_steps = 20;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let cfg = EnvConfig::paper_scale();
        assert_eq!(cfg.sim.lanes, 6);
        assert_eq!(cfg.sim.road_len, 3000.0);
        assert_eq!(cfg.sim.lane_width, 3.2);
        assert_eq!(cfg.sim.dt, 0.5);
        assert_eq!(cfg.sim.density_per_km, 180.0);
        assert_eq!(cfg.sensor.range, 100.0);
        assert_eq!(cfg.z, 5);
        assert_eq!(cfg.reward.weights(), (0.9, 0.8, 0.6, 0.2));
    }

    #[test]
    fn scaled_configs_keep_the_decision_problem() {
        for cfg in [EnvConfig::bench_scale(), EnvConfig::test_scale()] {
            assert_eq!(cfg.sim.dt, 0.5);
            assert_eq!(cfg.sim.a_max, 3.0);
            assert_eq!(cfg.sim.density_per_km, 180.0);
        }
    }
}
