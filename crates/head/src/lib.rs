//! # head — the HEAD perception-and-decision framework
//!
//! Rust reproduction of *"Impact-aware Maneuver Decision with Enhanced
//! Perception for Autonomous Vehicle"* (Liu et al., ICDE 2023). This crate
//! is the paper's primary contribution wired end-to-end:
//!
//! * [`HighwayEnv`] — the closed loop of Fig. 1: simulator → sensor →
//!   phantom construction → spatial-temporal graph → LST-GAT prediction →
//!   augmented PAMDP state → maneuver → hybrid reward.
//! * [`PolicyAgent`] over [`decision::BpDqn`] — **HEAD** itself.
//! * Baselines: [`IdmLc`], [`AccLc`], [`DrlSc`], [`TpBts`] (Table I).
//! * Ablations: the four HEAD-w/o-* variants (Table II) via
//!   [`Variant`].
//! * [`experiments`] — drivers that regenerate every table of the paper's
//!   evaluation section.
//!
//! ```no_run
//! use head::{EnvConfig, HighwayEnv, PerceptionMode, PolicyAgent, run_episode};
//! use decision::{AgentConfig, BpDqn};
//!
//! let mut env = HighwayEnv::new(EnvConfig::bench_scale(), PerceptionMode::Persistence);
//! let mut head = PolicyAgent::new("HEAD", Box::new(BpDqn::new(AgentConfig::default())));
//! for _ in 0..10 {
//!     env.reset();
//!     let metrics = run_episode(&mut env, &mut head, true);
//!     println!("mean step reward {:.3}", metrics.mean_reward);
//! }
//! ```

// Panic audit: library code must surface errors, not unwrap them away
// (tests may unwrap freely). Enforced by clippy and the headlint
// `lint-header` pass; see DESIGN.md "Static analysis".
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod agents;
mod checkpoint;
mod config;
mod env;
pub mod experiments;
mod fleet;
mod metrics;
mod robustness;
mod train;
mod variants;

pub use agents::{
    AccLc, DrivingAgent, DrlSc, IdmLc, PolicyAgent, RuleConfig, SafetyCheck, TpBts, TpBtsConfig,
};
pub use checkpoint::{
    Checkpoint, CheckpointError, CheckpointSource, CHECKPOINT_FILE, CHECKPOINT_PREV_FILE,
};
pub use config::EnvConfig;
pub use env::{augmented_state, HighwayEnv, PerceptionMode, Percepts, StepResult};
pub use fleet::{Fleet, FleetConfig, FleetStepOutcome};
pub use metrics::{aggregate, AggregateMetrics, EpisodeMetrics, MetricsCollector, Terminal};
pub use robustness::RobustnessEvent;
pub use train::{
    evaluate_agent, evaluate_agent_par, mean_decision_ms, run_episode, run_episode_guarded,
    seed_with_demonstrations, train_agent, train_agent_resumable, ResumableOptions, TrainingReport,
    Watchdog,
};
pub use variants::{build_agent, Variant};
