//! Recoverable robustness events.
//!
//! Conditions that would previously have been hard `assert!`s deep in the
//! loop (non-finite vehicle dynamics, non-finite rewards, runaway episodes)
//! are surfaced as [`RobustnessEvent`]s instead: the episode ends with
//! [`crate::Terminal::Fault`], telemetry records what happened, and the
//! process — typically hours into a training run — keeps going.

use telemetry::{keys, Json};
use traffic_sim::VehicleId;

/// A recoverable fault observed by the environment or the episode runner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RobustnessEvent {
    /// The simulator froze a vehicle whose integrated state went
    /// non-finite (reported via `StepOutcome::non_finite`).
    NonFiniteVehicleState {
        /// The frozen vehicle.
        vehicle: VehicleId,
    },
    /// The hybrid reward evaluated to a non-finite value.
    NonFiniteReward {
        /// Step index within the episode.
        step: usize,
    },
    /// The agent commanded a non-finite acceleration (a diverged policy
    /// network); the environment coasts instead of executing it.
    NonFiniteAction {
        /// Step index within the episode.
        step: usize,
    },
    /// The episode watchdog aborted a runaway episode.
    WatchdogAbort {
        /// Steps executed when the watchdog fired.
        steps: usize,
    },
}

impl RobustnessEvent {
    /// Telemetry counter bumped when this event is recorded.
    pub fn counter(&self) -> &'static str {
        match self {
            RobustnessEvent::NonFiniteVehicleState { .. } => keys::ROBUSTNESS_NONFINITE_VEHICLE,
            RobustnessEvent::NonFiniteReward { .. } => keys::ROBUSTNESS_NONFINITE_REWARD,
            RobustnessEvent::NonFiniteAction { .. } => keys::ROBUSTNESS_NONFINITE_ACTION,
            RobustnessEvent::WatchdogAbort { .. } => keys::ROBUSTNESS_WATCHDOG_ABORT,
        }
    }

    /// Short event name for logs and JSONL events.
    pub fn name(&self) -> &'static str {
        match self {
            RobustnessEvent::NonFiniteVehicleState { .. } => "nonfinite_vehicle",
            RobustnessEvent::NonFiniteReward { .. } => "nonfinite_reward",
            RobustnessEvent::NonFiniteAction { .. } => "nonfinite_action",
            RobustnessEvent::WatchdogAbort { .. } => "watchdog_abort",
        }
    }

    /// Records the event: bumps its `robustness.*` counter, pushes it into
    /// the flight-recorder ring (so a later fault dump shows the lead-up),
    /// and emits a structured JSONL event.
    pub fn record(&self, episode: u64) {
        telemetry::counter_add(self.counter(), 1);
        telemetry::flight_record(self.counter(), episode as f64);
        let mut fields = vec![
            ("kind", Json::from(self.name())),
            ("episode", Json::from(episode)),
        ];
        match self {
            RobustnessEvent::NonFiniteVehicleState { vehicle } => {
                fields.push(("vehicle", Json::from(vehicle.0)));
            }
            RobustnessEvent::NonFiniteReward { step }
            | RobustnessEvent::NonFiniteAction { step } => {
                fields.push(("step", Json::from(*step)));
            }
            RobustnessEvent::WatchdogAbort { steps } => {
                fields.push(("steps", Json::from(*steps)));
            }
        }
        telemetry::emit_event(keys::EVENT_ROBUSTNESS, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_bumps_the_matching_counter() {
        let was = telemetry::set_enabled(true);
        let before = telemetry::counter_value("robustness.nonfinite_reward");
        RobustnessEvent::NonFiniteReward { step: 7 }.record(3);
        assert_eq!(
            telemetry::counter_value("robustness.nonfinite_reward"),
            before + 1
        );
        telemetry::set_enabled(was);
    }

    #[test]
    fn names_and_counters_are_distinct() {
        let events = [
            RobustnessEvent::NonFiniteVehicleState {
                vehicle: VehicleId(1),
            },
            RobustnessEvent::NonFiniteReward { step: 0 },
            RobustnessEvent::NonFiniteAction { step: 0 },
            RobustnessEvent::WatchdogAbort { steps: 9 },
        ];
        for (i, a) in events.iter().enumerate() {
            for b in &events[i + 1..] {
                assert_ne!(a.name(), b.name());
                assert_ne!(a.counter(), b.counter());
            }
        }
    }
}
