//! Episode runner, training loop and evaluation harness.

use crate::agents::DrivingAgent;
use crate::checkpoint::Checkpoint;
use crate::env::HighwayEnv;
use crate::metrics::{EpisodeMetrics, Terminal};
use crate::robustness::RobustnessEvent;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;
use telemetry::{keys, Stopwatch};

/// Aborts runaway episodes: whichever of the step and wall-clock budgets
/// is exhausted first ends the episode with [`Terminal::Fault`] instead of
/// letting one stuck episode hang an entire training run.
#[derive(Clone, Copy, Debug)]
pub struct Watchdog {
    /// Hard per-episode step budget.
    pub max_steps: usize,
    /// Hard per-episode wall-clock budget.
    pub max_wall: Duration,
}

impl Watchdog {
    /// A budget generous enough to never fire on a healthy episode with
    /// the given step cap.
    pub fn generous(max_steps: usize) -> Self {
        Self {
            max_steps: max_steps.saturating_mul(4),
            max_wall: Duration::from_secs(600),
        }
    }
}

/// Emits the per-episode telemetry every finished episode shares.
fn note_episode(
    env: &HighwayEnv,
    agent: &mut dyn DrivingAgent,
    explore: bool,
    metrics: &EpisodeMetrics,
) {
    telemetry::counter_add(keys::HEAD_EPISODES, 1);
    telemetry::histogram_record(keys::HEAD_EPISODE_STEPS, metrics.steps as f64);
    telemetry::emit_event(
        keys::EVENT_EPISODE,
        vec![
            ("episode", telemetry::Json::from(env.episode_index())),
            ("explore", telemetry::Json::from(explore)),
            ("agent", telemetry::Json::from(agent.name())),
            ("steps", telemetry::Json::from(metrics.steps)),
            (
                "terminal",
                telemetry::Json::from(format!("{:?}", metrics.terminal)),
            ),
            ("mean_reward", telemetry::Json::from(metrics.mean_reward)),
            ("total_reward", telemetry::Json::from(metrics.total_reward)),
            ("min_ttc", telemetry::Json::from(metrics.min_ttc)),
            ("avg_v", telemetry::Json::from(metrics.avg_v)),
            (
                "impact_events",
                telemetry::Json::from(metrics.impact_events),
            ),
            // Cumulative nn arena counters: fresh stays flat once the
            // agents' tapes reach steady state, while reused keeps growing.
            (
                "alloc_fresh",
                telemetry::Json::from(telemetry::counter_value(keys::NN_ALLOC_FRESH)),
            ),
            (
                "alloc_reused",
                telemetry::Json::from(telemetry::counter_value(keys::NN_ALLOC_REUSED)),
            ),
        ],
    );
}

/// Runs one episode. `explore` enables exploration and learning feedback.
pub fn run_episode(
    env: &mut HighwayEnv,
    agent: &mut dyn DrivingAgent,
    explore: bool,
) -> EpisodeMetrics {
    run_episode_guarded(env, agent, explore, None)
}

/// [`run_episode`] under an optional [`Watchdog`]. A fired watchdog records
/// a [`RobustnessEvent::WatchdogAbort`] and closes the episode with
/// [`Terminal::Fault`]; the environment is left ready for the next `reset`.
pub fn run_episode_guarded(
    env: &mut HighwayEnv,
    agent: &mut dyn DrivingAgent,
    explore: bool,
    watchdog: Option<&Watchdog>,
) -> EpisodeMetrics {
    let _episode_span = telemetry::span!(keys::SPAN_HEAD_EPISODE);
    let started = Stopwatch::start();
    let mut state = env.percepts().state;
    let mut steps_run = 0usize;
    loop {
        if let Some(w) = watchdog {
            if steps_run >= w.max_steps || started.elapsed() >= w.max_wall {
                RobustnessEvent::WatchdogAbort { steps: steps_run }.record(env.episode_index());
                let metrics = env.abort_episode();
                note_episode(env, agent, explore, &metrics);
                return metrics;
            }
        }
        let action = {
            let _decide_span = telemetry::span!(keys::SPAN_HEAD_DECIDE);
            agent.decide(env.percepts(), explore)
        };
        let result = {
            let _env_span = telemetry::span!(keys::SPAN_ENV_STEP);
            env.step(action)
        };
        steps_run += 1;
        if explore && agent.is_learning() {
            let _feedback_span = telemetry::span!(keys::SPAN_HEAD_FEEDBACK);
            agent.feedback(
                &state,
                action,
                result.reward.total,
                &result.next_state,
                result.terminal != Terminal::None,
            );
        }
        state = result.next_state;
        if let Some(metrics) = result.episode {
            note_episode(env, agent, explore, &metrics);
            return metrics;
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Per-episode metrics, in order.
    pub episodes: Vec<EpisodeMetrics>,
    /// Wall-clock seconds for the whole run.
    pub total_secs: f64,
    /// Wall-clock seconds until the smoothed mean reward stopped improving
    /// (the paper's training-convergence-time, TCT).
    pub convergence_secs: f64,
}

impl TrainingReport {
    /// Mean reward of the last `n` episodes.
    pub fn recent_mean_reward(&self, n: usize) -> f64 {
        let take = n.min(self.episodes.len()).max(1);
        let slice = &self.episodes[self.episodes.len() - take..];
        slice.iter().map(|e| e.mean_reward).sum::<f64>() / take as f64
    }
}

/// Trains a learning agent for `episodes` episodes. For non-learning
/// agents this still runs the episodes (useful for timing) but nothing is
/// updated.
pub fn train_agent(
    env: &mut HighwayEnv,
    agent: &mut dyn DrivingAgent,
    episodes: usize,
) -> TrainingReport {
    let _train_span = telemetry::span!(keys::SPAN_HEAD_TRAIN_AGENT);
    let started = Stopwatch::start();
    let mut all = Vec::with_capacity(episodes);
    let mut best_window = f64::NEG_INFINITY;
    let mut convergence_secs = None;
    let window = 20usize;
    for k in 0..episodes {
        env.reset();
        let m = run_episode(env, agent, true);
        all.push(m);
        // Convergence: the trailing-window mean reward stops reaching new
        // highs for a full window.
        if all.len() >= window && k % (window / 2).max(1) == 0 {
            let mean = all[all.len() - window..]
                .iter()
                .map(|e| e.mean_reward)
                .sum::<f64>()
                / window as f64;
            if mean > best_window + 1e-3 {
                best_window = mean;
                convergence_secs = None; // still improving
            } else if convergence_secs.is_none() {
                convergence_secs = Some(started.elapsed().as_secs_f64());
            }
        }
    }
    let total = started.elapsed().as_secs_f64();
    TrainingReport {
        episodes: all,
        total_secs: total,
        convergence_secs: convergence_secs.unwrap_or(total),
    }
}

/// How [`train_agent_resumable`] checkpoints and guards a run.
#[derive(Clone, Debug)]
pub struct ResumableOptions {
    /// Directory the checkpoint lives in (created if missing).
    pub dir: PathBuf,
    /// Checkpoint every `every` completed episodes (a final checkpoint is
    /// always written; `0` keeps only that final one).
    pub every: u64,
    /// Optional per-episode watchdog.
    pub watchdog: Option<Watchdog>,
    /// Stop after this many episodes *this invocation* and checkpoint —
    /// used to simulate a kill mid-run and by incremental training drivers.
    pub halt_after: Option<u64>,
}

impl ResumableOptions {
    /// Checkpoints into `dir` every 10 episodes, no watchdog, no halt.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every: 10,
            watchdog: None,
            halt_after: None,
        }
    }
}

fn save_checkpoint(
    env: &HighwayEnv,
    agent: &dyn DrivingAgent,
    episodes: &[EpisodeMetrics],
    dir: &Path,
) -> io::Result<()> {
    Checkpoint {
        episode: env.episode_index(),
        episodes: episodes.to_vec(),
        agent_json: agent.save_state(),
        exploration_steps: agent.exploration_steps(),
        injector: env.injector_state(),
    }
    .save(dir)
}

/// [`train_agent`] with crash-safe checkpointing: the run saves every
/// `opts.every` episodes and on completion, and a later invocation against
/// the same directory continues where the last checkpoint left off (same
/// episode seed sequence, same fault stream, same exploration-schedule
/// position).
///
/// Resume is deterministic but not byte-identical to an uninterrupted run
/// for learning agents: generator internals and the replay buffer are not
/// serialisable, so the resumed run reseeds its exploration stream
/// deterministically and refills its buffer from fresh experience.
/// (`convergence_secs` is wall-clock of this invocation only.)
pub fn train_agent_resumable(
    env: &mut HighwayEnv,
    agent: &mut dyn DrivingAgent,
    episodes: usize,
    opts: &ResumableOptions,
) -> io::Result<TrainingReport> {
    let _train_span = telemetry::span!(keys::SPAN_HEAD_TRAIN_RESUMABLE);
    let started = Stopwatch::start();
    let mut all = Vec::new();
    if let Some((ckpt, source)) = Checkpoint::load_resilient(&opts.dir)? {
        if let Some(json) = &ckpt.agent_json {
            agent
                .load_state(json)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        }
        agent.set_exploration_steps(ckpt.exploration_steps);
        agent.reseed(
            env.cfg()
                .seed
                .wrapping_add(ckpt.episode)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        env.set_episode_index(ckpt.episode);
        if let Some(state) = ckpt.injector {
            env.restore_injector(state);
        }
        all = ckpt.episodes;
        telemetry::emit_event(
            keys::EVENT_RESUME,
            vec![
                ("episode", telemetry::Json::from(ckpt.episode)),
                ("completed", telemetry::Json::from(all.len())),
                ("source", telemetry::Json::from(source.as_str())),
            ],
        );
    }
    let mut ran = 0u64;
    while all.len() < episodes {
        env.reset();
        let m = run_episode_guarded(env, agent, true, opts.watchdog.as_ref());
        all.push(m);
        ran += 1;
        if opts.every > 0 && ran % opts.every == 0 {
            save_checkpoint(env, agent, &all, &opts.dir)?;
        }
        if opts.halt_after.is_some_and(|n| ran >= n) {
            break;
        }
    }
    save_checkpoint(env, agent, &all, &opts.dir)?;
    let total = started.elapsed().as_secs_f64();
    Ok(TrainingReport {
        episodes: all,
        total_secs: total,
        convergence_secs: total,
    })
}

/// Seeds a learning agent's replay buffer with demonstration episodes
/// driven by a teacher (typically IDM-LC). The student observes the
/// teacher's states, actions and rewards but performs no gradient steps —
/// learning starts afterwards with a buffer that already contains safe,
/// road-completing experience. This is the standard demonstration-seeding
/// trick for sparse-catastrophe driving tasks; DESIGN.md documents it as
/// an implementation choice (the paper trains ~1.2M steps instead).
pub fn seed_with_demonstrations(
    env: &mut HighwayEnv,
    teacher: &mut dyn DrivingAgent,
    student: &mut dyn DrivingAgent,
    episodes: usize,
) {
    let _seed_span = telemetry::span!(keys::SPAN_HEAD_SEED_DEMOS);
    for _ in 0..episodes {
        env.reset();
        let mut state = env.percepts().state;
        loop {
            let action = teacher.decide(env.percepts(), false);
            let result = env.step(action);
            let terminal = result.terminal != Terminal::None;
            student.demonstrate(
                &state,
                action,
                result.reward.total,
                &result.next_state,
                terminal,
            );
            state = result.next_state;
            if terminal {
                break;
            }
        }
    }
}

/// Evaluates an agent greedily over `episodes` fixed-seed episodes.
///
/// All agents are evaluated on the *same* seed sequence
/// (`eval_seed_base + k`) so their table rows are paired.
pub fn evaluate_agent(
    env: &mut HighwayEnv,
    agent: &mut dyn DrivingAgent,
    episodes: usize,
    eval_seed_base: u64,
) -> Vec<EpisodeMetrics> {
    let _eval_span = telemetry::span!(keys::SPAN_HEAD_EVALUATE);
    (0..episodes)
        .map(|k| {
            env.reset_with_seed(eval_seed_base.wrapping_add(k as u64));
            run_episode(env, agent, false)
        })
        .collect()
}

/// Parallel counterpart of [`evaluate_agent`]: fans the paired evaluation
/// episodes across the pool's workers. Each worker constructs its own
/// environment and agent by calling `factory` *inside* the worker thread
/// (so neither type needs to be `Send`) and replays a contiguous slice of
/// the shared seed schedule `eval_seed_base + k`; slices are merged back
/// in episode order.
///
/// Determinism contract: [`HighwayEnv::reset_with_seed`] rebuilds the
/// simulation wholesale from the seed and greedy evaluation
/// (`explore = false`) never mutates learned or random state, so every
/// episode's metrics depend only on its seed and the merged vector is
/// byte-identical to [`evaluate_agent`] on a factory-built environment at
/// any worker count. The one exception is fault injection: the injector
/// is a single continuous stream across episodes, so fault-configured
/// environments are evaluated serially on one factory instance instead of
/// being split.
pub fn evaluate_agent_par<F>(
    factory: &F,
    episodes: usize,
    eval_seed_base: u64,
    pool: &par::Pool,
) -> Vec<EpisodeMetrics>
where
    F: Fn() -> (HighwayEnv, Box<dyn DrivingAgent>) + Sync,
{
    let _eval_span = telemetry::span!(keys::SPAN_HEAD_EVALUATE);
    let (mut env, mut agent) = factory();
    if pool.threads() <= 1 || episodes <= 1 || env.cfg().faults.is_some() {
        return (0..episodes)
            .map(|k| {
                env.reset_with_seed(eval_seed_base.wrapping_add(k as u64));
                run_episode(&mut env, agent.as_mut(), false)
            })
            .collect();
    }
    drop(env);
    drop(agent);
    let workers = pool.threads().min(episodes);
    let chunk = episodes.div_ceil(workers);
    let ranges: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(episodes)))
        .filter(|(lo, hi)| lo < hi)
        .collect();
    let blocks = pool.try_map(ranges, |_, (lo, hi)| {
        let (mut env, mut agent) = factory();
        (lo..hi)
            .map(|k| {
                env.reset_with_seed(eval_seed_base.wrapping_add(k as u64));
                run_episode(&mut env, agent.as_mut(), false)
            })
            .collect::<Vec<EpisodeMetrics>>()
    });
    match blocks {
        Ok(blocks) => blocks.into_iter().flatten().collect(),
        // lint:allow(panic) a worker panic is an episode bug; re-raise with context
        Err(e) => panic!("parallel evaluation failed: {e}"),
    }
}

/// Measures the agent's mean decision latency (ms per `decide` call).
///
/// Timing goes through the telemetry span registry — the same `head.decide`
/// spans every episode records — instead of a private stopwatch, so the
/// table number and the timing tree can never disagree. Telemetry is
/// force-enabled for the measurement and restored afterwards.
pub fn mean_decision_ms(env: &mut HighwayEnv, agent: &mut dyn DrivingAgent, steps: usize) -> f64 {
    env.reset_with_seed(424242);
    let was_enabled = telemetry::set_enabled(true);
    let before = telemetry::span_stats("head.decide");
    let mut calls = 0usize;
    for _ in 0..steps {
        let action = {
            let _decide_span = telemetry::span!(keys::SPAN_HEAD_DECIDE);
            agent.decide(env.percepts(), false)
        };
        calls += 1;
        let r = env.step(action);
        if r.terminal != Terminal::None {
            env.reset_with_seed(424242 + calls as u64);
        }
    }
    telemetry::set_enabled(was_enabled);
    let after = telemetry::span_stats("head.decide");
    let count = after.count.saturating_sub(before.count).max(1);
    let delta_ns = after.total_ns.saturating_sub(before.total_ns);
    delta_ns as f64 / 1e6 / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::{IdmLc, RuleConfig};
    use crate::config::EnvConfig;
    use crate::env::PerceptionMode;

    #[test]
    fn run_episode_terminates_and_reports() {
        let mut env =
            crate::env::HighwayEnv::new(EnvConfig::test_scale(), PerceptionMode::Persistence);
        let mut agent = IdmLc::new(RuleConfig::default());
        let m = run_episode(&mut env, &mut agent, false);
        assert!(m.steps > 0);
        assert_eq!(m.terminal, Terminal::Destination);
    }

    #[test]
    fn evaluation_is_seed_paired() {
        let cfg = EnvConfig::test_scale();
        let mut env1 = crate::env::HighwayEnv::new(cfg.clone(), PerceptionMode::Persistence);
        let mut env2 = crate::env::HighwayEnv::new(cfg, PerceptionMode::Persistence);
        let mut a1 = IdmLc::new(RuleConfig::default());
        let mut a2 = IdmLc::new(RuleConfig::default());
        let m1 = evaluate_agent(&mut env1, &mut a1, 3, 777);
        let m2 = evaluate_agent(&mut env2, &mut a2, 3, 777);
        for (x, y) in m1.iter().zip(&m2) {
            assert_eq!(x.steps, y.steps, "same agent + same seeds = same episodes");
        }
    }

    fn idm_factory(cfg: EnvConfig) -> impl Fn() -> (HighwayEnv, Box<dyn DrivingAgent>) + Sync {
        move || {
            (
                HighwayEnv::new(cfg.clone(), PerceptionMode::Persistence),
                Box::new(IdmLc::new(RuleConfig::default())) as Box<dyn DrivingAgent>,
            )
        }
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_serial() {
        let factory = idm_factory(EnvConfig::test_scale());
        let serial = evaluate_agent_par(&factory, 5, 777, &par::Pool::new(1));
        for threads in [2, 4] {
            let parallel = evaluate_agent_par(&factory, 5, 777, &par::Pool::new(threads));
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.steps, b.steps, "{threads} workers");
                assert_eq!(a.terminal, b.terminal);
                assert_eq!(a.total_reward.to_bits(), b.total_reward.to_bits());
                assert_eq!(a.mean_reward.to_bits(), b.mean_reward.to_bits());
                assert_eq!(a.min_ttc.to_bits(), b.min_ttc.to_bits());
            }
        }
        // The single-worker path agrees with the plain serial evaluator on
        // a factory-built environment.
        let (mut env, mut agent) = factory();
        let reference = evaluate_agent(&mut env, agent.as_mut(), 5, 777);
        for (a, b) in serial.iter().zip(&reference) {
            assert_eq!(a.total_reward.to_bits(), b.total_reward.to_bits());
        }
    }

    #[test]
    fn fault_runs_fall_back_to_one_continuous_stream() {
        // With fault injection configured the injector is one stream across
        // episodes, so the parallel evaluator must refuse to split and match
        // the serial evaluator exactly.
        let factory = idm_factory(resumable_cfg());
        let par4 = evaluate_agent_par(&factory, 3, 555, &par::Pool::new(4));
        let (mut env, mut agent) = factory();
        let reference = evaluate_agent(&mut env, agent.as_mut(), 3, 555);
        assert_eq!(par4.len(), reference.len());
        for (a, b) in par4.iter().zip(&reference) {
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.total_reward.to_bits(), b.total_reward.to_bits());
        }
    }

    #[test]
    fn watchdog_aborts_runaway_episode_recoverably() {
        let mut env =
            crate::env::HighwayEnv::new(EnvConfig::test_scale(), PerceptionMode::Persistence);
        let mut agent = IdmLc::new(RuleConfig::default());
        let watchdog = Watchdog {
            max_steps: 5,
            max_wall: Duration::from_secs(600),
        };
        let m = run_episode_guarded(&mut env, &mut agent, false, Some(&watchdog));
        assert_eq!(m.terminal, Terminal::Fault);
        assert_eq!(m.steps, 5, "aborted exactly at the step budget");
        // The environment stays usable afterwards.
        env.reset();
        let m2 = run_episode(&mut env, &mut agent, false);
        assert_eq!(m2.terminal, Terminal::Destination);
    }

    fn resumable_cfg() -> EnvConfig {
        let mut cfg = EnvConfig::test_scale();
        cfg.seed = 11;
        // A latency-free profile: the injector's delay buffer is the one
        // piece of state a checkpoint drops, so this keeps the resumed
        // fault stream byte-identical to the uninterrupted one.
        cfg.faults = Some(sensor::FaultProfile::blackout_heavy());
        cfg
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("head-train-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn kill_and_resume_continues_episode_sequence() {
        let episodes = 4;
        // Uninterrupted baseline.
        let dir_a = temp_dir("baseline");
        let mut env = crate::env::HighwayEnv::new(resumable_cfg(), PerceptionMode::Persistence);
        let mut agent = IdmLc::new(RuleConfig::default());
        let opts = ResumableOptions {
            every: 1,
            ..ResumableOptions::new(&dir_a)
        };
        let baseline =
            train_agent_resumable(&mut env, &mut agent, episodes, &opts).expect("baseline run");
        assert_eq!(baseline.episodes.len(), episodes);

        // Same run, killed after 2 episodes and resumed by a fresh process
        // (fresh env + agent, same checkpoint directory).
        let dir_b = temp_dir("resume");
        let mut env1 = crate::env::HighwayEnv::new(resumable_cfg(), PerceptionMode::Persistence);
        let mut agent1 = IdmLc::new(RuleConfig::default());
        let halted = ResumableOptions {
            every: 1,
            halt_after: Some(2),
            ..ResumableOptions::new(&dir_b)
        };
        let first =
            train_agent_resumable(&mut env1, &mut agent1, episodes, &halted).expect("first half");
        assert_eq!(first.episodes.len(), 2, "halted mid-run");

        let mut env2 = crate::env::HighwayEnv::new(resumable_cfg(), PerceptionMode::Persistence);
        let mut agent2 = IdmLc::new(RuleConfig::default());
        let resume = ResumableOptions {
            every: 1,
            ..ResumableOptions::new(&dir_b)
        };
        let resumed =
            train_agent_resumable(&mut env2, &mut agent2, episodes, &resume).expect("resume");
        assert_eq!(resumed.episodes.len(), episodes);

        // The resumed run continued the metrics from the saved index and
        // reproduced the uninterrupted episode sequence exactly.
        for (a, b) in baseline.episodes.iter().zip(&resumed.episodes) {
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.terminal, b.terminal);
            assert_eq!(a.total_reward.to_bits(), b.total_reward.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn decision_latency_positive() {
        let mut env =
            crate::env::HighwayEnv::new(EnvConfig::test_scale(), PerceptionMode::Persistence);
        let mut agent = IdmLc::new(RuleConfig::default());
        let before = telemetry::span_stats("head.decide").count;
        let ms = mean_decision_ms(&mut env, &mut agent, 20);
        assert!(ms >= 0.0);
        // The measurement goes through the shared span registry.
        let after = telemetry::span_stats("head.decide").count;
        assert!(after >= before + 20, "span registry saw the decide calls");
    }
}
