//! Episode runner, training loop and evaluation harness.

use crate::agents::DrivingAgent;
use crate::env::HighwayEnv;
use crate::metrics::{EpisodeMetrics, Terminal};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Runs one episode. `explore` enables exploration and learning feedback.
pub fn run_episode(env: &mut HighwayEnv, agent: &mut dyn DrivingAgent, explore: bool) -> EpisodeMetrics {
    let _episode_span = telemetry::span!("head.episode");
    let mut state = env.percepts().state;
    loop {
        let action = {
            let _decide_span = telemetry::span!("head.decide");
            agent.decide(env.percepts(), explore)
        };
        let result = {
            let _env_span = telemetry::span!("env.step");
            env.step(action)
        };
        if explore && agent.is_learning() {
            let _feedback_span = telemetry::span!("head.feedback");
            agent.feedback(
                &state,
                action,
                result.reward.total,
                &result.next_state,
                result.terminal != Terminal::None,
            );
        }
        state = result.next_state;
        if let Some(metrics) = result.episode {
            telemetry::counter_add("head.episodes", 1);
            telemetry::histogram_record("head.episode_steps", metrics.steps as f64);
            telemetry::emit_event(
                "episode",
                vec![
                    ("episode", telemetry::Json::from(env.episode_index())),
                    ("explore", telemetry::Json::from(explore)),
                    ("agent", telemetry::Json::from(agent.name())),
                    ("steps", telemetry::Json::from(metrics.steps)),
                    ("terminal", telemetry::Json::from(format!("{:?}", metrics.terminal))),
                    ("mean_reward", telemetry::Json::from(metrics.mean_reward)),
                    ("total_reward", telemetry::Json::from(metrics.total_reward)),
                    ("min_ttc", telemetry::Json::from(metrics.min_ttc)),
                    ("avg_v", telemetry::Json::from(metrics.avg_v)),
                    ("impact_events", telemetry::Json::from(metrics.impact_events)),
                ],
            );
            return metrics;
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Per-episode metrics, in order.
    pub episodes: Vec<EpisodeMetrics>,
    /// Wall-clock seconds for the whole run.
    pub total_secs: f64,
    /// Wall-clock seconds until the smoothed mean reward stopped improving
    /// (the paper's training-convergence-time, TCT).
    pub convergence_secs: f64,
}

impl TrainingReport {
    /// Mean reward of the last `n` episodes.
    pub fn recent_mean_reward(&self, n: usize) -> f64 {
        let take = n.min(self.episodes.len()).max(1);
        let slice = &self.episodes[self.episodes.len() - take..];
        slice.iter().map(|e| e.mean_reward).sum::<f64>() / take as f64
    }
}

/// Trains a learning agent for `episodes` episodes. For non-learning
/// agents this still runs the episodes (useful for timing) but nothing is
/// updated.
pub fn train_agent(
    env: &mut HighwayEnv,
    agent: &mut dyn DrivingAgent,
    episodes: usize,
) -> TrainingReport {
    let _train_span = telemetry::span!("head.train_agent");
    let started = Instant::now();
    let mut all = Vec::with_capacity(episodes);
    let mut best_window = f64::NEG_INFINITY;
    let mut convergence_secs = None;
    let window = 20usize;
    for k in 0..episodes {
        env.reset();
        let m = run_episode(env, agent, true);
        all.push(m);
        // Convergence: the trailing-window mean reward stops reaching new
        // highs for a full window.
        if all.len() >= window && k % (window / 2).max(1) == 0 {
            let mean = all[all.len() - window..]
                .iter()
                .map(|e| e.mean_reward)
                .sum::<f64>()
                / window as f64;
            if mean > best_window + 1e-3 {
                best_window = mean;
                convergence_secs = None; // still improving
            } else if convergence_secs.is_none() {
                convergence_secs = Some(started.elapsed().as_secs_f64());
            }
        }
    }
    let total = started.elapsed().as_secs_f64();
    TrainingReport {
        episodes: all,
        total_secs: total,
        convergence_secs: convergence_secs.unwrap_or(total),
    }
}

/// Seeds a learning agent's replay buffer with demonstration episodes
/// driven by a teacher (typically IDM-LC). The student observes the
/// teacher's states, actions and rewards but performs no gradient steps —
/// learning starts afterwards with a buffer that already contains safe,
/// road-completing experience. This is the standard demonstration-seeding
/// trick for sparse-catastrophe driving tasks; DESIGN.md documents it as
/// an implementation choice (the paper trains ~1.2M steps instead).
pub fn seed_with_demonstrations(
    env: &mut HighwayEnv,
    teacher: &mut dyn DrivingAgent,
    student: &mut dyn DrivingAgent,
    episodes: usize,
) {
    let _seed_span = telemetry::span!("head.seed_demos");
    for _ in 0..episodes {
        env.reset();
        let mut state = env.percepts().state;
        loop {
            let action = teacher.decide(env.percepts(), false);
            let result = env.step(action);
            let terminal = result.terminal != Terminal::None;
            student.demonstrate(&state, action, result.reward.total, &result.next_state, terminal);
            state = result.next_state;
            if terminal {
                break;
            }
        }
    }
}

/// Evaluates an agent greedily over `episodes` fixed-seed episodes.
///
/// All agents are evaluated on the *same* seed sequence
/// (`eval_seed_base + k`) so their table rows are paired.
pub fn evaluate_agent(
    env: &mut HighwayEnv,
    agent: &mut dyn DrivingAgent,
    episodes: usize,
    eval_seed_base: u64,
) -> Vec<EpisodeMetrics> {
    let _eval_span = telemetry::span!("head.evaluate");
    (0..episodes)
        .map(|k| {
            env.reset_with_seed(eval_seed_base.wrapping_add(k as u64));
            run_episode(env, agent, false)
        })
        .collect()
}

/// Measures the agent's mean decision latency (ms per `decide` call).
///
/// Timing goes through the telemetry span registry — the same `head.decide`
/// spans every episode records — instead of a private stopwatch, so the
/// table number and the timing tree can never disagree. Telemetry is
/// force-enabled for the measurement and restored afterwards.
pub fn mean_decision_ms(
    env: &mut HighwayEnv,
    agent: &mut dyn DrivingAgent,
    steps: usize,
) -> f64 {
    env.reset_with_seed(424242);
    let was_enabled = telemetry::set_enabled(true);
    let before = telemetry::span_stats("head.decide");
    let mut calls = 0usize;
    for _ in 0..steps {
        let action = {
            let _decide_span = telemetry::span!("head.decide");
            agent.decide(env.percepts(), false)
        };
        calls += 1;
        let r = env.step(action);
        if r.terminal != Terminal::None {
            env.reset_with_seed(424242 + calls as u64);
        }
    }
    telemetry::set_enabled(was_enabled);
    let after = telemetry::span_stats("head.decide");
    let count = after.count.saturating_sub(before.count).max(1);
    let delta_ns = after.total_ns.saturating_sub(before.total_ns);
    delta_ns as f64 / 1e6 / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::{IdmLc, RuleConfig};
    use crate::config::EnvConfig;
    use crate::env::PerceptionMode;

    #[test]
    fn run_episode_terminates_and_reports() {
        let mut env = crate::env::HighwayEnv::new(EnvConfig::test_scale(), PerceptionMode::Persistence);
        let mut agent = IdmLc::new(RuleConfig::default());
        let m = run_episode(&mut env, &mut agent, false);
        assert!(m.steps > 0);
        assert_eq!(m.terminal, Terminal::Destination);
    }

    #[test]
    fn evaluation_is_seed_paired() {
        let cfg = EnvConfig::test_scale();
        let mut env1 = crate::env::HighwayEnv::new(cfg.clone(), PerceptionMode::Persistence);
        let mut env2 = crate::env::HighwayEnv::new(cfg, PerceptionMode::Persistence);
        let mut a1 = IdmLc::new(RuleConfig::default());
        let mut a2 = IdmLc::new(RuleConfig::default());
        let m1 = evaluate_agent(&mut env1, &mut a1, 3, 777);
        let m2 = evaluate_agent(&mut env2, &mut a2, 3, 777);
        for (x, y) in m1.iter().zip(&m2) {
            assert_eq!(x.steps, y.steps, "same agent + same seeds = same episodes");
        }
    }

    #[test]
    fn decision_latency_positive() {
        let mut env = crate::env::HighwayEnv::new(EnvConfig::test_scale(), PerceptionMode::Persistence);
        let mut agent = IdmLc::new(RuleConfig::default());
        let before = telemetry::span_stats("head.decide").count;
        let ms = mean_decision_ms(&mut env, &mut agent, 20);
        assert!(ms >= 0.0);
        // The measurement goes through the shared span registry.
        let after = telemetry::span_stats("head.decide").count;
        assert!(after >= before + 20, "span registry saw the decide calls");
    }
}
