//! The paper's ablation variants (Table II): each removes exactly one
//! component of HEAD.

use crate::agents::PolicyAgent;
use crate::config::EnvConfig;
use crate::env::{HighwayEnv, PerceptionMode};
use decision::{AgentConfig, BpDqn, PDqn};
use perception::{LstGat, LstGatConfig, Normalizer};
use serde::{Deserialize, Serialize};

/// HEAD and its four ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// The full framework.
    Head,
    /// Phantom-vehicle construction removed: unobservable vehicles are
    /// zero-padded.
    WithoutPvc,
    /// LST-GAT removed: the decision module sees only current states.
    WithoutLstGat,
    /// BP-DQN replaced by the vanilla P-DQN.
    WithoutBpDqn,
    /// The impact reward term removed (w4 = 0).
    WithoutImp,
}

impl Variant {
    /// All variants in Table II order (HEAD last, as the reference row).
    pub const ALL: [Variant; 5] = [
        Variant::WithoutPvc,
        Variant::WithoutLstGat,
        Variant::WithoutBpDqn,
        Variant::WithoutImp,
        Variant::Head,
    ];

    /// The row label used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Head => "HEAD",
            Variant::WithoutPvc => "HEAD-w/o-PVC",
            Variant::WithoutLstGat => "HEAD-w/o-LST-GAT",
            Variant::WithoutBpDqn => "HEAD-w/o-BP-DQN",
            Variant::WithoutImp => "HEAD-w/o-IMP",
        }
    }
}

/// Builds the environment + policy agent for a variant.
///
/// `lstgat_weights` is a checkpoint produced by [`LstGat::weights_json`];
/// pass the same checkpoint to every variant so only the ablated component
/// differs. `normalizer` must match the environment geometry.
pub fn build_agent(
    variant: Variant,
    env_cfg: &EnvConfig,
    agent_cfg: &AgentConfig,
    lstgat_weights: Option<&str>,
    normalizer: Normalizer,
) -> (HighwayEnv, PolicyAgent) {
    let mut env_cfg = env_cfg.clone();
    if variant == Variant::WithoutImp {
        env_cfg.reward.w_impact = 0.0;
    }

    let perception = if variant == Variant::WithoutLstGat {
        PerceptionMode::Persistence
    } else {
        let mut model = LstGat::new(LstGatConfig::default(), normalizer);
        if let Some(json) = lstgat_weights {
            model
                .load_weights_json(json)
                // lint:allow(panic) weights come from a checkpoint this process just wrote
                .expect("valid LST-GAT checkpoint");
        }
        PerceptionMode::LstGat(Box::new(model))
    };

    let mut env = HighwayEnv::new(env_cfg, perception);
    if variant == Variant::WithoutPvc {
        env.disable_phantoms();
    }

    let agent = if variant == Variant::WithoutBpDqn {
        PolicyAgent::new(variant.label(), Box::new(PDqn::new(*agent_cfg)))
    } else {
        PolicyAgent::new(variant.label(), Box::new(BpDqn::new(*agent_cfg)))
    };
    (env, agent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::DrivingAgent;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Variant::Head.label(), "HEAD");
        assert_eq!(Variant::WithoutPvc.label(), "HEAD-w/o-PVC");
        assert_eq!(Variant::ALL.len(), 5);
    }

    #[test]
    fn variants_assemble_and_decide() {
        let env_cfg = EnvConfig::test_scale();
        let agent_cfg = AgentConfig {
            warmup: 16,
            batch_size: 8,
            ..AgentConfig::default()
        };
        let norm = Normalizer::paper_default();
        for v in Variant::ALL {
            let (mut env, mut agent) = build_agent(v, &env_cfg, &agent_cfg, None, norm);
            let action = agent.decide(env.percepts(), false);
            assert!(action.accel.abs() <= 3.0 + 1e-6, "{}", v.label());
            let r = env.step(action);
            assert!(r.reward.total.is_finite());
        }
    }

    #[test]
    fn without_imp_zeroes_the_impact_weight() {
        let env_cfg = EnvConfig::test_scale();
        let agent_cfg = AgentConfig::default();
        let norm = Normalizer::paper_default();
        let (env, _) = build_agent(Variant::WithoutImp, &env_cfg, &agent_cfg, None, norm);
        assert_eq!(env.cfg().reward.w_impact, 0.0);
        let (env, _) = build_agent(Variant::Head, &env_cfg, &agent_cfg, None, norm);
        assert!(env.cfg().reward.w_impact > 0.0);
    }
}
