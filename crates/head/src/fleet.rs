//! The fleet driver: many concurrent HEAD agents sharing one world.
//!
//! [`Fleet`] owns a (possibly multi-segment, possibly sharded)
//! [`Simulation`] and N externally controlled AVs driven by **one** shared
//! policy. Each step:
//!
//! 1. **sense** — per-AV percepts are gathered in vehicle-id order (each
//!    AV has its own [`SensorHistory`] and [`FallbackGuard`]; a history is
//!    reset when its AV migrates to a new segment, since segment-local
//!    positions jump at the boundary);
//! 2. **decide** — all N augmented states are answered in one wide
//!    [`PamdpAgent::act_batch_greedy`] pass (the PR-9 batched-inference
//!    path, bit-identical per row to batch-1);
//! 3. **act** — commands are applied in vehicle-id order, then the world
//!    advances one Δt (sharded or serial — byte-identical either way);
//! 4. **recycle** — collided or arrived AVs are removed and respawned at
//!    the world entry deterministically (a spawn counter, not wall clock,
//!    picks the lane).
//!
//! Everything is a pure function of the config, so a fleet run has a
//! stable [`Fleet::checksum`] at any shard count — the fleet bench gates
//! on exactly that.

use crate::config::EnvConfig;
use crate::env::{augmented_state, PerceptionMode};
use decision::{Action, AugmentedState, LaneBehaviour, PamdpAgent};
use perception::{BuilderConfig, FallbackGuard, GraphBuilder};
use sensor::{sense, SensorHistory};
use telemetry::keys;
use traffic_sim::{ExternalCommand, LaneChange, SegmentId, Simulation, VehicleId};

/// Longitudinal spacing between initially spawned AVs, m.
const SPAWN_SPACING: f64 = 40.0;

/// Configuration of a fleet run.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// World and perception settings (the `sim.network` field selects the
    /// road network; `None` is the single straight road).
    pub env: EnvConfig,
    /// Number of concurrent HEAD agents sharing the world.
    pub avs: usize,
}

impl FleetConfig {
    /// A laptop-scale fleet world: a four-segment three-lane corridor with
    /// on/off-ramps, dense enough to exercise migration and merging.
    pub fn bench_scale(avs: usize) -> Self {
        let mut env = EnvConfig::bench_scale();
        env.sim.lanes = 3;
        env.sim.density_per_km = 120.0;
        env.sim.network = Some(traffic_sim::RoadNetwork::with_ramps(
            &[300.0, 300.0, 300.0, 300.0],
            3,
            150.0,
        ));
        Self { env, avs }
    }
}

/// Per-AV perception state.
struct AvSlot {
    id: VehicleId,
    /// Segment the AV was on at the last sense (history resets on change).
    seg: SegmentId,
    history: SensorHistory,
    guard: FallbackGuard,
    state: AugmentedState,
}

/// What happened during one [`Fleet::step`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FleetStepOutcome {
    /// AVs that collided this step (each is respawned).
    pub av_collisions: u32,
    /// AVs that reached a network exit this step (each is respawned).
    pub av_arrivals: u32,
    /// Vehicles currently in the world (after recycling).
    pub vehicles: usize,
}

/// Many concurrent HEAD agents sharing one (sharded) world.
pub struct Fleet {
    cfg: FleetConfig,
    sim: Simulation,
    agent: Box<dyn PamdpAgent>,
    perception: PerceptionMode,
    builder: GraphBuilder,
    avs: Vec<AvSlot>,
    spawn_counter: u64,
    decisions: u64,
}

impl Fleet {
    /// Builds the world, populates traffic, warms it up, and inserts the
    /// AVs on the first entry segment.
    pub fn new(cfg: FleetConfig, agent: Box<dyn PamdpAgent>, perception: PerceptionMode) -> Self {
        let mut sim_cfg = cfg.env.sim.clone();
        sim_cfg.seed = cfg.env.seed;
        let mut sim = Simulation::new(sim_cfg);
        sim.populate();
        sim.warm_up(cfg.env.warmup_steps);
        let builder = GraphBuilder::new(BuilderConfig {
            lanes: cfg.env.sim.lanes,
            lane_width: cfg.env.sim.lane_width,
            range: cfg.env.sensor.range,
            dt: cfg.env.sim.dt,
            z: cfg.env.z,
            phantoms_enabled: true,
        });
        let mut fleet = Self {
            sim,
            agent,
            perception,
            builder,
            avs: Vec::with_capacity(cfg.avs),
            spawn_counter: 0,
            decisions: 0,
            cfg,
        };
        for _ in 0..fleet.cfg.avs {
            fleet.spawn_av();
        }
        telemetry::gauge_set(keys::FLEET_AVS, fleet.avs.len() as f64);
        fleet
    }

    /// Number of shards the world's segment stepping fans out over.
    pub fn set_shards(&mut self, shards: usize) {
        self.sim.set_shards(shards);
    }

    /// The underlying world.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// Batched decisions issued so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Inserts one AV at the world entry. Lane and stagger come from the
    /// spawn counter, so the sequence is a pure function of the config.
    fn spawn_av(&mut self) {
        let lanes = self.sim.network().segments[0].lanes;
        let k = self.spawn_counter;
        self.spawn_counter += 1;
        let lane = ((self.cfg.env.seed + k) % lanes as u64) as usize;
        let wave = ((k as usize / lanes) % 4) as f64;
        let pos = self.cfg.env.sim.vehicle_len + 2.0 + wave * SPAWN_SPACING;
        let id = self
            .sim
            .spawn_external_in(SegmentId(0), lane, pos, self.cfg.env.av_start_vel);
        self.avs.push(AvSlot {
            id,
            seg: SegmentId(0),
            history: SensorHistory::new(self.cfg.env.z),
            guard: FallbackGuard::new(self.cfg.env.sim.dt),
            state: AugmentedState::zeros(),
        });
        // Keep the slots in vehicle-id order: ids are monotone, fresh
        // spawns always append at the end.
        debug_assert!(self.avs.windows(2).all(|w| w[0].id < w[1].id));
    }

    /// Senses the world for one AV and refreshes its augmented state.
    fn refresh_slot(
        sim: &Simulation,
        builder: &GraphBuilder,
        mode: &PerceptionMode,
        sensor_cfg: &sensor::SensorConfig,
        slot: &mut AvSlot,
    ) {
        let Some(av) = sim.get(slot.id) else { return };
        if av.seg != slot.seg {
            // Crossing a segment boundary re-bases positions; stale frames
            // in the old frame would corrupt the temporal graph.
            slot.history.clear();
            slot.seg = av.seg;
        }
        let mut frame = sense(sim, slot.id, sensor_cfg);
        frame
            .observed
            .retain(|o| o.pos.is_finite() && o.vel.is_finite());
        slot.history.push(frame);
        let graph = builder.build(&slot.history);
        let prediction = mode.predict(&graph);
        if let Some((graph, prediction, _tier)) = slot.guard.resolve(Some((graph, prediction))) {
            slot.state = augmented_state(&graph, &prediction);
        }
    }

    /// One fleet step: sense every AV, decide the whole fleet in one wide
    /// pass, apply commands in vehicle-id order, advance the world, and
    /// recycle collided/arrived AVs.
    pub fn step(&mut self) -> FleetStepOutcome {
        let _span = telemetry::span!(keys::SPAN_FLEET_STEP);

        // 1. Sense, in vehicle-id order (the slots are kept sorted).
        for slot in &mut self.avs {
            Self::refresh_slot(
                &self.sim,
                &self.builder,
                &self.perception,
                &self.cfg.env.sensor,
                slot,
            );
        }

        // 2. One wide greedy pass over all AV states.
        let states: Vec<&AugmentedState> = self.avs.iter().map(|s| &s.state).collect();
        let actions = self.agent.act_batch_greedy(&states);
        self.decisions += actions.len() as u64;
        telemetry::counter_add(keys::FLEET_DECISIONS, actions.len() as u64);

        // 3. Apply actions in vehicle-id order through the same sanitized
        // command machinery a single-agent episode uses.
        for (slot, (action, _)) in self.avs.iter().zip(&actions) {
            self.sim.set_command(slot.id, command_for(action));
        }

        // 4. Advance the world (sharded or serial — byte-identical).
        let outcome = self.sim.step();

        // 5. Recycle finished AVs deterministically.
        let mut result = FleetStepOutcome::default();
        let mut finished: Vec<(usize, bool)> = Vec::new();
        for (i, slot) in self.avs.iter().enumerate() {
            let collided = outcome
                .collisions
                .iter()
                .any(|c| c.vehicle == slot.id || c.other == Some(slot.id));
            let arrived = outcome.exited_external.contains(&slot.id);
            if collided {
                finished.push((i, true));
            } else if arrived {
                finished.push((i, false));
            }
        }
        for &(i, collided) in finished.iter().rev() {
            let slot = self.avs.remove(i);
            self.sim.remove(slot.id);
            if collided {
                result.av_collisions += 1;
            } else {
                result.av_arrivals += 1;
            }
        }
        for _ in 0..finished.len() {
            self.spawn_av();
        }
        if result.av_collisions > 0 {
            telemetry::counter_add(keys::FLEET_AV_COLLISIONS, u64::from(result.av_collisions));
        }
        if result.av_arrivals > 0 {
            telemetry::counter_add(keys::FLEET_ARRIVALS, u64::from(result.av_arrivals));
        }
        telemetry::gauge_set(keys::FLEET_AVS, self.avs.len() as f64);
        result.vehicles = self.sim.vehicle_count();
        result
    }

    /// FNV checksum over the full world state plus the decision count —
    /// two fleet runs agree on this iff they took identical trajectories.
    pub fn checksum(&self) -> u64 {
        let mut c = par::Checksum::new();
        c.push_u64(self.sim.state_checksum());
        c.push_u64(self.decisions);
        c.push_u64(self.spawn_counter);
        c.finish()
    }
}

/// Maps a policy action onto a sanitized external command (same mapping as
/// the single-agent environment).
fn command_for(action: &Action) -> ExternalCommand {
    let accel = if action.accel.is_finite() {
        action.accel
    } else {
        0.0
    };
    let lane_change = match action.behaviour {
        LaneBehaviour::Left => LaneChange::Left,
        LaneBehaviour::Right => LaneChange::Right,
        LaneBehaviour::Keep => LaneChange::Keep,
    };
    ExternalCommand { lane_change, accel }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decision::{AgentConfig, BpDqn};

    fn small_fleet(avs: usize, shards: usize) -> Fleet {
        let mut cfg = FleetConfig::bench_scale(avs);
        cfg.env.warmup_steps = 10;
        let agent = Box::new(BpDqn::new(AgentConfig::default()));
        let mut fleet = Fleet::new(cfg, agent, PerceptionMode::Persistence);
        fleet.set_shards(shards);
        fleet
    }

    #[test]
    fn fleet_steps_and_counts_decisions() {
        let mut fleet = small_fleet(4, 1);
        for _ in 0..5 {
            let out = fleet.step();
            assert!(out.vehicles > 0);
        }
        assert_eq!(fleet.decisions(), 20, "4 AVs x 5 steps");
    }

    #[test]
    fn fleet_keeps_av_count_across_recycling() {
        let mut fleet = small_fleet(6, 2);
        for _ in 0..60 {
            fleet.step();
        }
        assert_eq!(fleet.avs.len(), 6, "every finished AV must be replaced");
    }

    #[test]
    fn fleet_checksum_is_reproducible() {
        let run = |shards: usize| {
            let mut fleet = small_fleet(4, shards);
            for _ in 0..30 {
                fleet.step();
            }
            fleet.checksum()
        };
        assert_eq!(run(1), run(1));
    }
}
