//! The spatial-temporal graph (paper §III-B, Eqs. 7–9).
//!
//! At every step the graph holds 42 nodes — 6 *target* conventional
//! vehicles plus 6 *surrounding* vehicles for each target — replicated over
//! the last `z` time steps. Edges are fixed: each target connects to its
//! 6 surrounding nodes plus a self-loop.
//!
//! Node features follow the paper exactly: conventional (and phantom)
//! vehicles carry **states relative to the autonomous vehicle**
//! `[d_lat, d_lon, v_rel, IF]`; the slots occupied by the autonomous
//! vehicle itself carry its **raw** state `[lat, lon, v, 0]`.
//! Lane numbers use the paper's 1-based convention (lane 1 = leftmost,
//! lane κ = rightmost; inherent phantoms sit at 0 and κ+1).

use serde::{Deserialize, Serialize};
use traffic_sim::VehicleId;

/// Number of target conventional vehicles around the ego.
pub const NUM_TARGETS: usize = 6;
/// Surrounding vehicles per target.
pub const NUM_SURROUNDING: usize = 6;
/// Total nodes per spatial graph: 6 targets + 6 × 6 surrounding.
pub const NUM_NODES: usize = NUM_TARGETS + NUM_TARGETS * NUM_SURROUNDING;
/// Feature width of one node: `[d_lat, d_lon, v_rel, IF]`.
pub const NODE_DIM: usize = 4;

/// The six key areas around a centre vehicle (paper Fig. 2), in the paper's
/// order: front-left, front, front-right, rear-left, rear, rear-right.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Area {
    /// Ahead, one lane to the left.
    FrontLeft,
    /// Ahead, same lane.
    Front,
    /// Ahead, one lane to the right.
    FrontRight,
    /// Behind, one lane to the left.
    RearLeft,
    /// Behind, same lane.
    Rear,
    /// Behind, one lane to the right.
    RearRight,
}

/// All areas in slot order `0..6`.
pub const AREAS: [Area; 6] = [
    Area::FrontLeft,
    Area::Front,
    Area::FrontRight,
    Area::RearLeft,
    Area::Rear,
    Area::RearRight,
];

impl Area {
    /// Lane offset of the area relative to the centre vehicle
    /// (−1 = one lane left, +1 = one lane right).
    pub fn lane_offset(self) -> i64 {
        match self {
            Area::FrontLeft | Area::RearLeft => -1,
            Area::Front | Area::Rear => 0,
            Area::FrontRight | Area::RearRight => 1,
        }
    }

    /// Whether the area is ahead of the centre vehicle.
    pub fn is_front(self) -> bool {
        matches!(self, Area::FrontLeft | Area::Front | Area::FrontRight)
    }

    /// Slot index `0..6` in the paper's ordering.
    pub fn slot(self) -> usize {
        AREAS
            .iter()
            .position(|&a| a == self)
            // lint:allow(panic) the match above enumerates every GraphArea variant
            .expect("all areas listed")
    }

    /// The reciprocal slot: if `B` sits in area `a` of `A`, then `A` sits in
    /// area `a.reciprocal()` of `B` (paper footnote 1: pairs (1,6), (2,5),
    /// (3,4), (4,3), (5,2), (6,1)).
    pub fn reciprocal(self) -> Area {
        AREAS[NUM_SURROUNDING - 1 - self.slot()]
    }
}

/// Why a node was filled in by the phantom-construction strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MissingKind {
    /// Outside the sensor's detection radius (paper Eq. 4).
    Range,
    /// The centre vehicle is in an edge lane, so the neighbour cannot exist
    /// (paper Eq. 5).
    Inherent,
    /// Hidden behind the centre vehicle (paper Eq. 6).
    Occlusion,
    /// Zero-padded: the centre vehicle is itself a phantom, so its
    /// neighbours carry no information (paper §III-B step 2).
    ZeroPadded,
}

/// Provenance of one graph node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeSource {
    /// A really-observed conventional vehicle.
    Observed(VehicleId),
    /// The autonomous vehicle itself (reciprocal slots).
    Ego,
    /// A constructed phantom vehicle.
    Phantom(MissingKind),
}

impl NodeSource {
    /// The paper's `IF` indicator: 1 for constructed phantoms, 0 otherwise.
    pub fn if_flag(self) -> f64 {
        match self {
            NodeSource::Phantom(_) => 1.0,
            _ => 0.0,
        }
    }

    /// True for phantom nodes.
    pub fn is_phantom(self) -> bool {
        matches!(self, NodeSource::Phantom(_))
    }
}

/// Raw (world-frame) state of one node at one time step, before relative
/// encoding. `lat` is the paper's 1-based lane number (0 and κ+1 are the
/// virtual boundary lanes).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawState {
    /// Lane number, 1-based.
    pub lat: f64,
    /// Longitudinal front-bumper position, m.
    pub lon: f64,
    /// Longitudinal velocity, m/s.
    pub vel: f64,
}

/// Node index of target `i` (0-based).
pub fn target_node(i: usize) -> usize {
    debug_assert!(i < NUM_TARGETS);
    i
}

/// Node index of surrounding vehicle `j` of target `i` (both 0-based).
pub fn surrounding_node(i: usize, j: usize) -> usize {
    debug_assert!(i < NUM_TARGETS && j < NUM_SURROUNDING);
    NUM_TARGETS + i * NUM_SURROUNDING + j
}

/// For each target, the node indices attended over by the graph attention:
/// the target itself (self-loop) followed by its six surrounding nodes.
pub fn member_indices() -> [[usize; NUM_SURROUNDING + 1]; NUM_TARGETS] {
    let mut out = [[0usize; NUM_SURROUNDING + 1]; NUM_TARGETS];
    for (i, row) in out.iter_mut().enumerate() {
        row[0] = target_node(i);
        for j in 0..NUM_SURROUNDING {
            row[j + 1] = surrounding_node(i, j);
        }
    }
    out
}

/// A spatial-temporal graph: `z` frames of `NUM_NODES` encoded node
/// features, plus per-node provenance (time-invariant, like the edge set).
#[derive(Clone, Debug)]
pub struct StGraph {
    /// Encoded node features per time step, oldest first; each frame is
    /// `NUM_NODES` rows of `[d_lat, d_lon, v_rel, IF]` (relative frame) or
    /// `[lat, lon, v, 0]` for ego slots.
    pub frames: Vec<[[f64; NODE_DIM]; NUM_NODES]>,
    /// Provenance of each node (shared by all frames).
    pub sources: [NodeSource; NUM_NODES],
    /// The ego's raw state at the latest step (needed to de-relativise
    /// predictions and to seed the decision state).
    pub ego_latest: RawState,
}

impl StGraph {
    /// History depth `z`.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Whether target `i` is a constructed phantom (its prediction loss is
    /// masked during training, per the paper's Eq. 14 note).
    pub fn target_is_phantom(&self, i: usize) -> bool {
        self.sources[target_node(i)].is_phantom()
    }

    /// Prediction mask row: 1.0 for real targets, 0.0 for phantoms.
    pub fn target_mask(&self) -> [f64; NUM_TARGETS] {
        let mut m = [0.0; NUM_TARGETS];
        for (i, v) in m.iter_mut().enumerate() {
            *v = if self.target_is_phantom(i) { 0.0 } else { 1.0 };
        }
        m
    }

    /// Identity of target `i` when it is a real observed vehicle.
    pub fn target_id(&self, i: usize) -> Option<VehicleId> {
        match self.sources[target_node(i)] {
            NodeSource::Observed(id) => Some(id),
            _ => None,
        }
    }
}

/// One-step-ahead prediction for a single target, in the same relative
/// frame as the graph encoding: relative to the **ego at the current step**.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictedState {
    /// Predicted lateral offset `d_lat(C^{t+1}, A^t)`, m.
    pub d_lat: f64,
    /// Predicted longitudinal offset `d_lon(C^{t+1}, A^t)`, m.
    pub d_lon: f64,
    /// Predicted relative velocity `v(C^{t+1}, A^t)`, m/s.
    pub v_rel: f64,
}

/// Predictions for all six targets.
pub type Prediction = [PredictedState; NUM_TARGETS];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_layout_is_dense_and_disjoint() {
        let mut seen = [false; NUM_NODES];
        for i in 0..NUM_TARGETS {
            assert!(!seen[target_node(i)]);
            seen[target_node(i)] = true;
            for j in 0..NUM_SURROUNDING {
                assert!(!seen[surrounding_node(i, j)]);
                seen[surrounding_node(i, j)] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 42 node slots used exactly once"
        );
    }

    #[test]
    fn member_lists_have_self_loop_first() {
        let members = member_indices();
        for (i, row) in members.iter().enumerate() {
            assert_eq!(row[0], target_node(i));
            assert_eq!(row.len(), 7);
        }
    }

    #[test]
    fn reciprocal_slots_match_paper_footnote() {
        // (1,6), (2,5), (3,4), (4,3), (5,2), (6,1) in the paper's 1-based
        // numbering.
        assert_eq!(Area::FrontLeft.reciprocal(), Area::RearRight);
        assert_eq!(Area::Front.reciprocal(), Area::Rear);
        assert_eq!(Area::FrontRight.reciprocal(), Area::RearLeft);
        assert_eq!(Area::RearLeft.reciprocal(), Area::FrontRight);
        assert_eq!(Area::Rear.reciprocal(), Area::Front);
        assert_eq!(Area::RearRight.reciprocal(), Area::FrontLeft);
    }

    #[test]
    fn area_geometry() {
        assert_eq!(Area::FrontLeft.lane_offset(), -1);
        assert!(Area::FrontLeft.is_front());
        assert_eq!(Area::Rear.lane_offset(), 0);
        assert!(!Area::Rear.is_front());
        for (slot, area) in AREAS.iter().enumerate() {
            assert_eq!(area.slot(), slot);
        }
    }

    #[test]
    fn if_flag_only_for_phantoms() {
        assert_eq!(NodeSource::Ego.if_flag(), 0.0);
        assert_eq!(NodeSource::Observed(VehicleId(3)).if_flag(), 0.0);
        assert_eq!(NodeSource::Phantom(MissingKind::Range).if_flag(), 1.0);
    }
}
