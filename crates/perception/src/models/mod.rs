//! State-prediction models: LST-GAT (the paper's contribution) and the
//! three baselines it is compared against in Tables III–IV.

mod ed_lstm;
mod gas_led;
mod lst_gat;
mod lstm_mlp;

pub use ed_lstm::{EdLstm, EdLstmConfig};
pub use gas_led::{GasLed, GasLedConfig};
pub use lst_gat::{LstGat, LstGatConfig};
pub use lstm_mlp::{LstmMlp, LstmMlpConfig};

use crate::graph::{NodeSource, Prediction, StGraph, NODE_DIM, NUM_NODES, NUM_TARGETS};
use crate::normalize::Normalizer;
use nn::{narrow, Matrix};

/// One supervised example: a graph at step `t` and the relative ground
/// truth of the six targets at `t + 1` (phantom targets are masked).
#[derive(Clone, Debug)]
pub struct TrainSample {
    /// Input spatial-temporal graph.
    pub graph: StGraph,
    /// `[d_lat, d_lon, v_rel]` per target, relative to the ego at `t`.
    pub truth: [[f64; 3]; NUM_TARGETS],
}

/// Common interface of all one-step state predictors.
pub trait StatePredictor {
    /// Short model name, used in reports.
    fn name(&self) -> &'static str;
    /// Predicts the six targets' next states for one graph.
    fn predict(&self, graph: &StGraph) -> Prediction;
    /// Runs one optimisation step over a mini-batch of borrowed samples
    /// (callers pass references — an `StGraph` is several KiB, so cloning
    /// per batch would dwarf the actual training work); returns the mean
    /// masked loss (normalised units).
    fn train_batch(&mut self, samples: &[&TrainSample]) -> f64;
    /// Number of scalar parameters (for reports).
    fn param_count(&self) -> usize;
}

/// Builds the normalised `NUM_NODES x NODE_DIM` input matrix for frame
/// `tau` of a graph.
pub(crate) fn node_matrix(graph: &StGraph, tau: usize, norm: &Normalizer) -> Matrix {
    let mut data = Vec::with_capacity(NUM_NODES * NODE_DIM);
    for (node, h) in graph.frames[tau].iter().enumerate() {
        let row = match graph.sources[node] {
            NodeSource::Ego => norm.raw(h),
            _ => norm.relative(h),
        };
        data.extend_from_slice(&row);
    }
    Matrix::from_vec(NUM_NODES, NODE_DIM, data)
}

/// Vertically stacks [`node_matrix`] for a batch of graphs: the
/// `(graphs.len() * NUM_NODES) x NODE_DIM` input of a batch-major forward
/// pass, sample `s` occupying the `s`-th `NUM_NODES`-row block. Each block
/// is byte-identical to the single-graph matrix, which is what makes the
/// stacked pass row-bit-identical to per-sample passes.
pub(crate) fn node_matrix_stacked(graphs: &[&StGraph], tau: usize, norm: &Normalizer) -> Matrix {
    let mut out = Matrix::zeros(graphs.len() * NUM_NODES, NODE_DIM);
    for (s, graph) in graphs.iter().enumerate() {
        let block = node_matrix(graph, tau, norm);
        out.data_mut()[s * NUM_NODES * NODE_DIM..(s + 1) * NUM_NODES * NODE_DIM]
            .copy_from_slice(block.data());
    }
    out
}

/// Normalised `NUM_TARGETS x 3` ground-truth matrix.
pub(crate) fn truth_matrix(truth: &[[f64; 3]; NUM_TARGETS], norm: &Normalizer) -> Matrix {
    let mut data = Vec::with_capacity(NUM_TARGETS * 3);
    for t in truth {
        data.extend_from_slice(&norm.truth(t));
    }
    Matrix::from_vec(NUM_TARGETS, 3, data)
}

/// `NUM_TARGETS x 3` mask matrix: rows of ones for real targets, zeros for
/// phantoms (Eq. 14's loss masking).
pub(crate) fn mask_matrix(graph: &StGraph) -> Matrix {
    let mask = graph.target_mask();
    let mut data = Vec::with_capacity(NUM_TARGETS * 3);
    for m in mask {
        data.extend_from_slice(&[m as f32; 3]);
    }
    Matrix::from_vec(NUM_TARGETS, 3, data)
}

/// Number of unmasked scalar outputs in a sample (≥ 1 to avoid 0-division).
pub(crate) fn real_output_count(graph: &StGraph) -> f32 {
    let n: f64 = graph.target_mask().iter().sum();
    narrow(n * 3.0).max(1.0)
}

/// The normalised `z x (7 * NODE_DIM)` history of a single target: its own
/// state concatenated with its six surrounding vehicles' states at each
/// step. This is the input representation of the sequence-only baselines
/// (LSTM-MLP and ED-LSTM condition on the target's neighbourhood features,
/// as the original models do) — computed *separately per target*, which is
/// exactly the per-vehicle cost the paper's efficiency comparison measures.
pub(crate) fn target_history(graph: &StGraph, i: usize, norm: &Normalizer) -> Matrix {
    let z = graph.depth();
    let width = (crate::graph::NUM_SURROUNDING + 1) * NODE_DIM;
    let mut data = Vec::with_capacity(z * width);
    for tau in 0..z {
        let frame = &graph.frames[tau];
        let h = &frame[crate::graph::target_node(i)];
        data.extend_from_slice(&norm.relative(h));
        for j in 0..crate::graph::NUM_SURROUNDING {
            let node = crate::graph::surrounding_node(i, j);
            let row = match graph.sources[node] {
                crate::graph::NodeSource::Ego => norm.raw(&frame[node]),
                _ => norm.relative(&frame[node]),
            };
            data.extend_from_slice(&row);
        }
    }
    Matrix::from_vec(z, width, data)
}

/// Input width of [`target_history`] rows.
pub(crate) const TARGET_HISTORY_DIM: usize = (crate::graph::NUM_SURROUNDING + 1) * NODE_DIM;

/// Converts a `NUM_TARGETS x 3` normalised output matrix to a [`Prediction`].
pub(crate) fn to_prediction(out: &Matrix, norm: &Normalizer) -> Prediction {
    let mut pred = Prediction::default();
    for (i, p) in pred.iter_mut().enumerate() {
        *p = norm.denorm_prediction(out.row_slice(i));
    }
    pred
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::graph::RawState;
    use crate::phantom::{BuilderConfig, GraphBuilder};
    use rand::Rng;
    use sensor::{ObservedState, SensorFrame, SensorHistory};
    use traffic_sim::VehicleId;

    /// Generates a small synthetic corpus with a learnable pattern:
    /// constant-velocity motion of all vehicles.
    pub fn synthetic_samples(n: usize, rng: &mut impl Rng) -> Vec<TrainSample> {
        let cfg = BuilderConfig::default();
        let builder = GraphBuilder::new(cfg);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let ego_lane = rng.random_range(1..5usize);
            let ego_vel = rng.random_range(12.0..24.0);
            let ego_pos = rng.random_range(400.0..2000.0);
            let mut history = SensorHistory::new(cfg.z);
            let mut cars: Vec<(usize, f64, f64)> = Vec::new();
            for lane_off in -1i64..=1 {
                let lane = (ego_lane as i64 + lane_off) as usize;
                cars.push((
                    lane,
                    ego_pos + rng.random_range(15.0..60.0),
                    rng.random_range(10.0..24.0),
                ));
                cars.push((
                    lane,
                    ego_pos - rng.random_range(15.0..60.0),
                    rng.random_range(10.0..24.0),
                ));
            }
            for tau in 0..=cfg.z {
                let dtau = tau as f64 * cfg.dt;
                let ego = ObservedState {
                    id: VehicleId(0),
                    lane: ego_lane,
                    pos: ego_pos + ego_vel * dtau,
                    vel: ego_vel,
                };
                let observed: Vec<ObservedState> = cars
                    .iter()
                    .enumerate()
                    .map(|(k, &(lane, pos, vel))| ObservedState {
                        id: VehicleId(k as u64 + 1),
                        lane,
                        pos: pos + vel * dtau,
                        vel,
                    })
                    .collect();
                if tau < cfg.z {
                    history.push(SensorFrame {
                        step: tau as u64,
                        ego,
                        observed,
                    });
                } else {
                    // Final frame is the ground truth.
                    let graph = builder.build(&history);
                    let ego_now = graph.ego_latest;
                    let mut truth = [[0.0; 3]; NUM_TARGETS];
                    for (i, t) in truth.iter_mut().enumerate() {
                        if let Some(id) = graph.target_id(i) {
                            let s = observed.iter().find(|o| o.id == id).expect("still present");
                            let next = RawState {
                                lat: s.lane as f64 + 1.0,
                                lon: s.pos,
                                vel: s.vel,
                            };
                            *t = crate::normalize::relative_truth(&next, &ego_now, cfg.lane_width);
                        }
                    }
                    out.push(TrainSample { graph, truth });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn node_matrix_shape_and_scale() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let samples = test_support::synthetic_samples(2, &mut rng);
        let norm = Normalizer::paper_default();
        let m = node_matrix(&samples[0].graph, 0, &norm);
        assert_eq!(m.shape(), (NUM_NODES, NODE_DIM));
        for &v in m.data() {
            assert!(v.abs() <= 2.5, "normalised feature {v} out of range");
        }
    }

    #[test]
    fn mask_matches_phantom_targets() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let samples = test_support::synthetic_samples(3, &mut rng);
        for s in &samples {
            let mask = mask_matrix(&s.graph);
            for i in 0..NUM_TARGETS {
                let expect = if s.graph.target_is_phantom(i) {
                    0.0
                } else {
                    1.0
                };
                assert_eq!(mask.get(i, 0), expect);
            }
        }
    }

    #[test]
    fn synthetic_truth_is_consistent_with_constant_velocity() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let samples = test_support::synthetic_samples(4, &mut rng);
        for s in &samples {
            for i in 0..NUM_TARGETS {
                if s.graph.target_id(i).is_some() {
                    // Truth is relative to the ego at t, so d_lon advances by
                    // the target's *absolute* velocity (v_rel + ego velocity).
                    let h = s.graph.frames[s.graph.depth() - 1][i];
                    let expected = h[1] + (h[2] + s.graph.ego_latest.vel) * 0.5;
                    assert!(
                        (s.truth[i][1] - expected).abs() < 1e-6,
                        "target {i}: truth {} vs expected {expected}",
                        s.truth[i][1]
                    );
                }
            }
        }
    }
}
