//! LSTM-MLP baseline (Altché & de La Fortelle 2017, as adapted in the
//! paper's Table III): a vanilla LSTM over each target's *own* history
//! followed by an MLP head. No vehicle interactions, and each target is
//! predicted by a **separate** forward pass — reproducing the baseline's
//! poor inference efficiency (paper §III-A, limitation 3).

use crate::graph::{Prediction, StGraph, NUM_TARGETS};
use crate::models::{target_history, StatePredictor, TrainSample, TARGET_HISTORY_DIM};
use crate::normalize::Normalizer;
use nn::{Adam, Graph, LstmCell, Matrix, Mlp, ParamStore, Var};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Hyper-parameters of [`LstmMlp`].
#[derive(Clone, Copy, Debug)]
pub struct LstmMlpConfig {
    /// LSTM hidden width.
    pub d_lstm: usize,
    /// MLP hidden width.
    pub d_mlp: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight-init seed.
    pub seed: u64,
}

impl Default for LstmMlpConfig {
    fn default() -> Self {
        Self {
            d_lstm: 64,
            d_mlp: 64,
            lr: 1e-3,
            seed: 0,
        }
    }
}

/// The LSTM-MLP baseline predictor.
pub struct LstmMlp {
    store: ParamStore,
    lstm: LstmCell,
    mlp: Mlp,
    adam: Adam,
    norm: Normalizer,
    /// Persistent training tape; reset per target pass so steady-state
    /// batches recycle every buffer through the tape's arena.
    tape: Graph,
}

impl LstmMlp {
    /// Builds a freshly initialised model.
    pub fn new(cfg: LstmMlpConfig, norm: Normalizer) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let lstm = LstmCell::new(&mut store, "lstm", TARGET_HISTORY_DIM, cfg.d_lstm, &mut rng);
        let mlp = Mlp::new(&mut store, "mlp", &[cfg.d_lstm, cfg.d_mlp, 3], &mut rng);
        Self {
            store,
            lstm,
            mlp,
            adam: Adam::new(cfg.lr),
            norm,
            tape: Graph::new(),
        }
    }

    /// Forward pass for one target; `rows` is its `z x 4` history.
    fn forward_one(&self, g: &mut Graph, history: &Matrix) -> Var {
        let z = history.rows();
        let mut state = self.lstm.zero_state(g, 1);
        for tau in 0..z {
            let x = g.input(Matrix::from_vec(
                1,
                TARGET_HISTORY_DIM,
                history.row_slice(tau).to_vec(),
            ));
            state = self.lstm.step(g, &self.store, x, state);
        }
        self.mlp.forward(g, &self.store, state.h)
    }
}

impl StatePredictor for LstmMlp {
    fn name(&self) -> &'static str {
        "LSTM-MLP"
    }

    fn predict(&self, graph: &StGraph) -> Prediction {
        let mut pred = Prediction::default();
        // Deliberately one independent forward pass per vehicle: the
        // baseline does not support parallel prediction.
        for (i, p) in pred.iter_mut().enumerate() {
            let history = target_history(graph, i, &self.norm);
            // lint:allow(graph-churn) inference on `&self` (shared across evaluation workers); no tape to borrow
            let mut g = Graph::new();
            let out = self.forward_one(&mut g, &history);
            *p = self.norm.denorm_prediction(g.value(out).row_slice(0));
        }
        pred
    }

    fn train_batch(&mut self, samples: &[&TrainSample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        self.store.zero_grad();
        let mut total = 0.0;
        let mut count = 0usize;
        for s in samples {
            for i in 0..NUM_TARGETS {
                if s.graph.target_is_phantom(i) {
                    continue;
                }
                count += 1;
            }
        }
        let denom = count.max(1) as f32;
        let mut g = std::mem::take(&mut self.tape);
        for s in samples {
            for i in 0..NUM_TARGETS {
                if s.graph.target_is_phantom(i) {
                    continue;
                }
                let history = target_history(&s.graph, i, &self.norm);
                g.reset();
                let out = self.forward_one(&mut g, &history);
                let truth = g.input(Matrix::row(&self.norm.truth(&s.truth[i])));
                let d = g.sub(out, truth);
                let sq = g.mul_elem(d, d);
                let sum = g.sum_all(sq);
                let loss = g.scale(sum, 1.0 / (3.0 * denom));
                total += g.backward(loss, &mut self.store) as f64;
            }
        }
        self.tape = g;
        // Poisoned samples (NaN observations) must not destroy the weights:
        // non-finite losses or gradients skip the step.
        if nn::finite_guard(total as f32, &mut self.store, 5.0) {
            self.adam.step(&mut self.store);
        }
        total
    }

    fn param_count(&self) -> usize {
        self.store.scalar_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::synthetic_samples;

    #[test]
    fn learns_constant_velocity_pattern() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let samples = synthetic_samples(24, &mut rng);
        let refs: Vec<&TrainSample> = samples.iter().collect();
        let mut model = LstmMlp::new(LstmMlpConfig::default(), Normalizer::paper_default());
        let first = model.train_batch(&refs);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_batch(&refs);
        }
        assert!(
            last < first * 0.5,
            "LSTM-MLP failed to learn: {first} -> {last}"
        );
    }

    #[test]
    fn predictions_have_six_entries() {
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        let samples = synthetic_samples(1, &mut rng);
        let model = LstmMlp::new(LstmMlpConfig::default(), Normalizer::paper_default());
        let pred = model.predict(&samples[0].graph);
        assert_eq!(pred.len(), NUM_TARGETS);
        assert!(pred.iter().all(|p| p.d_lon.is_finite()));
    }
}
