//! GAS-LED baseline (Liu et al., KDD 2021 — the paper's closest prior
//! work): Global Attention & State-sharing LSTM Encoder-Decoder. All 42
//! nodes are encoded by one shared LSTM (state sharing makes the encoder
//! batchable); each target then attends **globally** over every node
//! encoding, and a per-target decoder LSTM emits the prediction. The global
//! attention models interactions (more accurate than LSTM-MLP / ED-LSTM)
//! but the per-target decoding loop and 42-way attention are heavier than
//! LST-GAT's local 7-member attention — reproducing Table IV's efficiency
//! ordering.

use crate::graph::{target_node, Prediction, StGraph, NUM_NODES, NUM_TARGETS};
use crate::models::{
    mask_matrix, node_matrix, real_output_count, to_prediction, truth_matrix, StatePredictor,
    TrainSample,
};
use crate::normalize::Normalizer;
use nn::{Adam, Graph, Linear, LstmCell, LstmState, Matrix, ParamId, ParamStore, Var};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::sync::Arc;

/// Hyper-parameters of [`GasLed`].
#[derive(Clone, Copy, Debug)]
pub struct GasLedConfig {
    /// Shared encoder LSTM hidden width.
    pub d_enc: usize,
    /// Decoder LSTM hidden width.
    pub d_dec: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight-init seed.
    pub seed: u64,
}

impl Default for GasLedConfig {
    fn default() -> Self {
        Self {
            d_enc: 64,
            d_dec: 64,
            lr: 1e-3,
            seed: 0,
        }
    }
}

/// The GAS-LED baseline predictor.
pub struct GasLed {
    store: ParamStore,
    encoder: LstmCell,
    query: ParamId,
    key: ParamId,
    decoder: LstmCell,
    head: Linear,
    adam: Adam,
    norm: Normalizer,
    /// Persistent training tape; reset per sample so steady-state batches
    /// recycle every buffer through the tape's arena.
    tape: Graph,
}

impl GasLed {
    /// Builds a freshly initialised model.
    pub fn new(cfg: GasLedConfig, norm: Normalizer) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let encoder = LstmCell::new(&mut store, "enc", 4, cfg.d_enc, &mut rng);
        let query = store.register_xavier("attn.query", cfg.d_enc, cfg.d_enc, &mut rng);
        let key = store.register_xavier("attn.key", cfg.d_enc, cfg.d_enc, &mut rng);
        let decoder = LstmCell::new(&mut store, "dec", cfg.d_enc, cfg.d_dec, &mut rng);
        let head = Linear::new(&mut store, "head", cfg.d_dec, 3, &mut rng);
        Self {
            store,
            encoder,
            query,
            key,
            decoder,
            head,
            adam: Adam::new(cfg.lr),
            norm,
            tape: Graph::new(),
        }
    }

    /// Encodes all nodes (shared LSTM, batched over the 42 nodes), then for
    /// each target runs global attention + one decoder step. Returns the
    /// normalised `6 x 3` output node.
    fn forward(&self, g: &mut Graph, graph: &StGraph) -> Var {
        // Shared encoding of every node's history.
        let mut state = self.encoder.zero_state(g, NUM_NODES);
        for tau in 0..graph.depth() {
            let h = g.input(node_matrix(graph, tau, &self.norm));
            state = self.encoder.step(g, &self.store, h, state);
        }
        let enc = state.h; // NUM_NODES x d_enc
        let key_w = g.param(&self.store, self.key);
        let keys = g.matmul(enc, key_w); // NUM_NODES x d_enc
        let keys_t = g.transpose(keys);

        // Per-target global attention + decoding (sequential, like the
        // original method's per-vehicle decoder).
        let mut rows: Option<Var> = None;
        for i in 0..NUM_TARGETS {
            let q_sel = g.gather_rows(enc, Arc::new(vec![target_node(i)])); // 1 x d_enc
            let query_w = g.param(&self.store, self.query);
            let q = g.matmul(q_sel, query_w);
            let scores = g.matmul(q, keys_t); // 1 x NUM_NODES
            let scale = 1.0 / (g.value(enc).cols() as f32).sqrt();
            let scores = g.scale(scores, scale);
            let attn = g.softmax_rows(scores);
            let context = g.matmul(attn, enc); // 1 x d_enc
            let dec0 = LstmState {
                h: g.gather_rows(enc, Arc::new(vec![target_node(i)])),
                c: g.input(Matrix::zeros(1, self.decoder.hidden())),
            };
            let dec = self.decoder.step(g, &self.store, context, dec0);
            let out = self.head.forward(g, &self.store, dec.h); // 1 x 3
            rows = Some(match rows {
                Some(acc) => g.concat_rows(acc, out),
                None => out,
            });
        }
        // lint:allow(panic) NUM_TARGETS is a positive const, the fold saw at least one row
        rows.expect("NUM_TARGETS > 0")
    }
}

impl StatePredictor for GasLed {
    fn name(&self) -> &'static str {
        "GAS-LED"
    }

    fn predict(&self, graph: &StGraph) -> Prediction {
        // lint:allow(graph-churn) inference on `&self` (shared across evaluation workers); no tape to borrow
        let mut g = Graph::new();
        let out = self.forward(&mut g, graph);
        to_prediction(g.value(out), &self.norm)
    }

    fn train_batch(&mut self, samples: &[&TrainSample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        self.store.zero_grad();
        let mut total = 0.0;
        let n = samples.len() as f32;
        let mut g = std::mem::take(&mut self.tape);
        for s in samples {
            g.reset();
            let pred = self.forward(&mut g, &s.graph);
            let truth = g.input(truth_matrix(&s.truth, &self.norm));
            let mask = g.input(mask_matrix(&s.graph));
            let normaliser = real_output_count(&s.graph) * n;
            let loss = g.masked_sse(pred, truth, mask, normaliser);
            total += g.backward(loss, &mut self.store) as f64;
        }
        self.tape = g;
        // Poisoned samples (NaN observations) must not destroy the weights:
        // non-finite losses or gradients skip the step.
        if nn::finite_guard(total as f32, &mut self.store, 5.0) {
            self.adam.step(&mut self.store);
        }
        total
    }

    fn param_count(&self) -> usize {
        self.store.scalar_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::synthetic_samples;

    #[test]
    fn learns_constant_velocity_pattern() {
        let mut rng = ChaCha12Rng::seed_from_u64(8);
        let samples = synthetic_samples(24, &mut rng);
        let refs: Vec<&TrainSample> = samples.iter().collect();
        let mut model = GasLed::new(GasLedConfig::default(), Normalizer::paper_default());
        let first = model.train_batch(&refs);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_batch(&refs);
        }
        assert!(
            last < first * 0.5,
            "GAS-LED failed to learn: {first} -> {last}"
        );
    }

    #[test]
    fn outputs_are_finite_for_all_targets() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let samples = synthetic_samples(1, &mut rng);
        let model = GasLed::new(GasLedConfig::default(), Normalizer::paper_default());
        let pred = model.predict(&samples[0].graph);
        for p in pred {
            assert!(p.d_lat.is_finite() && p.d_lon.is_finite() && p.v_rel.is_finite());
        }
    }
}
